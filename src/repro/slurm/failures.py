"""Coupling GPU errors to jobs and nodes.

This stage merges the hardware fault trace with the scheduled workload:

* buggy jobs emit their MMU errors (and user-induced XID 13/43 events) at
  concrete times on their allocated GPUs;
* every error is matched against the job running on its GPU; the first
  encounter of each (job, XID) pair draws a failure from the paper's
  Table-2 probability model, terminating the job within the 20-second
  attribution window;
* errors are grouped per node into repair incidents with sampled
  drain-plus-reboot durations (the paper's Figure 9c distribution),
  becoming :class:`~repro.slurm.accounting.NodeEvent` rows.

The output is the *observable* dataset — final job records, node events, and
the merged error trace to be rendered as syslog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.calibration import CalibrationProfile
from repro.faults.events import ErrorEvent, FaultTrace
from repro.faults.xid import XID_CATALOG, Xid
from repro.slurm.accounting import NodeEvent
from repro.slurm.job import ExitCode, JobRecord, JobSpec, JobState
from repro.slurm.scheduler import Schedule
from repro.util.rng import RngStreams

#: The paper's job-failure attribution window (Section 5.3).
ATTRIBUTION_WINDOW = 20.0


@dataclass(frozen=True)
class CouplingConfig:
    seed: int = 7
    #: Delay between a fatal error and the job's recorded end (must stay
    #: inside the attribution window for the pipeline to classify the job).
    failure_delay_range: Tuple[float, float] = (2.0, 15.0)
    #: Long-running jobs carry checkpoint/retry machinery that masks MMU
    #: errors (paper Section 5.3 / Figure 9b: >4,000-minute jobs encounter
    #: multiple MMU errors yet run to completion), so their per-job MMU
    #: failure probability is scaled down.
    long_job_minutes: float = 4_000.0
    long_job_mmu_failure_scale: float = 0.15


@dataclass
class CouplingResult:
    """Observable dataset pieces plus generation-side ground truth."""

    jobs: List[JobRecord]
    trace: FaultTrace
    node_events: List[NodeEvent]
    #: Event index (into ``trace.events``) -> owning pid, for the renderer.
    pids: Dict[int, int]
    #: Ground truth for tests: per-XID sets of encountering/failed job IDs.
    truth_encounters: Dict[Xid, Set[int]] = field(default_factory=dict)
    truth_failures: Dict[Xid, Set[int]] = field(default_factory=dict)

    def truth_failure_probability(self, xid: Xid) -> float:
        encountered = self.truth_encounters.get(xid, set())
        if not encountered:
            return float("nan")
        return len(self.truth_failures.get(xid, set())) / len(encountered)


#: Inoperable-class codes terminate jobs as NODE_FAIL; the rest surface as
#: in-job crashes (the paper's Incident 1 segfault).
_NODE_FAIL_XIDS = {Xid.GSP, Xid.FALLEN_OFF_BUS, Xid.UNCONTAINED, Xid.RRF}


class FailureCoupler:
    """Apply the error->job and error->node coupling models."""

    def __init__(self, profile: CalibrationProfile, config: CouplingConfig | None = None):
        self.profile = profile
        self.config = config or CouplingConfig()
        self._streams = RngStreams(self.config.seed).fork("coupling", profile.name)

    # ------------------------------------------------------------------

    def couple(
        self,
        schedule: Schedule,
        trace: FaultTrace,
        specs: Sequence[JobSpec],
        mmu_budget: float | None = None,
    ) -> CouplingResult:
        spec_by_id = {spec.job_id: spec for spec in specs}
        jobs_by_id = {job.job_id: job for job in schedule.jobs}

        workload_events, owners = self._emit_workload_events(
            schedule, spec_by_id, mmu_budget
        )
        merged = sorted(
            [(e, None) for e in trace.events] + list(zip(workload_events, owners)),
            key=lambda pair: pair[0].time,
        )

        occupancy = schedule.occupancy
        rng = self._streams.get("failures")
        current_end: Dict[int, float] = {j: job.end_time for j, job in jobs_by_id.items()}
        decided: Set[Tuple[int, Xid]] = set()
        failure_info: Dict[int, Tuple[float, Xid]] = {}
        truth_encounters: Dict[Xid, Set[int]] = {}
        truth_failures: Dict[Xid, Set[int]] = {}

        kept_events: List[ErrorEvent] = []
        kept_owner: List[Optional[int]] = []
        for event, owner in merged:
            job_id = owner
            if job_id is None:
                job_id = occupancy.job_at(event.gpu_key, event.time)
            if job_id is not None and event.time >= current_end.get(job_id, -1.0):
                job_id = None  # the job already ended (possibly killed earlier)
                if owner is not None:
                    continue  # a dead process emits nothing: drop the event
            kept_events.append(event)
            kept_owner.append(job_id)
            if job_id is None:
                continue
            xid = event.xid
            info = XID_CATALOG.get(xid)
            if info is None or not info.studied:
                continue  # user-induced codes don't enter Table 2
            truth_encounters.setdefault(xid, set()).add(job_id)
            key = (job_id, xid)
            if key in decided:
                continue
            decided.add(key)
            prob = self.profile.xids[xid].job_failure_prob if xid in self.profile.xids else 1.0
            if xid is Xid.MMU:
                job = jobs_by_id.get(job_id)
                if (
                    job is not None
                    and job.elapsed >= self.config.long_job_minutes * 60.0
                ):
                    prob *= self.config.long_job_mmu_failure_scale
            if rng.random() < prob:
                delay = rng.uniform(*self.config.failure_delay_range)
                end = min(event.time + delay, current_end[job_id])
                # A failure must land strictly after the error to be
                # attributable; clamp within the job's natural lifetime.
                end = max(end, event.time + 0.5)
                current_end[job_id] = end
                failure_info[job_id] = (end, xid)
                truth_failures.setdefault(xid, set()).add(job_id)

        final_jobs = self._apply_failures(schedule.jobs, failure_info)
        final_trace = FaultTrace(
            events=kept_events,
            window_seconds=trace.window_seconds,
            node_ids=trace.node_ids,
            seed=trace.seed,
        )
        pids = self._pid_map(final_trace, kept_events, kept_owner)
        node_events = self._repair_incidents(final_trace)
        return CouplingResult(
            jobs=final_jobs,
            trace=final_trace,
            node_events=node_events,
            pids=pids,
            truth_encounters=truth_encounters,
            truth_failures=truth_failures,
        )

    # ------------------------------------------------------------------

    def _emit_workload_events(
        self,
        schedule: Schedule,
        spec_by_id: Dict[int, JobSpec],
        mmu_budget: float | None = None,
    ) -> Tuple[List[ErrorEvent], List[int]]:
        """MMU emissions from buggy jobs plus user-induced XID 13/43 events.

        Failing buggy jobs stop emitting once killed, and buggy jobs the
        scheduler dropped never run at all; to keep the realized MMU total
        on ``mmu_budget`` (defaulting to the scheduled jobs' planned sum)
        despite both effects, planned per-job counts are inflated by a
        numerically-solved survival factor.
        """
        rng = self._streams.get("workload-events")
        base_p = (
            self.profile.xids[Xid.MMU].job_failure_prob
            if Xid.MMU in self.profile.xids
            else 0.5
        )

        def p_of(job: JobRecord) -> float:
            if job.elapsed >= self.config.long_job_minutes * 60.0:
                return base_p * self.config.long_job_mmu_failure_scale
            return base_p

        buggy = [
            (job, spec_by_id[job.job_id].mmu_emissions)
            for job in schedule.jobs
            if spec_by_id.get(job.job_id) and spec_by_id[job.job_id].mmu_emissions > 0
        ]
        planned = mmu_budget if mmu_budget is not None else sum(k for _, k in buggy)
        # A failing buggy job dies at its *first* emission (the coupling
        # decides failure at first encounter), so it realizes exactly one
        # event regardless of its plan; a surviving job realizes all of its
        # (inflated, integer-rounded) k.  Search the inflation factor whose
        # expected realized total lands on the budget.
        inflation = 1.0
        if planned > 0 and buggy and base_p < 1.0:

            def realized(factor: float) -> float:
                return sum(
                    p_of(job) + (1.0 - p_of(job)) * max(1, round(k * factor))
                    for job, k in buggy
                )

            lo, hi = 0.2, 5.0
            for _ in range(40):
                mid = (lo + hi) / 2.0
                if realized(mid) < planned:
                    lo = mid
                else:
                    hi = mid
            inflation = (lo + hi) / 2.0

        events: List[ErrorEvent] = []
        owners: List[int] = []
        persistence_model = (
            self.profile.xids[Xid.MMU].persistence if Xid.MMU in self.profile.xids else None
        )
        for job, k in buggy:
            k = max(1, int(round(k * inflation)))
            span = max(job.elapsed, 1.0)
            times = np.sort(rng.uniform(job.start_time, job.start_time + span, size=k))
            gpu = job.gpus[int(rng.integers(0, len(job.gpus)))]
            durations = (
                persistence_model.sample(rng, k) if persistence_model is not None
                else np.zeros(k)
            )
            # Keep same-GPU MMU events separated beyond the coalescing window.
            last_end = -np.inf
            for t, d in zip(times, durations):
                t = max(t, last_end + 6.0)
                last_end = t + d
                events.append(
                    ErrorEvent(
                        time=float(t),
                        node_id=gpu[0],
                        pci_bus=gpu[1],
                        xid=Xid.MMU,
                        persistence=float(d),
                    )
                )
                owners.append(job.job_id)

        for job in schedule.jobs:
            spec = spec_by_id.get(job.job_id)
            if spec is None:
                continue
            for xid, count in ((Xid.GENERAL_SW, spec.xid13_emissions),
                               (Xid.RESET_CHANNEL, spec.xid43_emissions)):
                for _ in range(count):
                    t = float(rng.uniform(job.start_time, job.end_time))
                    gpu = job.gpus[int(rng.integers(0, len(job.gpus)))]
                    events.append(
                        ErrorEvent(time=t, node_id=gpu[0], pci_bus=gpu[1], xid=xid)
                    )
                    owners.append(job.job_id)
        return events, owners

    # ------------------------------------------------------------------

    def _apply_failures(
        self, jobs: Sequence[JobRecord], failure_info: Dict[int, Tuple[float, Xid]]
    ) -> List[JobRecord]:
        out: List[JobRecord] = []
        for job in jobs:
            info = failure_info.get(job.job_id)
            if info is None:
                out.append(job)
                continue
            end, xid = info
            if xid in _NODE_FAIL_XIDS:
                state, code = JobState.NODE_FAIL, int(ExitCode.GENERIC)
            else:
                state, code = JobState.FAILED, int(ExitCode.SEGFAULT)
            out.append(job.failed_at(end, int(xid), code, state))
        return out

    def _pid_map(
        self,
        trace: FaultTrace,
        original_events: List[ErrorEvent],
        owners: List[Optional[int]],
    ) -> Dict[int, int]:
        """Map trace event indices to synthetic pids of owning jobs."""
        owner_by_key: Dict[Tuple[float, str, str, int], int] = {}
        for event, owner in zip(original_events, owners):
            if owner is not None:
                owner_by_key[(event.time, event.node_id, event.pci_bus, int(event.xid))] = owner
        pids: Dict[int, int] = {}
        for index, event in enumerate(trace.events):
            owner = owner_by_key.get(
                (event.time, event.node_id, event.pci_bus, int(event.xid))
            )
            if owner is not None:
                pids[index] = 10_000 + owner % 50_000
        return pids

    # ------------------------------------------------------------------

    def _repair_incidents(self, trace: FaultTrace) -> List[NodeEvent]:
        """Group studied errors per node into repair incidents.

        Mirrors the paper's conservative downtime accounting: every error
        group triggers a node service action whose duration is drawn from
        the Figure-9c repair mixture.
        """
        rng = self._streams.get("repairs")
        merge_window = self.profile.repair.incident_merge_window
        per_node: Dict[str, List[ErrorEvent]] = {}
        for event in trace.events:
            info = XID_CATALOG.get(event.xid)
            if info is None or not info.studied:
                continue
            per_node.setdefault(event.node_id, []).append(event)

        incidents: List[Tuple[str, float, str]] = []
        for node_id, events in per_node.items():
            events.sort(key=lambda e: e.time)
            group_start = None
            group_last = None
            group_xid = None
            for event in events:
                if group_start is None or event.time - group_last > merge_window:
                    if group_start is not None:
                        incidents.append((node_id, group_start, f"xid{int(group_xid)}"))
                    group_start = event.time
                    group_xid = event.xid
                group_last = event.time
            if group_start is not None:
                incidents.append((node_id, group_start, f"xid{int(group_xid)}"))

        if not incidents:
            return []
        durations = self.profile.repair.sample_hours(rng, len(incidents))
        return [
            NodeEvent(node_id=node, start_time=start, duration_hours=float(d), reason=reason)
            for (node, start, reason), d in zip(incidents, durations)
        ]
