"""Slurm substrate: workload generation, scheduling, accounting, coupling.

Mirrors what the paper used from Delta's Slurm Workload Manager: a job
accounting database (start/end, nodes, GPUs, exit status) that the job-impact
analysis joins against GPU error timestamps.  The workload generator is
shaped by the paper's Table 3 (job-size mix, duration percentiles, ML share);
the failure-coupling stage applies per-XID job-failure models so Table 2 is
reproducible from the resulting records.
"""

from repro.slurm.job import ExitCode, JobRecord, JobSpec, JobState
from repro.slurm.workload import WorkloadConfig, WorkloadModel, SIZE_BUCKETS
from repro.slurm.scheduler import GpuScheduler, Schedule, OccupancyIndex
from repro.slurm.accounting import NodeEvent, SlurmDatabase
from repro.slurm.checkpointing import (
    CheckpointConfig,
    expected_overhead,
    optimal_interval,
    simulate_run,
)
from repro.slurm.failures import CouplingConfig, FailureCoupler, CouplingResult
from repro.slurm.lifecycle import LifecycleConfig, NodeLifecycle, NodeState

__all__ = [
    "ExitCode",
    "JobRecord",
    "JobSpec",
    "JobState",
    "WorkloadConfig",
    "WorkloadModel",
    "SIZE_BUCKETS",
    "GpuScheduler",
    "Schedule",
    "OccupancyIndex",
    "NodeEvent",
    "SlurmDatabase",
    "CouplingConfig",
    "FailureCoupler",
    "CouplingResult",
    "CheckpointConfig",
    "expected_overhead",
    "optimal_interval",
    "simulate_run",
    "LifecycleConfig",
    "NodeLifecycle",
    "NodeState",
]
