"""Workload generation shaped by the paper's Table 3.

Each size bucket carries the paper's job-count share, elapsed-time
statistics (mean / P50 / P99 in minutes) and ML share (derived from the
ML vs non-ML GPU-hour split).  Durations are log-normal bodies inverted from
(mean, P50) and clipped at the 48-hour walltime limit visible in the paper's
P99 column (2880 minutes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.slurm.job import JobSpec, JobState
from repro.util.rng import RngStreams
from repro.util.stats import lognormal_from_mean_p50
from repro.util.validation import check_positive

#: Delta's 48-hour walltime cap, in seconds (Table 3's P99 pile-up at 2880 min).
WALLTIME_CAP = 2880.0 * 60.0


@dataclass(frozen=True)
class SizeBucket:
    """One row of Table 3."""

    label: str
    min_gpus: int
    max_gpus: int
    count_share: float  # fraction of all jobs
    mean_minutes: float
    p50_minutes: float
    p99_minutes: float
    ml_gpu_hours_k: float
    non_ml_gpu_hours_k: float
    #: Candidate GPU counts and weights within the bucket.
    sizes: Tuple[int, ...]
    size_weights: Tuple[float, ...]
    #: Fraction of the bucket's jobs that run to the 48-hour walltime cap
    #: (Table 3's multi-GPU buckets show P99 pinned at ~2880 minutes).
    walltime_mass: float = 0.0
    #: Duration cap in minutes (single-GPU jobs can exceed the standard
    #: walltime — the paper's bucket-1 P99 of 2483 with mean 175 implies a
    #: tail beyond 2880).
    cap_minutes: float = 2880.2

    @property
    def ml_share(self) -> float:
        total = self.ml_gpu_hours_k + self.non_ml_gpu_hours_k
        return self.ml_gpu_hours_k / total if total else 0.0


SIZE_BUCKETS: Tuple[SizeBucket, ...] = (
    SizeBucket("1", 1, 1, 0.6986, 175.62, 10.15, 2483.12, 241.6, 2724.0,
               (1,), (1.0,), walltime_mass=0.0, cap_minutes=50_000.0),
    SizeBucket("2-4", 2, 4, 0.2731, 145.04, 4.75, 2880.03, 344.6, 3108.7,
               (2, 3, 4), (0.50, 0.08, 0.42), walltime_mass=0.02),
    SizeBucket("4-8", 5, 8, 0.0155, 133.89, 2.70, 2880.20, 57.9, 338.6,
               (6, 8), (0.35, 0.65), walltime_mass=0.02),
    SizeBucket("8-32", 9, 32, 0.0107, 270.40, 73.73, 2880.17, 107.1, 1332.7,
               (12, 16, 24, 32), (0.35, 0.35, 0.15, 0.15), walltime_mass=0.02),
    SizeBucket("32-64", 33, 64, 0.0014, 204.52, 10.25, 2817.08, 161.9, 226.4,
               (40, 48, 64), (0.4, 0.3, 0.3), walltime_mass=0.045),
    SizeBucket("64-128", 65, 128, 0.00063, 226.28, 0.32, 2211.94, 25.1, 322.3,
               (96, 128), (0.5, 0.5), walltime_mass=0.065),
    SizeBucket("128-256", 129, 256, 0.00006, 226.53, 9.19, 2785.29, 0.0, 52.4,
               (160, 256), (0.5, 0.5), walltime_mass=0.07),
    SizeBucket("256+", 257, 400, 0.00002, 32.12, 20.40, 120.14, 0.0, 4.5,
               (288, 320), (0.6, 0.4)),
)

#: The paper's job population and background (non-GPU) failure rate.
PAPER_GPU_JOB_COUNT = 1_445_119
PAPER_GPU_JOB_SUCCESS_RATE = 0.7468
PAPER_WINDOW_DAYS = 855.0

_ML_NAMES = (
    "train_resnet50", "llm_finetune", "bert_pretrain", "model_eval",
    "torch_ddp_train", "gpt_inference", "train_gnn", "diffusion_train",
)
_NON_ML_NAMES = (
    "namd_run", "wrf_forecast", "vasp_relax", "gromacs_md", "lammps_sim",
    "jupyter", "matlab_batch", "openfoam_case", "bash", "quantum_espresso",
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload knobs.

    ``scale`` shrinks the window and job count together (consistent with the
    injector's window scaling).  ``mmu_budget`` is the number of MMU errors
    buggy jobs should emit in total — supplied by the datasets layer from
    :meth:`repro.faults.injector.FaultInjector.workload_mmu_budget`.
    """

    scale: float = 1.0
    seed: int = 7
    jobs_per_day: float = PAPER_GPU_JOB_COUNT / PAPER_WINDOW_DAYS
    background_failure_prob: float = 1.0 - PAPER_GPU_JOB_SUCCESS_RATE
    #: Probability a <=4-GPU job targets the A40 partition (larger jobs
    #: always request A100s).
    small_job_a40_prob: float = 0.50
    #: Route every job to one partition (the H100 dataset uses "h100").
    partition_override: str | None = None
    #: Fraction of jobs in long-haul queues exceeding the standard walltime
    #: (the paper's Figure 9a/9b show jobs beyond 4,000 minutes that
    #: encounter multiple MMU errors yet complete).
    long_job_prob: float = 0.001
    long_job_minutes: Tuple[float, float] = (4_000.0, 20_000.0)
    mmu_budget: float = 0.0
    xid13_per_kjob: float = 20.0  # user-induced XID 13 emissions per 1000 jobs
    xid43_per_kjob: float = 5.0

    def __post_init__(self) -> None:
        check_positive("scale", self.scale)


class WorkloadModel:
    """Draws a submission stream of :class:`JobSpec` shaped like Table 3."""

    def __init__(self, config: WorkloadConfig | None = None, *,
                 window_days: float = PAPER_WINDOW_DAYS) -> None:
        self.config = config or WorkloadConfig()
        self.window_days = window_days
        self.window_seconds = window_days * 86400.0 * self.config.scale
        self._streams = RngStreams(self.config.seed).fork("workload")

    @property
    def expected_job_count(self) -> int:
        return int(round(self.config.jobs_per_day * self.window_days * self.config.scale))

    def generate(self) -> List[JobSpec]:
        """Generate the full submission stream, ordered by submit time."""
        rng = self._streams.get("jobs")
        n = self.expected_job_count
        if n == 0:
            return []

        bucket_probs = np.array([b.count_share for b in SIZE_BUCKETS])
        bucket_probs = bucket_probs / bucket_probs.sum()
        bucket_idx = rng.choice(len(SIZE_BUCKETS), size=n, p=bucket_probs)

        submit = np.sort(rng.uniform(0.0, self.window_seconds, size=n))

        durations = np.empty(n)
        n_gpus = np.empty(n, dtype=int)
        is_ml = np.zeros(n, dtype=bool)
        for b_index, bucket in enumerate(SIZE_BUCKETS):
            mask = bucket_idx == b_index
            count = int(mask.sum())
            if count == 0:
                continue
            params = lognormal_from_mean_p50(
                bucket.mean_minutes * 60.0, bucket.p50_minutes * 60.0
            )
            drawn = np.clip(params.sample(rng, count), 10.0, bucket.cap_minutes * 60.0)
            if bucket.walltime_mass > 0:
                at_cap = rng.random(count) < bucket.walltime_mass
                drawn[at_cap] = WALLTIME_CAP
            durations[mask] = drawn
            weights = np.array(bucket.size_weights) / sum(bucket.size_weights)
            n_gpus[mask] = rng.choice(bucket.sizes, size=count, p=weights)
            is_ml[mask] = rng.random(count) < bucket.ml_share

        # Long-haul queue: a small fraction of single-GPU jobs exceed the
        # standard walltime by special allocation (log-uniform 4k-40k min),
        # populating the >4,000-minute region of Figures 9a/9b.
        if self.config.long_job_prob > 0:
            long_mask = rng.random(n) < self.config.long_job_prob
            n_long = int(long_mask.sum())
            if n_long:
                lo, hi = self.config.long_job_minutes
                draw = rng.uniform(math.log(lo * 60.0), math.log(hi * 60.0), size=n_long)
                durations[long_mask] = np.exp(draw)
                n_gpus[long_mask] = 1

        if self.config.partition_override is not None:
            partitions = np.full(n, self.config.partition_override, dtype=object)
        else:
            partitions = np.where(
                n_gpus > 4,
                "a100",
                np.where(rng.random(n) < self.config.small_job_a40_prob, "a40", "a100"),
            )

        natural_fail = rng.random(n) < self.config.background_failure_prob
        fail_kind = rng.random(n)

        mmu_emissions = self._assign_mmu_emissions(rng, durations, n)
        xid13 = rng.random(n) < self.config.xid13_per_kjob / 1000.0
        xid43 = rng.random(n) < self.config.xid43_per_kjob / 1000.0

        ml_pick = rng.integers(0, len(_ML_NAMES), size=n)
        nml_pick = rng.integers(0, len(_NON_ML_NAMES), size=n)
        users = rng.integers(1, 900, size=n)

        jobs: List[JobSpec] = []
        for i in range(n):
            if natural_fail[i]:
                if fail_kind[i] < 0.70:
                    state, code = JobState.FAILED, 1
                elif fail_kind[i] < 0.85:
                    state, code = JobState.TIMEOUT, 0
                elif fail_kind[i] < 0.95:
                    state, code = JobState.OUT_OF_MEMORY, 137
                else:
                    state, code = JobState.CANCELLED, 0
            else:
                state, code = JobState.COMPLETED, 0
            name = (
                _ML_NAMES[ml_pick[i]] if is_ml[i] else _NON_ML_NAMES[nml_pick[i]]
            )
            jobs.append(
                JobSpec(
                    job_id=i + 1,
                    name=name,
                    user=f"u{users[i]:03d}",
                    submit_time=float(submit[i]),
                    requested_gpus=int(n_gpus[i]),
                    duration=float(durations[i]),
                    partition=str(partitions[i]),
                    is_ml=bool(is_ml[i]),
                    natural_state=state,
                    natural_exit_code=code,
                    mmu_emissions=int(mmu_emissions[i]),
                    xid13_emissions=int(xid13[i]),
                    xid43_emissions=int(xid43[i]),
                )
            )
        return jobs

    def _assign_mmu_emissions(
        self, rng: np.random.Generator, durations: np.ndarray, n: int
    ) -> np.ndarray:
        """Distribute the MMU budget over a subset of "buggy" jobs.

        Buggy jobs emit 1+ MMU errors each; the per-job count grows with
        runtime so long jobs accumulate many errors (the paper's Figure 9b:
        >4,000-minute jobs encounter multiple MMU errors yet complete).
        """
        emissions = np.zeros(n, dtype=int)
        budget = self.config.mmu_budget
        if budget <= 0 or n == 0:
            return emissions
        mean_per_job = 2.0
        n_buggy = min(n, max(1, int(round(budget / mean_per_job))))
        # Buggy code strikes uniformly across jobs; long-running jobs still
        # accumulate more errors through the per-hour emission rate below
        # (Figure 9b's multi-error completers).
        buggy = rng.choice(n, size=n_buggy, replace=False)
        per_hour = 0.25
        counts = 1 + np.minimum(
            rng.poisson(per_hour * durations[buggy] / 3600.0), 60
        )
        # Trim/scale to land on the budget in expectation.
        total = counts.sum()
        if total > 0:
            factor = budget / total
            counts = np.maximum(1, np.round(counts * factor).astype(int))
        emissions[buggy] = counts
        return emissions


def classify_ml(name: str) -> bool:
    """The paper's heuristic: ML-ness inferred from the job submission name."""
    keywords = ("model", "train", "bert", "gpt", "llm", "torch", "resnet",
                "diffusion", "gnn", "inference", "finetune", "pretrain")
    lowered = name.lower()
    return any(key in lowered for key in keywords)
