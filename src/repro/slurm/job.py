"""Job records: the unit the paper's job-impact analysis works on."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

GpuKey = Tuple[str, str]


class JobState(enum.Enum):
    """Slurm-style terminal job states."""

    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    TIMEOUT = "TIMEOUT"
    OUT_OF_MEMORY = "OUT_OF_MEMORY"
    NODE_FAIL = "NODE_FAIL"
    CANCELLED = "CANCELLED"


class ExitCode(enum.IntEnum):
    """Exit codes used by the substrate (subset of what Delta logs show)."""

    OK = 0
    GENERIC = 1
    USER_ERROR = 2
    KILLED = 137
    SEGFAULT = 139  # the paper's Incident 1 ends in EXITSTATUS 139


@dataclass(frozen=True)
class JobSpec:
    """A job as submitted: everything known before scheduling."""

    job_id: int
    name: str
    user: str
    submit_time: float
    requested_gpus: int
    duration: float  # requested/natural runtime in seconds
    partition: str  # "a40" | "a100" | "h100"
    is_ml: bool
    #: Pre-drawn non-GPU fate: jobs fail for user/system reasons at the
    #: paper's ~25% background rate independent of GPU errors.
    natural_state: JobState = JobState.COMPLETED
    natural_exit_code: int = 0
    #: Number of MMU errors this (buggy) job will emit while running.
    mmu_emissions: int = 0
    #: User-induced XID 13 / 43 emissions (excluded by the pipeline).
    xid13_emissions: int = 0
    xid43_emissions: int = 0


@dataclass
class JobRecord:
    """A job as accounted after execution (a row of the Slurm database)."""

    job_id: int
    name: str
    user: str
    submit_time: float
    start_time: float
    end_time: float
    n_gpus: int
    gpus: Tuple[GpuKey, ...]
    partition: str
    is_ml: bool
    state: JobState = JobState.COMPLETED
    exit_code: int = 0
    #: Generation-side truth (never read by the pipeline): the XID that
    #: killed the job, if any.  Lets tests audit the pipeline's attribution.
    truth_failed_by_xid: Optional[int] = None

    @property
    def elapsed(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    @property
    def elapsed_minutes(self) -> float:
        return self.elapsed / 60.0

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted({node for node, _ in self.gpus}))

    @property
    def gpu_hours(self) -> float:
        return self.elapsed / 3600.0 * self.n_gpus

    @property
    def node_hours(self) -> float:
        return self.elapsed / 3600.0 * len(self.nodes)

    @property
    def succeeded(self) -> bool:
        return self.state is JobState.COMPLETED and self.exit_code == 0

    def failed_at(self, time: float, xid: int, exit_code: int, state: JobState) -> "JobRecord":
        """A copy of this record terminated early by a GPU error."""
        end = min(max(time, self.start_time), self.end_time)
        return replace(
            self,
            end_time=end,
            state=state,
            exit_code=exit_code,
            truth_failed_by_xid=xid,
        )
