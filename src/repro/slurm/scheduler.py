"""GPU scheduling: place the submission stream onto the cluster.

A deliberately simple earliest-available scheduler: each partition (a40 /
a100 / h100) is a pool of GPUs with release times; a job takes the earliest
``k`` GPUs, waiting if the pool is busy.  Draining is modelled through
*blackout intervals*: a GPU inside a blackout accepts no new placements but
jobs already running on it continue — exactly Slurm's drain semantics, which
the paper's recovery narrative (Figure 1) relies on.

The resulting :class:`Schedule` exposes an :class:`OccupancyIndex` used both
by the fault injector (busy/idle placement bias) and by the failure coupler
(which job was on a GPU when an error hit).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.inventory import ClusterInventory
from repro.cluster.node import NodeKind
from repro.slurm.job import GpuKey, JobRecord, JobSpec

Interval = Tuple[float, float]

#: Partition name -> node kinds backing it.
PARTITIONS: Dict[str, Tuple[NodeKind, ...]] = {
    "a40": (NodeKind.A40_X4,),
    "a100": (NodeKind.A100_X4, NodeKind.A100_X8),
    "h100": (NodeKind.GH200_X4,),
}


class OccupancyIndex:
    """Per-GPU interval index over a schedule (busy lookup + sampling)."""

    def __init__(self, jobs: Sequence[JobRecord], window_seconds: float) -> None:
        self.window_seconds = window_seconds
        per_gpu: Dict[GpuKey, List[Tuple[float, float, int]]] = {}
        for job in jobs:
            for gpu in job.gpus:
                per_gpu.setdefault(gpu, []).append((job.start_time, job.end_time, job.job_id))
        self._gpus: List[GpuKey] = sorted(per_gpu)
        self._starts: Dict[GpuKey, np.ndarray] = {}
        self._ends: Dict[GpuKey, np.ndarray] = {}
        self._job_ids: Dict[GpuKey, np.ndarray] = {}
        busy_lengths = []
        for gpu, intervals in per_gpu.items():
            intervals.sort()
            starts = np.array([s for s, _, _ in intervals])
            ends = np.array([e for _, e, _ in intervals])
            ids = np.array([j for _, _, j in intervals], dtype=np.int64)
            self._starts[gpu] = starts
            self._ends[gpu] = ends
            self._job_ids[gpu] = ids
            # Busy time is clipped to the observation window so utilization
            # stays a fraction even when queued jobs run past the window.
            clipped = np.clip(ends, None, window_seconds) - np.clip(
                starts, None, window_seconds
            )
            busy_lengths.append(float(np.maximum(clipped, 0.0).sum()))
        self._busy_lengths = np.array(busy_lengths) if busy_lengths else np.zeros(0)
        self._busy_cumulative = np.cumsum(self._busy_lengths)

    # -- lookup ----------------------------------------------------------

    def job_at(self, gpu: GpuKey, time: float) -> Optional[int]:
        """The job ID running on ``gpu`` at ``time`` (None if idle)."""
        starts = self._starts.get(gpu)
        if starts is None or starts.size == 0:
            return None
        index = int(np.searchsorted(starts, time, side="right")) - 1
        return self._job_at_index(gpu, time, index)

    #: Alias kept for call sites that emphasize the hot path.
    job_at_fast = job_at

    def _job_at_index(self, gpu: GpuKey, time: float, index: int) -> Optional[int]:
        if index < 0:
            return None
        if time < float(self._ends[gpu][index]):
            return int(self._job_ids[gpu][index])
        return None

    def utilization(self, gpu_population: int | None = None) -> float:
        """Busy fraction over (tracked or given) GPUs and the window."""
        n = gpu_population if gpu_population is not None else len(self._gpus)
        if n == 0 or self.window_seconds <= 0:
            return 0.0
        return float(self._busy_lengths.sum()) / (n * self.window_seconds)

    # -- sampling (the injector's OccupancySampler protocol) -------------

    def sample_busy(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[List[GpuKey], np.ndarray]:
        """``n`` (GPU, time) points weighted by busy GPU-time."""
        if n <= 0 or not self._gpus or self._busy_cumulative[-1] <= 0:
            return [], np.zeros(0)
        picks = rng.uniform(0.0, self._busy_cumulative[-1], size=n)
        gpu_idx = np.searchsorted(self._busy_cumulative, picks, side="right")
        gpus: List[GpuKey] = []
        times = np.empty(n)
        for i, g_index in enumerate(gpu_idx):
            gpu = self._gpus[int(g_index)]
            starts = np.minimum(self._starts[gpu], self.window_seconds)
            ends = np.minimum(self._ends[gpu], self.window_seconds)
            lengths = np.maximum(ends - starts, 0.0)
            cumulative = np.cumsum(lengths)
            offset = rng.uniform(0.0, cumulative[-1])
            k = int(np.searchsorted(cumulative, offset, side="right"))
            k = min(k, len(starts) - 1)
            prior = cumulative[k - 1] if k > 0 else 0.0
            times[i] = starts[k] + (offset - prior)
            gpus.append(gpu)
        return gpus, times

    def sample_idle(
        self, rng: np.random.Generator, n: int, candidates: Sequence[GpuKey] | None = None
    ) -> Tuple[List[GpuKey], np.ndarray]:
        """``n`` (GPU, time) points with no job active (rejection sampling)."""
        if n <= 0:
            return [], np.zeros(0)
        pool: Sequence[GpuKey] = candidates if candidates is not None else self._gpus
        if not pool:
            return [], np.zeros(0)
        gpus: List[GpuKey] = []
        times: List[float] = []
        attempts = 0
        max_attempts = 50 * n + 100
        while len(gpus) < n and attempts < max_attempts:
            attempts += 1
            gpu = pool[int(rng.integers(0, len(pool)))]
            t = float(rng.uniform(0.0, self.window_seconds))
            if self.job_at_fast(gpu, t) is None:
                gpus.append(gpu)
                times.append(t)
        # Pathologically full schedules: fall back to busy placement rather
        # than spinning forever.
        while len(gpus) < n:
            extra_gpus, extra_times = self.sample_busy(rng, n - len(gpus))
            if not extra_gpus:
                break
            gpus.extend(extra_gpus)
            times.extend(float(t) for t in extra_times)
        return gpus, np.array(times)


@dataclass
class Schedule:
    """The placed workload plus its GPU population."""

    jobs: List[JobRecord]
    window_seconds: float
    gpu_population: Tuple[GpuKey, ...]
    dropped_jobs: int = 0
    _occupancy: OccupancyIndex | None = field(default=None, repr=False)

    @property
    def occupancy(self) -> OccupancyIndex:
        if self._occupancy is None:
            self._occupancy = OccupancyIndex(self.jobs, self.window_seconds)
        return self._occupancy

    def job_by_id(self) -> Dict[int, JobRecord]:
        return {job.job_id: job for job in self.jobs}

    def utilization(self) -> float:
        return self.occupancy.utilization(gpu_population=len(self.gpu_population))


class GpuScheduler:
    """Earliest-available GPU scheduler with drain-style blackouts."""

    def __init__(
        self,
        cluster: ClusterInventory,
        *,
        blackouts: Mapping[GpuKey, Sequence[Interval]] | None = None,
    ) -> None:
        self.cluster = cluster
        self._blackouts: Dict[GpuKey, List[Interval]] = {
            gpu: sorted(intervals) for gpu, intervals in (blackouts or {}).items()
        }
        self._pools: Dict[str, List[GpuKey]] = {}
        for partition, kinds in PARTITIONS.items():
            gpus = [
                gpu.key
                for node in cluster.nodes_of_kind(*kinds)
                for gpu in node.gpus
            ]
            self._pools[partition] = gpus

    def pool_size(self, partition: str) -> int:
        return len(self._pools.get(partition, ()))

    def schedule(self, jobs: Sequence[JobSpec], window_seconds: float) -> Schedule:
        """Place every job; jobs whose start would fall past the window are
        dropped (counted in ``Schedule.dropped_jobs``)."""
        heaps: Dict[str, List[Tuple[float, GpuKey]]] = {}
        for partition, gpus in self._pools.items():
            heaps[partition] = [(0.0, gpu) for gpu in gpus]
            heapq.heapify(heaps[partition])

        records: List[JobRecord] = []
        dropped = 0
        population: set[GpuKey] = set()
        for spec in sorted(jobs, key=lambda j: j.submit_time):
            heap = heaps.get(spec.partition)
            if not heap:
                dropped += 1
                continue
            k = min(spec.requested_gpus, len(heap))
            taken = self._allocate(heap, spec.submit_time, k)
            start = max(ready for ready, _ in taken)
            if start >= window_seconds:
                # Never starts inside the window: return GPUs untouched.
                for release, gpu in taken:
                    heapq.heappush(heap, (release, gpu))
                dropped += 1
                continue
            end = start + spec.duration
            gpu_keys = tuple(gpu for _, gpu in taken)
            population.update(gpu_keys)
            for _, gpu in taken:
                heapq.heappush(heap, (end, gpu))
            records.append(
                JobRecord(
                    job_id=spec.job_id,
                    name=spec.name,
                    user=spec.user,
                    submit_time=spec.submit_time,
                    start_time=start,
                    end_time=end,
                    n_gpus=k,
                    gpus=gpu_keys,
                    partition=spec.partition,
                    is_ml=spec.is_ml,
                    state=spec.natural_state,
                    exit_code=spec.natural_exit_code,
                )
            )
        all_gpus = tuple(g for pool in self._pools.values() for g in pool)
        return Schedule(
            jobs=records,
            window_seconds=window_seconds,
            gpu_population=all_gpus,
            dropped_jobs=dropped,
        )

    def _allocate(
        self, heap: List[Tuple[float, GpuKey]], submit_time: float, k: int
    ) -> List[Tuple[float, GpuKey]]:
        """Take the ``k`` earliest-available GPUs, packed onto one node when
        a single node can host the job.

        Slurm packs small GPU jobs within a node; node spread matters to the
        analysis because a job's *node*-hours (Figure 9a's loss accounting)
        and its exposure to node-local errors scale with it.
        """
        # Pop a candidate window: enough to usually contain a same-node set.
        window = min(len(heap), max(4 * k, 24))
        candidates: List[Tuple[float, float, GpuKey]] = []  # (ready, release, gpu)
        for _ in range(window):
            release, gpu = heapq.heappop(heap)
            ready = self._skip_blackout(gpu, max(submit_time, release))
            candidates.append((ready, release, gpu))

        # Packing must never delay the job materially: only candidates ready
        # within a bounded slack of the plain earliest-k start are eligible
        # for node-grouping; within that set, fewer nodes win.
        candidates.sort()
        plain_start = candidates[k - 1][0]
        slack = 600.0  # seconds of start delay we trade for packing
        eligible = [c for c in candidates if c[0] <= plain_start + slack]

        by_node: Dict[str, List[Tuple[float, float, GpuKey]]] = {}
        for item in eligible:
            by_node.setdefault(item[2][0], []).append(item)
        packable = [group for group in by_node.values() if len(group) >= k]
        if packable:
            chosen = min(
                (sorted(group)[:k] for group in packable),
                key=lambda group: max(r for r, _, _ in group),
            )
        else:
            # Multi-node job: fill the largest eligible nodes first, topping
            # up with the earliest leftovers.
            chosen = []
            taken_keys: set = set()
            for group in sorted(by_node.values(), key=len, reverse=True):
                if len(chosen) >= k:
                    break
                chosen.extend(sorted(group)[: k - len(chosen)])
            chosen = chosen[:k]
            if len(chosen) < k:
                taken_keys = {gpu for _, _, gpu in chosen}
                for item in candidates:
                    if len(chosen) >= k:
                        break
                    if item[2] not in taken_keys:
                        chosen.append(item)

        chosen_keys = {gpu for _, _, gpu in chosen}
        for ready, release, gpu in candidates:
            if gpu not in chosen_keys:
                # Return unused candidates with their *original* release so
                # later jobs are not penalized by this job's blackout skips.
                heapq.heappush(heap, (release, gpu))
        return [(ready, gpu) for ready, _, gpu in chosen]

    def _skip_blackout(self, gpu: GpuKey, ready: float) -> float:
        """Advance ``ready`` past any blackout (drain) interval covering it."""
        intervals = self._blackouts.get(gpu)
        if not intervals:
            return ready
        for start, end in intervals:
            if start <= ready < end:
                ready = end
            elif start > ready:
                break
        return ready
