"""Checkpoint/restart cost model (paper Section 5.1/5.3).

The paper notes that while checkpointing lets jobs survive GPU errors,
"checkpointing routines have high overhead up to 40% including management,
storage, and restore".  This model quantifies that trade-off for a job
exposed to the measured failure process, supporting the job-recovery
discussion and the long-job MMU-masking behaviour the coupler applies:

* without checkpointing, a failure loses all progress (resubmit from zero);
* with interval ``tau``, steady-state overhead is ``C/tau`` (write cost)
  plus expected rework of ``tau/2`` and restore ``R`` per failure;
* :func:`optimal_interval` is the Young/Daly first-order optimum
  ``sqrt(2 C M)`` for MTBF ``M``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class CheckpointConfig:
    """Costs in hours."""

    checkpoint_cost_hours: float = 0.1  # write + management
    restore_cost_hours: float = 0.25
    mtbf_hours: float = 67.0  # the measured per-node MTBE

    def __post_init__(self) -> None:
        check_positive("checkpoint_cost_hours", self.checkpoint_cost_hours)
        check_positive("restore_cost_hours", self.restore_cost_hours)
        check_positive("mtbf_hours", self.mtbf_hours)


def optimal_interval(config: CheckpointConfig) -> float:
    """Young's approximation of the optimal checkpoint interval (hours).

    Clamped to the MTBF: ``sqrt(2 C M)`` exceeds ``M`` once the checkpoint
    cost passes half the mean failure gap (the first-order expansion is
    outside its validity range there), and an interval longer than the mean
    gap would mean most runs never reach their first checkpoint.  Degenerate
    configs (checkpoint cost at or above the MTBF) therefore checkpoint
    once per mean failure gap instead of effectively never.
    """
    tau = math.sqrt(2.0 * config.checkpoint_cost_hours * config.mtbf_hours)
    return min(tau, config.mtbf_hours)


def expected_overhead(config: CheckpointConfig, interval_hours: float) -> float:
    """Expected fractional runtime overhead at a given interval.

    Overhead = checkpoint writes (C/tau) + failure rework ((tau/2 + R)/M).
    The paper's "up to 40%" regime corresponds to aggressive intervals or
    short MTBFs.
    """
    check_positive("interval_hours", interval_hours)
    write = config.checkpoint_cost_hours / interval_hours
    rework = (interval_hours / 2.0 + config.restore_cost_hours) / config.mtbf_hours
    return write + rework


@dataclass(frozen=True)
class RunOutcome:
    wall_hours: float
    n_failures: int
    n_checkpoints: int

    def overhead(self, useful_hours: float) -> float:
        return self.wall_hours / useful_hours - 1.0


def simulate_run(
    useful_hours: float,
    config: CheckpointConfig,
    interval_hours: float | None = None,
    *,
    seed: int = 7,
    checkpointing: bool = True,
) -> RunOutcome:
    """Simulate one job execution under Poisson failures.

    With ``checkpointing=False`` a failure restarts the job from zero —
    the regime in which long jobs essentially cannot finish once their
    length passes a few MTBFs.
    """
    check_positive("useful_hours", useful_hours)
    tau = interval_hours if interval_hours is not None else optimal_interval(config)
    rng = np.random.default_rng(seed)
    progress = 0.0  # durable (checkpointed) progress
    wall = 0.0
    since_checkpoint = 0.0
    n_failures = 0
    n_checkpoints = 0
    #: Hard cap so a no-checkpoint run of a too-long job terminates.
    max_wall = useful_hours * 200.0

    next_failure = rng.exponential(config.mtbf_hours)
    while progress < useful_hours and wall < max_wall:
        # Time until the next interesting boundary.
        to_checkpoint = tau - since_checkpoint if checkpointing else math.inf
        to_done = useful_hours - (progress + since_checkpoint)
        step = min(to_checkpoint, to_done)
        if wall + step < next_failure:
            wall += step
            since_checkpoint += step
            if checkpointing and since_checkpoint >= tau and progress + since_checkpoint < useful_hours:
                progress += since_checkpoint
                since_checkpoint = 0.0
                wall += config.checkpoint_cost_hours
                n_checkpoints += 1
            elif progress + since_checkpoint >= useful_hours:
                progress += since_checkpoint
                since_checkpoint = 0.0
        else:
            # Failure strikes mid-segment: lose work since the last durable
            # point, pay the restore cost.
            wall = next_failure
            n_failures += 1
            since_checkpoint = 0.0
            if not checkpointing:
                progress = 0.0
            wall += config.restore_cost_hours
            next_failure = wall + rng.exponential(config.mtbf_hours)
    return RunOutcome(wall_hours=wall, n_failures=n_failures, n_checkpoints=n_checkpoints)
