"""Slurm accounting database: job rows and node availability events.

A light stand-in for the ``sacct``/``sacctmgr event list`` tables the paper
mined: job completion records plus node DOWN/DRAIN intervals.  Supports
round-tripping through JSON-lines files so examples can persist datasets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from repro.slurm.job import GpuKey, JobRecord, JobState


@dataclass(frozen=True)
class NodeEvent:
    """One node-unavailability interval (drain + reboot/repair)."""

    node_id: str
    start_time: float
    duration_hours: float
    reason: str  # e.g. "xid119", "xid95"

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_hours * 3600.0


class SlurmDatabase:
    """Job accounting plus node events, with simple query helpers."""

    def __init__(
        self,
        jobs: Sequence[JobRecord],
        node_events: Sequence[NodeEvent] = (),
        window_seconds: float = 0.0,
    ) -> None:
        self.jobs: List[JobRecord] = sorted(jobs, key=lambda j: j.start_time)
        self.node_events: List[NodeEvent] = sorted(node_events, key=lambda e: e.start_time)
        self.window_seconds = window_seconds

    def __len__(self) -> int:
        return len(self.jobs)

    # -- queries ----------------------------------------------------------

    def job(self, job_id: int) -> JobRecord:
        for record in self.jobs:
            if record.job_id == job_id:
                return record
        raise KeyError(f"no job {job_id}")

    def completed_jobs(self) -> List[JobRecord]:
        return [j for j in self.jobs if j.succeeded]

    def failed_jobs(self) -> List[JobRecord]:
        return [j for j in self.jobs if not j.succeeded]

    def success_rate(self) -> float:
        if not self.jobs:
            return 0.0
        return len(self.completed_jobs()) / len(self.jobs)

    def jobs_on_gpu(self, gpu: GpuKey) -> List[JobRecord]:
        return [j for j in self.jobs if gpu in j.gpus]

    def total_downtime_node_hours(self) -> float:
        return sum(e.duration_hours for e in self.node_events)

    # -- vector views for the analyzers ------------------------------------

    def elapsed_minutes(self) -> np.ndarray:
        return np.array([j.elapsed_minutes for j in self.jobs])

    def states(self) -> List[JobState]:
        return [j.state for j in self.jobs]

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the database as JSON lines (jobs, then node events)."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            meta = {"kind": "meta", "window_seconds": self.window_seconds}
            handle.write(json.dumps(meta) + "\n")
            for job in self.jobs:
                handle.write(json.dumps(_job_to_dict(job)) + "\n")
            for event in self.node_events:
                handle.write(json.dumps(_event_to_dict(event)) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "SlurmDatabase":
        jobs: List[JobRecord] = []
        events: List[NodeEvent] = []
        window = 0.0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                row = json.loads(line)
                kind = row.pop("kind")
                if kind == "meta":
                    window = row["window_seconds"]
                elif kind == "job":
                    jobs.append(_job_from_dict(row))
                elif kind == "node_event":
                    events.append(NodeEvent(**row))
                else:  # defensive: unknown rows are an input error
                    raise ValueError(f"unknown row kind {kind!r} in {path}")
        return cls(jobs, events, window_seconds=window)


def _job_to_dict(job: JobRecord) -> Dict:
    return {
        "kind": "job",
        "job_id": job.job_id,
        "name": job.name,
        "user": job.user,
        "submit_time": job.submit_time,
        "start_time": job.start_time,
        "end_time": job.end_time,
        "n_gpus": job.n_gpus,
        "gpus": [list(g) for g in job.gpus],
        "partition": job.partition,
        "is_ml": job.is_ml,
        "state": job.state.value,
        "exit_code": job.exit_code,
        "truth_failed_by_xid": job.truth_failed_by_xid,
    }


def _job_from_dict(row: Dict) -> JobRecord:
    return JobRecord(
        job_id=row["job_id"],
        name=row["name"],
        user=row["user"],
        submit_time=row["submit_time"],
        start_time=row["start_time"],
        end_time=row["end_time"],
        n_gpus=row["n_gpus"],
        gpus=tuple((node, bus) for node, bus in row["gpus"]),
        partition=row["partition"],
        is_ml=row["is_ml"],
        state=JobState(row["state"]),
        exit_code=row["exit_code"],
        truth_failed_by_xid=row.get("truth_failed_by_xid"),
    )


def _event_to_dict(event: NodeEvent) -> Dict:
    return {
        "kind": "node_event",
        "node_id": event.node_id,
        "start_time": event.start_time,
        "duration_hours": event.duration_hours,
        "reason": event.reason,
    }
