"""Node lifecycle: the drain -> reboot -> health-check recovery loop.

Section 5.4 describes the operator procedure behind every repair incident:
"operators typically drain the node i.e. wait for other jobs running on the
node to complete and then reboot. After the reboot, if the node
successfully passes the health check, the node reset is successful ...
If the reset is unsuccessful, the node is marked failed until the GPU is
physically replaced."  Figure 1's incident spends 23 node-hours inside this
loop.

:class:`NodeLifecycle` is that procedure as an explicit state machine with
a transition log, so recovery times decompose into drain / reboot /
health-check / replacement segments instead of a single opaque duration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.util.validation import check_probability


class NodeState(enum.Enum):
    IDLE = "idle"
    ALLOCATED = "allocated"
    DRAINING = "draining"  # no new jobs; running work finishes
    REBOOTING = "rebooting"
    HEALTH_CHECK = "health_check"
    FAILED = "failed"  # awaiting physical replacement


#: Legal transitions; anything else is a programming error.
_TRANSITIONS = {
    NodeState.IDLE: {NodeState.ALLOCATED, NodeState.DRAINING, NodeState.REBOOTING},
    NodeState.ALLOCATED: {NodeState.IDLE, NodeState.DRAINING},
    NodeState.DRAINING: {NodeState.REBOOTING},
    NodeState.REBOOTING: {NodeState.HEALTH_CHECK},
    NodeState.HEALTH_CHECK: {NodeState.IDLE, NodeState.FAILED, NodeState.REBOOTING},
    NodeState.FAILED: {NodeState.REBOOTING},  # after hardware replacement
}


@dataclass(frozen=True)
class Transition:
    time: float
    source: NodeState
    target: NodeState
    reason: str = ""


@dataclass
class RecoveryOutcome:
    """One full pass through the recovery loop."""

    started_at: float
    finished_at: float
    drain_hours: float
    reboot_hours: float
    health_check_hours: float
    replaced: bool

    @property
    def total_hours(self) -> float:
        return (self.finished_at - self.started_at) / 3600.0


@dataclass
class LifecycleConfig:
    reboot_hours: float = 0.25
    health_check_hours: float = 0.05
    #: Probability the health check passes on the first try.
    health_pass_prob: float = 0.92
    #: One failed health check triggers a second reboot; a second failure
    #: marks the node FAILED pending replacement.
    replacement_hours: float = 24.0

    def __post_init__(self) -> None:
        check_probability("health_pass_prob", self.health_pass_prob)


class NodeLifecycle:
    """State machine for one node."""

    def __init__(self, node_id: str, config: LifecycleConfig | None = None) -> None:
        self.node_id = node_id
        self.config = config or LifecycleConfig()
        self.state = NodeState.IDLE
        self.log: List[Transition] = []
        self._drain_started: Optional[float] = None

    # ------------------------------------------------------------------

    def _move(self, time: float, target: NodeState, reason: str = "") -> None:
        if target not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal transition {self.state.value} -> {target.value} "
                f"on {self.node_id}"
            )
        self.log.append(Transition(time, self.state, target, reason))
        self.state = target

    def allocate(self, time: float) -> None:
        self._move(time, NodeState.ALLOCATED, "job scheduled")

    def release(self, time: float) -> None:
        self._move(time, NodeState.IDLE, "job completed")

    def drain(self, time: float, reason: str) -> None:
        """An error triggers draining (works from IDLE or ALLOCATED)."""
        self._move(time, NodeState.DRAINING, reason)
        self._drain_started = time

    # ------------------------------------------------------------------

    def recover(
        self,
        drain_complete_at: float,
        rng: np.random.Generator,
    ) -> RecoveryOutcome:
        """Run the reboot/health-check loop after draining finishes.

        ``drain_complete_at`` is when the last running job vacated the node
        (Figure 1: up to many hours after the drain started).
        """
        if self.state is not NodeState.DRAINING or self._drain_started is None:
            raise ValueError("recover() requires the node to be draining")
        config = self.config
        started = self._drain_started
        drain_hours = (drain_complete_at - started) / 3600.0
        if drain_hours < 0:
            raise ValueError("drain cannot complete before it starts")

        now = drain_complete_at
        reboot_hours = 0.0
        health_hours = 0.0
        replaced = False
        for attempt in range(2):
            self._move(now, NodeState.REBOOTING, f"reboot attempt {attempt + 1}")
            now += config.reboot_hours * 3600.0
            reboot_hours += config.reboot_hours
            self._move(now, NodeState.HEALTH_CHECK)
            now += config.health_check_hours * 3600.0
            health_hours += config.health_check_hours
            if rng.random() < config.health_pass_prob:
                self._move(now, NodeState.IDLE, "health check passed")
                break
            # Failed: loop back (HEALTH_CHECK -> REBOOTING) for one retry.
        if self.state is not NodeState.IDLE:
            # Two failed health checks: replace hardware, then reboot once.
            self._move(now, NodeState.FAILED, "health check failed twice")
            now += config.replacement_hours * 3600.0
            replaced = True
            self._move(now, NodeState.REBOOTING, "post-replacement reboot")
            now += config.reboot_hours * 3600.0
            reboot_hours += config.reboot_hours
            self._move(now, NodeState.HEALTH_CHECK)
            now += config.health_check_hours * 3600.0
            health_hours += config.health_check_hours
            self._move(now, NodeState.IDLE, "healthy after replacement")

        self._drain_started = None
        return RecoveryOutcome(
            started_at=started,
            finished_at=now,
            drain_hours=drain_hours,
            reboot_hours=reboot_hours,
            health_check_hours=health_hours,
            replaced=replaced,
        )

    # ------------------------------------------------------------------

    def time_in_state(self, state: NodeState, until: float) -> float:
        """Total seconds spent in ``state`` up to ``until``."""
        total = 0.0
        current_state = NodeState.IDLE
        entered = 0.0
        for transition in self.log:
            if current_state is state:
                total += transition.time - entered
            current_state = transition.target
            entered = transition.time
        if current_state is state:
            total += until - entered
        return total
