"""The staged ingestion pipeline: Source -> Extract -> Coalesce -> Consumers.

One code path for every way records enter the system — batch file sets,
in-memory line streams, live tails, and synthetic record streams — with
a parallel sharded extraction front-end and interchangeable batch /
streaming coalescing.  See ``docs/pipeline.md`` for the design.
"""

from repro.pipeline.engine import Consumer, IngestPipeline, PipelineResult
from repro.pipeline.extract import extract_records, iter_source_records
from repro.pipeline.sources import (
    FileSetSource,
    FileShard,
    LinesSource,
    RecordsSource,
    Source,
    TailSource,
)
from repro.pipeline.stages import (
    CoalesceOutcome,
    CoalesceStage,
    StreamingCoalesce,
    VectorizedCoalesce,
    make_stage,
)

__all__ = [
    "Consumer",
    "IngestPipeline",
    "PipelineResult",
    "extract_records",
    "iter_source_records",
    "FileSetSource",
    "FileShard",
    "LinesSource",
    "RecordsSource",
    "Source",
    "TailSource",
    "CoalesceOutcome",
    "CoalesceStage",
    "StreamingCoalesce",
    "VectorizedCoalesce",
    "make_stage",
]
