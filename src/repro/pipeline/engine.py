"""The staged pipeline: Source -> Extract -> Coalesce -> Consumers.

:class:`IngestPipeline` is the one code path every ingestion surface
rides.  The batch study runs a :class:`~repro.pipeline.sources.FileSetSource`
through parallel extraction into the vectorized coalescer; the monitor
runs the same file set through the streaming coalescer for live alarms;
the fleet health service runs a :class:`~repro.pipeline.sources.TailSource`
in extract-only mode (its sharded registry owns the streaming
coalescers); simulated streams enter through
:class:`~repro.pipeline.sources.RecordsSource`.  Fixes to extraction or
coalescing now land on all of them at once.

Consumers observe the record stream as it flows (per-GPU health
registries, metrics counters, record sinks); the coalesce stage consumes
the same stream after the consumers see each record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.core.coalesce import CoalesceConfig, CoalescedError
from repro.core.parsing import RawXidRecord
from repro.core.streaming import PersistenceAlarm
from repro.pipeline.extract import iter_source_records
from repro.pipeline.sources import Source
from repro.pipeline.stages import CoalesceOutcome, CoalesceStage, make_stage


class Consumer:
    """Observes the record stream; override what you need."""

    def on_record(self, record: RawXidRecord) -> None:  # pragma: no cover
        pass

    def close(self) -> None:
        pass


@dataclass
class PipelineResult:
    """What one pipeline run produced."""

    n_records: int
    errors: List[CoalescedError] = field(default_factory=list)
    n_errors: int = 0
    alarms: List[PersistenceAlarm] = field(default_factory=list)


class IngestPipeline:
    """Compose a source, the extraction front-end, a coalesce stage, and
    any number of record consumers.

    ``coalesce`` is a :class:`~repro.pipeline.stages.CoalesceStage`, an
    engine name (``"vectorized"`` / ``"streaming"``), or ``None`` for
    extract-only runs (live services that coalesce inside their own
    sharded state).  ``workers`` shards extraction across processes for
    sources that support it; the record stream is identical for every
    worker count.
    """

    def __init__(
        self,
        source: Source,
        *,
        workers: int = 1,
        coalesce: CoalesceStage | str | None = "vectorized",
        coalesce_config: CoalesceConfig | None = None,
        consumers: Sequence[Consumer] = (),
    ) -> None:
        if isinstance(coalesce, str):
            coalesce = make_stage(coalesce, coalesce_config)
        elif coalesce is not None and coalesce_config is not None:
            raise ValueError("pass coalesce_config only with an engine name")
        self.source = source
        self.workers = workers
        self.coalesce = coalesce
        self.consumers = tuple(consumers)
        self.n_records = 0

    def records(self) -> Iterator[RawXidRecord]:
        """The extracted record stream, observed by every consumer."""
        consumers = self.consumers
        for record in iter_source_records(self.source, workers=self.workers):
            self.n_records += 1
            for consumer in consumers:
                consumer.on_record(record)
            yield record

    def run(self) -> PipelineResult:
        """Drain the source through every stage and bundle the result."""
        try:
            if self.coalesce is None:
                for _ in self.records():
                    pass
                outcome = CoalesceOutcome(errors=[], n_errors=0)
            else:
                outcome = self.coalesce.run(self.records())
        finally:
            for consumer in self.consumers:
                consumer.close()
        return PipelineResult(
            n_records=self.n_records,
            errors=outcome.errors,
            n_errors=outcome.n_errors,
            alarms=outcome.alarms,
        )
