"""Sources: where records enter the staged ingestion pipeline.

A :class:`Source` describes *where raw records come from* and nothing
else; Extract (:mod:`repro.pipeline.extract`) decides *how* to pull them
out (serially or sharded over a process pool) and Coalesce
(:mod:`repro.pipeline.stages`) turns them into errors.  Three shapes
cover every ingestion surface in the repository:

* **file sets** (:class:`FileSetSource`) — a directory or explicit list
  of per-node syslog files, the batch-study shape.  Each file is an
  independent *shard*: it can be parsed by any worker process, and its
  records are time-ordered (node-local syslog is chronological), so the
  per-shard streams k-way-merge into one globally time-ordered stream.
* **in-memory line streams** (:class:`LinesSource`) — an iterable of raw
  syslog text, the in-memory study and adapter shape.  One shard, no
  ordering promise.
* **live tails** (:class:`TailSource`) — a directory being appended to,
  wrapped around :class:`~repro.fleet.tailer.DirectoryTailer`.  Live
  sources have no shard list (the stream is unbounded); records arrive
  in arrival order, which preserves per-GPU time order.

:class:`RecordsSource` closes the loop for simulated streams: already-
parsed (or synthetically generated) records enter the very same pipeline
the batch and live paths use.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

from repro.core.parsing import (
    RawXidRecord,
    iter_file_records,
    iter_parse_syslog,
)


# ---------------------------------------------------------------------------
# Shards: the unit of (potentially parallel) extraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FileShard:
    """One log file; picklable, so worker processes can parse it."""

    path: Path

    def iter_records(self) -> Iterator[RawXidRecord]:
        return iter_file_records(self.path)


class LineShard:
    """An in-memory line iterable (single-use, not picklable)."""

    def __init__(self, lines: Iterable[str]) -> None:
        self._lines = lines

    def iter_records(self) -> Iterator[RawXidRecord]:
        return iter_parse_syslog(self._lines)


class RecordShard:
    """Already-parsed records (synthetic streams, replayed traces)."""

    def __init__(self, records: Iterable[RawXidRecord]) -> None:
        self._records = records

    def iter_records(self) -> Iterator[RawXidRecord]:
        return iter(self._records)


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


class Source:
    """Base class: a description of where records come from.

    Class attributes describe the contract Extract relies on:

    ``live``
        The stream is unbounded and arrives over time; there is no shard
        list and :meth:`iter_records` blocks until the source is stopped.
    ``parallelizable``
        Shards are picklable and independent, so Extract may fan them
        out over worker processes.
    ``merge_by_time``
        Every shard's records are individually time-ordered, so Extract
        k-way-merges the per-shard streams into one globally
        time-ordered stream (required for the streaming coalescer's
        ordering contract; harmless for the batch path, which sorts).
    ``reiterable``
        :meth:`shards` may be called repeatedly and every pass yields
        the same records (files and store segments are; one-shot
        in-memory iterables are not).  Consumers that would otherwise
        materialize the stream (the study's record cache) may stream
        instead when the source is reiterable.
    """

    live: bool = False
    parallelizable: bool = False
    merge_by_time: bool = False
    reiterable: bool = False

    def shards(self) -> Sequence[object]:
        raise NotImplementedError

    def iter_records(self) -> Iterator[RawXidRecord]:
        """Serial record stream (live sources override this)."""
        from repro.pipeline.extract import iter_source_records

        return iter_source_records(self, workers=1)


class FileSetSource(Source):
    """A fixed set of node log files (a directory, or explicit paths)."""

    parallelizable = True
    merge_by_time = True
    reiterable = True

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        paths: Iterable[str | Path] | None = None,
    ) -> None:
        if (directory is None) == (paths is None):
            raise ValueError("pass exactly one of directory= or paths=")
        if directory is not None:
            from repro.syslog.reader import list_log_files

            self.paths: List[Path] = list_log_files(directory)
        else:
            self.paths = [Path(p) for p in paths]  # caller-chosen order

    def shards(self) -> Sequence[FileShard]:
        return [FileShard(path) for path in self.paths]


class LinesSource(Source):
    """An in-memory iterable of raw syslog lines (one unordered shard)."""

    def __init__(self, lines: Iterable[str]) -> None:
        self._shard = LineShard(lines)

    def shards(self) -> Sequence[LineShard]:
        return [self._shard]


class RecordsSource(Source):
    """Already-parsed records entering the pipeline directly.

    ``ordered=True`` declares the records time-ordered (a replayed trace,
    a simulator's event stream), which lets the streaming coalescer run
    downstream.
    """

    def __init__(
        self, records: Iterable[RawXidRecord], *, ordered: bool = False
    ) -> None:
        self._shard = RecordShard(records)
        self.merge_by_time = ordered

    def shards(self) -> Sequence[RecordShard]:
        return [self._shard]


class TailSource(Source):
    """Live tail of a directory of appended-to node logs.

    Wraps :class:`~repro.fleet.tailer.DirectoryTailer`; the tailer's
    bounded queue remains the backpressure boundary.  The caller owns the
    lifecycle: :meth:`start` before consuming, :meth:`stop` to end the
    stream (the record iterator finishes once the workers drain out).
    """

    live = True

    def __init__(
        self,
        directory: str | Path,
        *,
        queue_size: int = 4096,
        workers: int = 2,
        poll_interval: float = 0.05,
        from_start: bool = True,
    ) -> None:
        from repro.fleet.tailer import DirectoryTailer

        self.tailer = DirectoryTailer(
            directory,
            queue_size=queue_size,
            workers=workers,
            poll_interval=poll_interval,
            from_start=from_start,
        )

    def start(self) -> "TailSource":
        self.tailer.start()
        return self

    def stop(self) -> None:
        self.tailer.stop()

    def join(self, timeout: float | None = None) -> None:
        self.tailer.join(timeout)

    def iter_records(self) -> Iterator[RawXidRecord]:
        return self.tailer.records()
