"""Coalesce: Algorithm 1 as an interchangeable pipeline stage.

Two implementations of one interface, provably equivalent (the property
suite drives randomized streams through both and demands identical
:class:`~repro.core.coalesce.CoalescedError` sequences):

* :class:`VectorizedCoalesce` — batch Algorithm 1
  (:func:`~repro.core.coalesce.coalesce_errors`), the numpy fast path.
  Order-indifferent: it groups and sorts internally.
* :class:`StreamingCoalesce` — the incremental
  :class:`~repro.core.streaming.StreamingCoalescer`, which additionally
  fires live persistence alarms and can run with O(open runs) memory
  (``keep_closed=False``).  Requires per-GPU time order (window-tolerant
  to late arrivals), which the extraction front-end's time merge
  provides.

Both sort their output by ``(time, node, bus, xid)``, so a drained
streaming stage and a batch stage over the same records return the same
sequence — the property the batch/live convergence rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro import obs
from repro.core.coalesce import CoalesceConfig, CoalescedError, coalesce_errors
from repro.core.parsing import RawXidRecord
from repro.core.streaming import PersistenceAlarm, StreamingCoalescer


@dataclass
class CoalesceOutcome:
    """What one coalescing pass produced.

    ``errors`` is empty when a streaming stage runs with
    ``keep_closed=False`` (the errors went to ``on_close``); ``n_errors``
    counts them either way.
    """

    errors: List[CoalescedError]
    n_errors: int
    alarms: List[PersistenceAlarm] = field(default_factory=list)


class CoalesceStage:
    """Interface: records in, :class:`CoalesceOutcome` out."""

    name: str = "abstract"

    def run(self, records: Iterable[RawXidRecord]) -> CoalesceOutcome:
        raise NotImplementedError


class VectorizedCoalesce(CoalesceStage):
    """Batch Algorithm 1 — the vectorized numpy fast path."""

    name = "vectorized"

    def __init__(self, config: CoalesceConfig | None = None) -> None:
        self.config = config or CoalesceConfig()

    def run(self, records: Iterable[RawXidRecord]) -> CoalesceOutcome:
        with obs.span("pipeline.coalesce", engine=self.name) as span:
            errors = coalesce_errors(records, self.config)
            span.add("pipeline.errors", len(errors))
        return CoalesceOutcome(errors=errors, n_errors=len(errors))


class StreamingCoalesce(CoalesceStage):
    """Incremental Algorithm 1 with live persistence alarms.

    ``on_alarm`` fires the moment an open run crosses
    ``alarm_after_seconds`` — while the stream is still being consumed,
    which is the entire point of the live path.  ``keep_closed=False``
    plus an ``on_close`` callback keeps memory O(open runs) for
    unbounded streams.
    """

    name = "streaming"

    def __init__(
        self,
        config: CoalesceConfig | None = None,
        *,
        alarm_after_seconds: float = 600.0,
        keep_closed: bool = True,
        on_open: Optional[Callable[[RawXidRecord], None]] = None,
        on_close: Optional[Callable[[CoalescedError], None]] = None,
        on_alarm: Optional[Callable[[PersistenceAlarm], None]] = None,
        time_regression: str = "raise",
    ) -> None:
        self.config = config or CoalesceConfig()
        self.alarm_after_seconds = alarm_after_seconds
        self.keep_closed = keep_closed
        self.on_open = on_open
        self.on_close = on_close
        self.on_alarm = on_alarm
        self.time_regression = time_regression

    def run(self, records: Iterable[RawXidRecord]) -> CoalesceOutcome:
        n_closed = 0

        def _count_closed(error: CoalescedError) -> None:
            nonlocal n_closed
            n_closed += 1
            if self.on_close is not None:
                self.on_close(error)

        coalescer = StreamingCoalescer(
            window_seconds=self.config.window_seconds,
            max_persistence=self.config.max_persistence,
            alarm_after_seconds=self.alarm_after_seconds,
            keep_closed=self.keep_closed,
            on_open=self.on_open,
            on_close=_count_closed,
            time_regression=self.time_regression,
        )
        with obs.span("pipeline.coalesce", engine=self.name) as span:
            for alarm in coalescer.feed_many(records):
                if self.on_alarm is not None:
                    self.on_alarm(alarm)
            errors = coalescer.flush()
            span.add("pipeline.errors", n_closed)
        return CoalesceOutcome(
            errors=errors, n_errors=n_closed, alarms=list(coalescer.alarms)
        )


def make_stage(
    engine: str, config: CoalesceConfig | None = None, **kwargs
) -> CoalesceStage:
    """Build a stage by name (``"vectorized"`` or ``"streaming"``)."""
    if engine == "vectorized":
        if kwargs:
            raise ValueError(f"vectorized stage takes no options, got {kwargs}")
        return VectorizedCoalesce(config)
    if engine == "streaming":
        return StreamingCoalesce(config, **kwargs)
    raise ValueError(f"unknown coalesce engine {engine!r}")
