"""Extract: turn a source's shards into one ordered record stream.

The serial path streams each shard lazily; the parallel path fans the
shards out over a ``multiprocessing.Pool`` (the same idiom as
:mod:`repro.sim.sweep`) and collects per-shard record lists.  Both paths
then combine the per-shard streams the same way — a k-way merge by
timestamp when the source declares its shards time-ordered, plain
concatenation otherwise — so the resulting stream is *identical*
(records and order) for any worker count.  That identity is what lets
every consumer, batch or streaming, sit behind one extraction front-end:

* the k-way merge yields a globally time-ordered stream, satisfying the
  :class:`~repro.core.streaming.StreamingCoalescer` ordering contract;
* batch Algorithm 1 sorts internally, so it is order-indifferent and
  sees the same multiset either way.

Merge ties break by shard order (``heapq.merge`` is stable), which is
fixed by the source — never by which worker finished first.
"""

from __future__ import annotations

import heapq
import multiprocessing
import operator
from typing import Iterator, List

from repro import obs
from repro.core.parsing import RawXidRecord
from repro.pipeline.sources import Source


def _parse_shard(shard) -> List[RawXidRecord]:
    """Fully parse one shard (module-level so pool workers can pickle it)."""
    with obs.span("pipeline.extract.shard") as span:
        records = list(shard.iter_records())
        span.add("pipeline.shard_records", len(records))
        return records


def _init_extract_worker(context) -> None:
    """Pool initializer: adopt the parent's trace context (or none)."""
    obs.activate_context(context)


def iter_source_records(source: Source, *, workers: int = 1) -> Iterator[RawXidRecord]:
    """Stream every record a source holds, optionally parsing in parallel.

    ``workers=1`` streams shards lazily with no pool; ``workers>1`` shards
    extraction across processes when the source supports it (falling back
    to the serial path for single-shard or non-picklable sources).  The
    output stream is identical for every worker count.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if source.live:
        yield from source.iter_records()
        return

    shards = list(source.shards())
    if workers > 1 and source.parallelizable and len(shards) > 1:
        n_workers = min(workers, len(shards))
        chunksize = max(1, len(shards) // (n_workers * 4))
        with obs.span("pipeline.extract", shards=len(shards), workers=n_workers):
            # Captured inside the span so worker root spans parent here.
            context = obs.current_context(label="extract")
            with multiprocessing.Pool(
                processes=n_workers,
                initializer=_init_extract_worker,
                initargs=(context,),
            ) as pool:
                streams: List[List[RawXidRecord]] = pool.map(
                    _parse_shard, shards, chunksize=chunksize
                )
    else:
        streams = [shard.iter_records() for shard in shards]  # type: ignore[misc]

    if source.merge_by_time and len(shards) > 1:
        yield from obs.span_iter(
            "pipeline.merge",
            heapq.merge(*streams, key=operator.attrgetter("time")),
            counter="pipeline.records",
            shards=len(shards),
        )
    else:
        yield from obs.span_iter(
            "pipeline.concat", _chain(streams), counter="pipeline.records"
        )


def _chain(streams) -> Iterator[RawXidRecord]:
    for stream in streams:
        yield from stream


def extract_records(source: Source, *, workers: int = 1) -> List[RawXidRecord]:
    """Materialized convenience wrapper around :func:`iter_source_records`."""
    return list(iter_source_records(source, workers=workers))
