"""DCGM-style GPU telemetry: the paper's utilization data source.

Section 2.4 characterizes Delta's utilization from GPU monitoring data:
A100s around 51%, A40s around 40%, H100s around 20% with some GPUs "not
being scheduled at all".  This subpackage emits per-GPU metric samples
(utilization, cumulative ECC counters, retired pages) from a schedule and
a fault trace — the nvidia-smi/DCGM view of the same world the syslog
renders — and analyzes them back into the Section-2.4 statistics.
"""

from repro.telemetry.metrics import (
    GpuSample,
    MetricsEmitter,
    UtilizationAnalyzer,
    UtilizationSummary,
    load_samples_csv,
)

__all__ = [
    "GpuSample",
    "MetricsEmitter",
    "UtilizationAnalyzer",
    "UtilizationSummary",
    "load_samples_csv",
]
