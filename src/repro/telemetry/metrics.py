"""Per-GPU metric sampling and utilization analysis.

``MetricsEmitter`` walks a schedule's occupancy and a fault trace at a
fixed sampling interval and produces :class:`GpuSample` rows — the shape a
DCGM/nvidia-smi collector exports.  ``UtilizationAnalyzer`` recovers
Section 2.4's per-model utilization statistics from the samples alone.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.gpu import GpuModel
from repro.cluster.inventory import ClusterInventory
from repro.faults.events import FaultTrace
from repro.faults.xid import Xid
from repro.slurm.scheduler import Schedule

GpuKey = Tuple[str, str]


@dataclass(frozen=True)
class GpuSample:
    """One sampling-interval row for one GPU."""

    time: float
    node_id: str
    pci_bus: str
    model: str
    utilization: float  # busy fraction of the interval, [0, 1]
    ecc_dbe_total: int  # cumulative double-bit errors so far
    retired_pages: int  # cumulative containment page-offlines so far

    @property
    def gpu_key(self) -> GpuKey:
        return (self.node_id, self.pci_bus)


class MetricsEmitter:
    """Sample a dataset's schedule + trace into DCGM-style rows."""

    def __init__(
        self,
        cluster: ClusterInventory,
        schedule: Schedule,
        trace: FaultTrace,
        *,
        interval_hours: float = 24.0,
    ) -> None:
        if interval_hours <= 0:
            raise ValueError("sampling interval must be positive")
        self.cluster = cluster
        self.schedule = schedule
        self.trace = trace
        self.interval_seconds = interval_hours * 3600.0

    def samples(self, models: Sequence[GpuModel] | None = None) -> Iterator[GpuSample]:
        """Yield samples for every GPU of the requested models."""
        occupancy = self.schedule.occupancy
        window = self.schedule.window_seconds
        wanted = set(models) if models else None

        # Cumulative error counters per GPU, ordered by time.
        dbe_times: Dict[GpuKey, List[float]] = {}
        offline_times: Dict[GpuKey, List[float]] = {}
        for event in self.trace.events:
            if event.xid is Xid.DBE:
                dbe_times.setdefault(event.gpu_key, []).append(event.time)
            elif event.xid is Xid.CONTAINED:
                offline_times.setdefault(event.gpu_key, []).append(event.time)

        times = np.arange(self.interval_seconds, window + 1.0, self.interval_seconds)
        for node in self.cluster.gpu_nodes:
            for gpu in node.gpus:
                if wanted is not None and gpu.model not in wanted:
                    continue
                starts = occupancy._starts.get(gpu.key)
                ends = occupancy._ends.get(gpu.key)
                for t in times:
                    lo = t - self.interval_seconds
                    busy = 0.0
                    if starts is not None:
                        clipped = np.minimum(ends, t) - np.maximum(starts, lo)
                        busy = float(np.clip(clipped, 0.0, None).sum())
                    yield GpuSample(
                        time=float(t),
                        node_id=gpu.node_id,
                        pci_bus=gpu.pci_bus,
                        model=gpu.model.value,
                        utilization=min(busy / self.interval_seconds, 1.0),
                        ecc_dbe_total=_count_before(dbe_times.get(gpu.key), t),
                        retired_pages=_count_before(offline_times.get(gpu.key), t),
                    )

    def write_csv(self, path: str | Path,
                  models: Sequence[GpuModel] | None = None) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["time", "node", "pci_bus", "model", "utilization",
                 "ecc_dbe_total", "retired_pages"]
            )
            for sample in self.samples(models):
                writer.writerow(
                    [f"{sample.time:.0f}", sample.node_id, sample.pci_bus,
                     sample.model, f"{sample.utilization:.4f}",
                     sample.ecc_dbe_total, sample.retired_pages]
                )
        return path


def _count_before(times: Optional[List[float]], t: float) -> int:
    if not times:
        return 0
    return int(np.searchsorted(np.asarray(times), t, side="right"))


# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UtilizationSummary:
    model: str
    n_gpus: int
    mean: float
    median: float
    never_scheduled: int

    @property
    def never_scheduled_fraction(self) -> float:
        return self.never_scheduled / self.n_gpus if self.n_gpus else 0.0


class UtilizationAnalyzer:
    """Section 2.4's statistics, recovered from metric samples alone."""

    def __init__(self, samples: Iterable[GpuSample]) -> None:
        self._per_gpu: Dict[GpuKey, List[float]] = {}
        self._model: Dict[GpuKey, str] = {}
        for sample in samples:
            self._per_gpu.setdefault(sample.gpu_key, []).append(sample.utilization)
            self._model[sample.gpu_key] = sample.model

    def per_gpu_mean(self) -> Dict[GpuKey, float]:
        return {
            gpu: float(np.mean(values)) for gpu, values in self._per_gpu.items()
        }

    def summary(self, model: str) -> UtilizationSummary:
        means = [
            float(np.mean(values))
            for gpu, values in self._per_gpu.items()
            if self._model[gpu] == model
        ]
        if not means:
            return UtilizationSummary(model, 0, 0.0, 0.0, 0)
        arr = np.asarray(means)
        return UtilizationSummary(
            model=model,
            n_gpus=arr.size,
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            never_scheduled=int(np.sum(arr == 0.0)),
        )

def load_samples_csv(path: str | Path) -> List[GpuSample]:
    """Read back a ``write_csv`` export."""
    out: List[GpuSample] = []
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            out.append(
                GpuSample(
                    time=float(row["time"]),
                    node_id=row["node"],
                    pci_bus=row["pci_bus"],
                    model=row["model"],
                    utilization=float(row["utilization"]),
                    ecc_dbe_total=int(row["ecc_dbe_total"]),
                    retired_pages=int(row["retired_pages"]),
                )
            )
    return out
