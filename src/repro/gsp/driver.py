"""The driver's RPC path: GSP offload, the 6-second watchdog, XID 119.

With GSP enabled, driver control tasks (initialization, clock management,
channel setup) go over RPC — near-zero host-CPU cost, but exposed to the
GSP hang hazard; after ``watchdog_seconds`` without a response the driver
logs the paper's signature line ("Timeout after 6s of waiting for RPC
response from GSP!") and the GPU is inoperable until a reset/reboot.

With GSP disabled (the AWS mitigation), the same tasks execute on the host
CPU: no hang hazard, ``host_cpu_cost`` seconds of CPU per call — the
stability-for-performance trade the paper discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.gsp.processor import GspProcessor, RpcRequest
from repro.util.validation import check_positive


class RpcResult(enum.Enum):
    OK = "ok"
    TIMEOUT = "timeout"  # XID 119: GPU inoperable until reset
    GPU_LOST = "gpu_lost"  # call issued while the GPU was already down


@dataclass
class DriverConfig:
    gsp_enabled: bool = True
    watchdog_seconds: float = 6.0
    #: Host-CPU seconds per control call when the GSP path is disabled.
    host_cpu_cost: float = 0.010
    #: GSP-path host-CPU cost (submission only).
    gsp_cpu_cost: float = 0.0005
    #: Recovery cost when an XID-119 timeout forces a reset (node-hours of
    #: unavailability are accounted by the caller; this is the reset call).
    reset_cost_seconds: float = 90.0

    def __post_init__(self) -> None:
        check_positive("watchdog_seconds", self.watchdog_seconds)
        check_positive("host_cpu_cost", self.host_cpu_cost)


@dataclass
class DriverStats:
    calls: int = 0
    timeouts: int = 0  # XID 119 events
    gpu_lost_calls: int = 0
    resets: int = 0
    host_cpu_seconds: float = 0.0
    unavailable_seconds: float = 0.0

    @property
    def timeout_rate(self) -> float:
        return self.timeouts / self.calls if self.calls else 0.0


class GpuDriver:
    """The control-path facade over one GPU's GSP."""

    def __init__(
        self,
        config: DriverConfig | None = None,
        gsp: GspProcessor | None = None,
    ) -> None:
        self.config = config or DriverConfig()
        self.gsp = gsp or GspProcessor()
        self.stats = DriverStats()
        self._gpu_operable = True
        self._clock = 0.0

    # ------------------------------------------------------------------

    @property
    def gpu_operable(self) -> bool:
        return self._gpu_operable

    def control_call(
        self, rng: np.random.Generator, function: str = "GSP_RM_CONTROL"
    ) -> RpcResult:
        """One control-plane operation (clock change, channel setup, ...)."""
        self.stats.calls += 1
        if not self._gpu_operable:
            self.stats.gpu_lost_calls += 1
            return RpcResult.GPU_LOST
        if not self.config.gsp_enabled:
            # Host path: slower, hang-free.
            self.stats.host_cpu_seconds += self.config.host_cpu_cost
            self._clock += self.config.host_cpu_cost
            return RpcResult.OK
        self.stats.host_cpu_seconds += self.config.gsp_cpu_cost
        request = RpcRequest(function=function, issued_at=self._clock)
        self.gsp.submit(request)
        completion = self.gsp.service_one(self._clock, rng)
        if completion is None:
            # No response: the watchdog burns its full budget, then XID 119.
            self._clock += self.config.watchdog_seconds
            self.stats.timeouts += 1
            self.stats.unavailable_seconds += self.config.watchdog_seconds
            self._gpu_operable = False
            return RpcResult.TIMEOUT
        self._clock = completion
        return RpcResult.OK

    def reset_gpu(self) -> None:
        """Manual reset / node reboot: GSP and GPU return to service."""
        self.stats.resets += 1
        self.stats.unavailable_seconds += self.config.reset_cost_seconds
        self._clock += self.config.reset_cost_seconds
        self.gsp.reset()
        self._gpu_operable = True

    # ------------------------------------------------------------------

    def run_workload(
        self,
        n_calls: int,
        rng: np.random.Generator,
        *,
        burst_depth: int = 0,
        auto_reset: bool = True,
    ) -> DriverStats:
        """Issue a stream of control calls, optionally under load bursts.

        ``burst_depth`` pre-queues that many RPCs before each call,
        emulating a demanding ML workload hammering the control plane (the
        hang hazard grows with queue depth).
        """
        for _ in range(n_calls):
            if self.config.gsp_enabled:
                for i in range(burst_depth):
                    self.gsp.submit(RpcRequest("GSP_RM_ALLOC", self._clock))
            result = self.control_call(rng)
            if result is RpcResult.TIMEOUT and auto_reset:
                self.reset_gpu()
            # Drain the burst backlog while healthy.
            while self.config.gsp_enabled and self.gsp.queue_depth and (
                self.gsp.is_responsive()
            ):
                if self.gsp.service_one(self._clock, rng) is None:
                    break
        return self.stats
