"""GPU System Processor (GSP) substrate.

The paper's most vulnerable hardware component (finding ii): the GSP is a
co-processor that offloads driver tasks from the host CPU "for latency and
performance improvement", but its RPC timeouts (XID 119) are spontaneous,
render the GPU inoperable ~99% of the time, and require a node reboot.
AWS's operational guidance — disable GSP, trading performance for
stability — is the mitigation the paper discusses.

This subpackage models the mechanism:

* :mod:`repro.gsp.processor` — the GSP as a served queue with a
  load-dependent firmware-hang hazard (Delta SREs observed timeouts
  "highly correlated with demanding GPU ML benchmarks");
* :mod:`repro.gsp.driver` — the driver's RPC path with the 6-second
  watchdog that logs XID 119, plus the GSP-disabled host path (no hang
  hazard, higher per-call CPU cost);
* the ablation bench measures the stability/performance trade-off of
  disabling GSP, quantifying the AWS recommendation.
"""

from repro.gsp.processor import GspProcessor, GspState, RpcRequest
from repro.gsp.driver import DriverConfig, DriverStats, GpuDriver, RpcResult

__all__ = [
    "GspProcessor",
    "GspState",
    "RpcRequest",
    "DriverConfig",
    "DriverStats",
    "GpuDriver",
    "RpcResult",
]
