"""The GSP as a served RPC queue with a firmware-hang hazard.

NVIDIA attributes GSP RPC timeouts to firmware bugs (release notes the paper
cites) and Delta SREs correlate them with demanding workloads.  Model: each
serviced RPC carries a small hang probability that grows with the current
queue depth (a proxy for firmware stress under load); once hung, the GSP
answers nothing until an external reset — exactly the "single point of
failure" behaviour the paper measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Deque, Optional
from collections import deque

import numpy as np

from repro.util.validation import check_probability


class GspState(enum.Enum):
    RUNNING = "running"
    HUNG = "hung"


@dataclass(frozen=True)
class RpcRequest:
    """One driver->GSP remote procedure call."""

    function: str  # e.g. "GSP_RM_CONTROL"
    issued_at: float
    #: Service time the GSP needs when healthy (seconds).
    service_time: float = 0.002


@dataclass
class GspProcessor:
    """The co-processor: a FIFO server that can hang.

    ``base_hang_prob`` is the per-RPC hazard at an empty queue;
    ``load_hang_factor`` scales it with queue depth, reproducing the
    workload correlation the SREs observed.
    """

    base_hang_prob: float = 1e-6
    load_hang_factor: float = 0.25
    state: GspState = GspState.RUNNING
    rpcs_served: int = 0
    hangs: int = 0
    _queue: Deque[RpcRequest] = field(default_factory=deque)
    _busy_until: float = 0.0

    def __post_init__(self) -> None:
        check_probability("base_hang_prob", self.base_hang_prob)
        if self.load_hang_factor < 0:
            raise ValueError("load_hang_factor must be non-negative")

    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def hang_probability(self) -> float:
        """Per-RPC hang hazard at the current load."""
        return min(
            1.0, self.base_hang_prob * (1.0 + self.load_hang_factor * self.queue_depth)
        )

    def submit(self, request: RpcRequest) -> None:
        self._queue.append(request)

    def service_one(self, now: float, rng: np.random.Generator) -> Optional[float]:
        """Serve the next queued RPC; returns its completion time.

        Returns ``None`` when the GSP hangs instead of completing (or is
        already hung / idle): the driver's watchdog will fire.
        """
        if self.state is GspState.HUNG or not self._queue:
            return None
        request = self._queue.popleft()
        if rng.random() < self.hang_probability():
            self.state = GspState.HUNG
            self.hangs += 1
            return None
        self.rpcs_served += 1
        start = max(now, self._busy_until)
        self._busy_until = start + request.service_time
        return self._busy_until

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """External reset (driver reload / node reboot): GSP recovers."""
        self.state = GspState.RUNNING
        self._queue.clear()
        self._busy_until = 0.0

    def is_responsive(self) -> bool:
        return self.state is GspState.RUNNING
