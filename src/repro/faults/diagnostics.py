"""Calibration diagnostics: expected-vs-realized self-checks.

When a calibration profile is edited (new counts, new kernel branches), the
first question is whether the injector still realizes the intended totals
and branching.  ``check_calibration`` runs a quick injection, measures the
realized statistics, and reports deviations — the tool behind the
reproduction's "generated counts are recoverable" guarantee, exposed for
profile developers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.inventory import ClusterInventory, build_delta_cluster
from repro.faults.calibration import CalibrationProfile, expected_totals, solve_root_counts
from repro.faults.injector import FaultInjector, InjectorConfig
from repro.faults.xid import Xid


@dataclass(frozen=True)
class CountCheck:
    xid: Xid
    expected: float
    realized: int

    @property
    def relative_error(self) -> float:
        if self.expected == 0:
            return 0.0 if self.realized == 0 else float("inf")
        return (self.realized - self.expected) / self.expected


@dataclass(frozen=True)
class CalibrationReport:
    profile_name: str
    scale: float
    checks: List[CountCheck]
    kernel_consistent: bool

    def worst(self) -> Optional[CountCheck]:
        measurable = [c for c in self.checks if c.expected >= 20]
        if not measurable:
            return None
        return max(measurable, key=lambda c: abs(c.relative_error))

    def within(self, tolerance: float) -> bool:
        """Every measurable code within a relative tolerance."""
        worst = self.worst()
        return worst is None or abs(worst.relative_error) <= tolerance

    def render(self) -> str:
        lines = [
            f"calibration check: {self.profile_name} @ scale {self.scale}",
            f"  kernel root-solve consistent: {self.kernel_consistent}",
        ]
        for check in sorted(self.checks, key=lambda c: int(c.xid)):
            marker = ""
            if check.expected >= 20 and abs(check.relative_error) > 0.15:
                marker = "  <-- off"
            lines.append(
                f"  XID {int(check.xid):>3}: expected {check.expected:>10.1f}  "
                f"realized {check.realized:>8,}  "
                f"({check.relative_error:+.1%}){marker}"
            )
        return "\n".join(lines)


def check_calibration(
    profile: CalibrationProfile,
    *,
    scale: float = 0.1,
    seed: int = 99,
    cluster: ClusterInventory | None = None,
) -> CalibrationReport:
    """Inject once at ``scale`` and compare realized totals to targets.

    The workload-coupled MMU share is injected by the injector itself here
    (``workload_mmu_external=False``) so the check is self-contained.
    """
    cluster = cluster or build_delta_cluster()
    injector = FaultInjector(profile, InjectorConfig(scale=scale, seed=seed))
    trace = injector.generate(cluster)
    realized = {xid: 0 for xid in profile.xids}
    for event in trace:
        if event.xid in realized:
            realized[event.xid] += 1

    targets = profile.scaled_counts(scale)
    checks = [
        CountCheck(xid=xid, expected=targets[xid], realized=realized.get(xid, 0))
        for xid in profile.xids
    ]

    # The kernel must reproduce the profile's totals analytically too.
    totals = {xid: float(c.count) for xid, c in profile.xids.items()}
    roots = solve_root_counts(totals, profile.kernel)
    reproduced = expected_totals(roots, profile.kernel)
    kernel_ok = all(
        abs(reproduced.get(xid, 0.0) - count) <= max(0.02 * count, 1.0)
        for xid, count in totals.items()
    )
    return CalibrationReport(
        profile_name=profile.name,
        scale=scale,
        checks=checks,
        kernel_consistent=kernel_ok,
    )
