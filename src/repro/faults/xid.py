"""NVIDIA XID error catalog.

XIDs are the NVIDIA driver's error codes, logged to the kernel ring buffer as
``NVRM: Xid`` lines.  This module encodes the subset the paper characterizes
(its Table 1) plus the two user-induced codes the paper explicitly *excludes*
(XID 13 and 43, which the workload substrate still emits so that the
pipeline's exclusion filter is exercised) and the undocumented XID 136 that
dominates the H100 early-deployment data (paper Section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple


class Xid(enum.IntEnum):
    """XID codes used in the study."""

    GENERAL_SW = 13  # general GPU software error (user-induced; excluded)
    MMU = 31  # memory management unit error
    RESET_CHANNEL = 43  # reset channel verification error (user-induced; excluded)
    DBE = 48  # double-bit ECC error
    RRE = 63  # row remapping event
    RRF = 64  # row remapping failure
    NVLINK = 74  # NVLink interconnect error
    FALLEN_OFF_BUS = 79  # GPU fallen off the bus
    CONTAINED = 94  # contained uncorrectable memory error
    UNCONTAINED = 95  # uncontained uncorrectable memory error
    GSP = 119  # GPU System Processor RPC timeout
    PMU_SPI = 122  # PMU SPI RPC read failure
    XID_136 = 136  # undocumented; most frequent H100 event in Section 6


class XidCategory(enum.Enum):
    """Paper Section 2.2 error taxonomy."""

    HARDWARE = "hardware"
    MEMORY = "memory"
    INTERCONNECT = "interconnect"
    USER = "user"  # user-induced software errors excluded from the study
    UNKNOWN = "unknown"  # e.g. XID 136, undescribed in NVIDIA's manual


class RecoveryAction(enum.Enum):
    """Coarse recovery requirement per Table 1's "Recovery Action" column."""

    NONE = "none"
    GPU_RESET = "gpu_reset"
    NODE_REBOOT = "node_reboot"
    SRE_INTERVENTION = "sre_intervention"
    NOT_SPECIFIED = "not_specified"


@dataclass(frozen=True)
class XidInfo:
    """Static metadata for one XID code."""

    xid: Xid
    abbreviation: str
    category: XidCategory
    description: str
    recovery: RecoveryAction
    #: Whether the paper's pipeline includes this code in the characterization.
    studied: bool = True
    #: Whether the error typically leaves the GPU in an error state needing reset.
    renders_gpu_inoperable: bool = False


XID_CATALOG: Dict[Xid, XidInfo] = {
    info.xid: info
    for info in (
        XidInfo(
            Xid.GENERAL_SW,
            "GeneralSW",
            XidCategory.USER,
            "General GPU software error, usually caused by user jobs.",
            RecoveryAction.NONE,
            studied=False,
        ),
        XidInfo(
            Xid.MMU,
            "MMU Err.",
            XidCategory.HARDWARE,
            "GPU memory management unit (MMU) error.",
            RecoveryAction.NONE,
        ),
        XidInfo(
            Xid.RESET_CHANNEL,
            "ResetChan",
            XidCategory.USER,
            "Reset channel verification error, usually caused by user jobs.",
            RecoveryAction.NONE,
            studied=False,
        ),
        XidInfo(
            Xid.DBE,
            "DBE",
            XidCategory.MEMORY,
            "Double-bit ECC memory error; triggers row remapping.",
            RecoveryAction.GPU_RESET,
        ),
        XidInfo(
            Xid.RRE,
            "RRE",
            XidCategory.MEMORY,
            "Row remapping event (1 DBE or 2 SBEs at the same address).",
            RecoveryAction.GPU_RESET,
        ),
        XidInfo(
            Xid.RRF,
            "RRF",
            XidCategory.MEMORY,
            "Row remapping failure: spare rows exhausted.",
            RecoveryAction.GPU_RESET,
        ),
        XidInfo(
            Xid.NVLINK,
            "NVL Err.",
            XidCategory.INTERCONNECT,
            "NVLink error between GPUs on the same node.",
            RecoveryAction.SRE_INTERVENTION,
        ),
        XidInfo(
            Xid.FALLEN_OFF_BUS,
            "Fallen Off Bus",
            XidCategory.HARDWARE,
            "GPU unreachable over the PCI-E/SXM system bus.",
            RecoveryAction.SRE_INTERVENTION,
            renders_gpu_inoperable=True,
        ),
        XidInfo(
            Xid.CONTAINED,
            "Contained ECC",
            XidCategory.MEMORY,
            "Successful uncorrectable-memory-error containment.",
            RecoveryAction.NOT_SPECIFIED,
        ),
        XidInfo(
            Xid.UNCONTAINED,
            "Uncontained ECC",
            XidCategory.MEMORY,
            "Unsuccessful uncorrectable-memory-error containment.",
            RecoveryAction.SRE_INTERVENTION,
            renders_gpu_inoperable=True,
        ),
        XidInfo(
            Xid.GSP,
            "GSP RPC Timeout",
            XidCategory.HARDWARE,
            "GPU System Processor failed to answer a driver RPC.",
            RecoveryAction.NODE_REBOOT,
            renders_gpu_inoperable=True,
        ),
        XidInfo(
            Xid.PMU_SPI,
            "SPI PMU RPC failure",
            XidCategory.HARDWARE,
            "Failed communication with the Power Management Unit over SPI.",
            RecoveryAction.NOT_SPECIFIED,
        ),
        XidInfo(
            Xid.XID_136,
            "XID 136",
            XidCategory.UNKNOWN,
            "Undocumented H100 event; cause and impact unknown (paper Sec. 6).",
            RecoveryAction.NOT_SPECIFIED,
        ),
    )
}

#: Codes included in the paper's Ampere characterization (Table 1 rows).
STUDIED_XIDS: Tuple[Xid, ...] = tuple(
    sorted(
        (x for x, info in XID_CATALOG.items() if info.studied and x is not Xid.XID_136),
        key=int,
    )
)

#: Memory-category codes whose combined MTBE defines "GPU memory" resilience.
#: The paper excludes uncontained errors from the 30x memory-vs-hardware
#: comparison because >90% originate from a handful of defective GPUs.
MEMORY_MTBE_XIDS: Tuple[Xid, ...] = (Xid.DBE, Xid.RRE, Xid.RRF)

#: Hardware + interconnect codes for the comparison's "GPU hardware" side.
HARDWARE_MTBE_XIDS: Tuple[Xid, ...] = (
    Xid.NVLINK,
    Xid.FALLEN_OFF_BUS,
    Xid.GSP,
    Xid.PMU_SPI,
)


def xids_in_category(category: XidCategory) -> Tuple[Xid, ...]:
    """All catalogued codes in one taxonomy category, sorted by code."""
    return tuple(
        sorted((x for x, info in XID_CATALOG.items() if info.category is category), key=int)
    )


def studied(xids: Iterable[int]) -> Tuple[Xid, ...]:
    """Filter arbitrary codes down to the studied subset, preserving order."""
    return tuple(Xid(x) for x in xids if Xid(x) in XID_CATALOG and XID_CATALOG[Xid(x)].studied)
