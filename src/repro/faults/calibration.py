"""Calibration constants: the paper's published statistics as generative models.

Every number here is lifted from the paper (Table 1, Table 2, Figures 5-7,
Sections 4-6) and drives the *generative* side of the reproduction.  The
analysis pipeline re-estimates all of these quantities from rendered syslog
text without access to this module's constants for any given dataset, so the
EXPERIMENTS.md paper-vs-measured comparison is meaningful.

Layout:

* :class:`PersistenceModel` — per-XID duplicate-burst duration model,
  inverted from Table 1's (mean, P50) via a log-normal body plus an optional
  heavy log-uniform tail (needed for XID 95, whose mean of 860 s far exceeds
  its P95 of 341 s — the 17-day uncontained saga).
* :class:`OffenderSkew` — defective-GPU concentration (Section 4.2 (iii):
  >90 % of uncontained errors from a few GPUs, one GPU at 99 %).
* :class:`Transition` / kernel rows — the Markov propagation kernel behind
  Figures 5-7.  Root rates are *solved* from the kernel and Table 1's totals
  (``solve_root_counts``), so generated totals match the paper in
  expectation while measured conditional propagation probabilities match the
  figures.
* :class:`CalibrationProfile` — one bundle per GPU population: Ampere
  (Table 1) and Hopper (Section 6).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from repro.faults.xid import Xid
from repro.results.artifact import PaperExpectation, Tolerance
from repro.util.stats import LognormalParams, lognormal_from_mean_p50
from repro.util.validation import check_positive, check_probability

# ---------------------------------------------------------------------------
# Persistence (duplicate-burst duration) models
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PersistenceModel:
    """Samplable model of an error's duplicate-line burst duration (seconds).

    ``body`` covers the bulk of the distribution; with probability
    ``tail_prob`` a duration is instead drawn log-uniformly from
    ``tail_range`` (used for heavy-tailed codes).  Durations are clipped to
    the pipeline's one-day persistence cut-off so the generator cannot emit
    bursts the analyzer is not designed to measure.
    """

    body: LognormalParams
    tail_prob: float = 0.0
    tail_range: Tuple[float, float] = (600.0, 86400.0)
    max_duration: float = 86400.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        durations = self.body.sample(rng, size)
        if self.tail_prob > 0.0:
            in_tail = rng.random(size) < self.tail_prob
            n_tail = int(in_tail.sum())
            if n_tail:
                low, high = self.tail_range
                log_draw = rng.uniform(math.log(low), math.log(high), size=n_tail)
                durations[in_tail] = np.exp(log_draw)
        return np.clip(durations, 0.0, self.max_duration)

    @property
    def mean(self) -> float:
        low, high = self.tail_range
        tail_mean = (high - low) / math.log(high / low) if high > low else low
        return (1.0 - self.tail_prob) * self.body.mean + self.tail_prob * tail_mean


def _persistence(mean: float, p50: float, tail_prob: float = 0.0,
                 tail_range: Tuple[float, float] = (600.0, 86400.0)) -> PersistenceModel:
    return PersistenceModel(
        body=lognormal_from_mean_p50(mean, p50),
        tail_prob=tail_prob,
        tail_range=tail_range,
    )


# ---------------------------------------------------------------------------
# Offender skew (defective-GPU concentration)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OffenderSkew:
    """Concentration of a code's events on a few defective GPUs.

    ``offender_share`` of events land on ``n_offenders`` designated GPUs and
    ``top_share`` of *those* land on the single worst GPU; the remainder is
    spread uniformly.  ``testing_phase_days``/``testing_phase_share``
    concentrate offender events early in the window (Section 4.2 (iii): the
    overwhelming majority of uncontained/DBE/RRF errors occurred during the
    system testing phase).
    """

    n_offenders: int
    offender_share: float
    top_share: float = 0.0
    testing_phase_days: float = 0.0
    testing_phase_share: float = 0.0

    def __post_init__(self) -> None:
        check_probability("offender_share", self.offender_share)
        check_probability("top_share", self.top_share)
        check_probability("testing_phase_share", self.testing_phase_share)
        if self.n_offenders < 1:
            raise ValueError("n_offenders must be >= 1 when skew is present")


# ---------------------------------------------------------------------------
# Propagation kernel
# ---------------------------------------------------------------------------


class Scope(enum.Enum):
    """Where a chained follow-up event lands."""

    SAME_GPU = "same_gpu"
    PEER_GPU = "peer_gpu"  # an NVLink peer on the same node


@dataclass(frozen=True)
class DelayModel:
    """Propagation-time distribution between consecutive chain events.

    Uniform on ``(low, high)`` seconds.  Same-XID repeats must keep
    ``low`` above the coalescing window (5 s), otherwise the follow-up would
    be merged into its predecessor's burst and become unobservable.
    """

    low: float
    high: float

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Transition:
    """One outgoing edge of the propagation kernel."""

    target: Xid
    prob: float
    delay: DelayModel
    scope: Scope = Scope.SAME_GPU

    def __post_init__(self) -> None:
        check_probability("prob", self.prob)


@dataclass(frozen=True)
class KernelRow:
    """Outgoing behaviour of one XID: chained transitions plus terminal fate.

    Probability mass not covered by ``transitions`` is terminal; of the
    terminal mass, ``inoperable_prob`` (a probability over *all* outcomes of
    the event) marks the GPU as left in an error state requiring a reset.
    """

    xid: Xid
    transitions: Tuple[Transition, ...] = ()
    inoperable_prob: float = 0.0

    def __post_init__(self) -> None:
        total = sum(t.prob for t in self.transitions)
        if total > 1.0 + 1e-9:
            raise ValueError(f"kernel row for {self.xid!r} has transition mass {total} > 1")
        check_probability("inoperable_prob", self.inoperable_prob)

    @property
    def terminal_prob(self) -> float:
        return 1.0 - sum(t.prob for t in self.transitions)


def solve_root_counts(
    totals: Mapping[Xid, float], kernel: Mapping[Xid, KernelRow]
) -> Dict[Xid, float]:
    """Solve for root (spontaneous) event counts given target totals.

    With recursive chaining, expected totals satisfy ``N = R + N.Q`` where
    ``Q[i][j]`` is the probability an event of XID ``i`` chains to XID ``j``;
    hence ``R = N (I - Q)``.  A negative solution means the kernel alone
    already over-produces some code; we clip to zero and let the surplus
    stand (it is reported by :func:`expected_totals` for verification).
    """
    roots: Dict[Xid, float] = dict(totals)
    for source, row in kernel.items():
        n_source = totals.get(source, 0.0)
        if n_source <= 0:
            continue
        for transition in row.transitions:
            if transition.target in roots:
                roots[transition.target] -= n_source * transition.prob
    return {xid: max(0.0, count) for xid, count in roots.items()}


def expected_totals(
    roots: Mapping[Xid, float], kernel: Mapping[Xid, KernelRow], iterations: int = 64
) -> Dict[Xid, float]:
    """Fixed-point expected totals ``N = R + N.Q`` (for calibration checks)."""
    totals = dict(roots)
    for _ in range(iterations):
        nxt = dict(roots)
        for source, row in kernel.items():
            n_source = totals.get(source, 0.0)
            for transition in row.transitions:
                nxt[transition.target] = (
                    nxt.get(transition.target, 0.0) + n_source * transition.prob
                )
        if all(abs(nxt[k] - totals.get(k, 0.0)) < 1e-9 for k in nxt):
            totals = nxt
            break
        totals = nxt
    return totals


# ---------------------------------------------------------------------------
# Per-XID calibration bundle
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class XidCalibration:
    """Generative + reference constants for one XID code."""

    xid: Xid
    #: Target coalesced-event count over the profile's full window/population.
    count: int
    persistence: PersistenceModel
    #: Paper's Table 1 reference values (seconds / node-hours), for reports.
    paper_mtbe_all_nodes_hours: float
    paper_mtbe_per_node_hours: float
    paper_persistence_mean: float
    paper_persistence_p50: float
    paper_persistence_p95: float
    #: Table 2: probability a job that encounters this code fails.
    job_failure_prob: float = 1.0
    #: Probability a root event is placed on a (GPU, time) with an active job.
    busy_bias: float = 0.0
    offenders: Optional[OffenderSkew] = None
    #: Root events arrive in episodes (offender GPUs): minimum inter-event
    #: gap (seconds) between consecutive same-GPU events, enforced so that
    #: distinct coalesced errors never merge.
    min_gap: float = 8.0

    def __post_init__(self) -> None:
        check_probability("job_failure_prob", self.job_failure_prob)
        check_probability("busy_bias", self.busy_bias)
        if self.count < 0:
            raise ValueError("count must be non-negative")


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RepairModelParams:
    """Node repair-duration mixture (drives Figure 9c and availability).

    Mean ≈ 0.3 h (paper Section 5.4: expected time to service a failed node)
    with a heavy tail reaching the 23-48 h drain-plus-reboot cases the paper
    narrates (Figure 1, Section 4.3).
    """

    fast_prob: float = 0.97
    fast_mean_hours: float = 0.21
    slow_median_hours: float = 1.5
    slow_sigma: float = 1.1
    max_hours: float = 48.0
    #: Window for merging inoperable/error events on one node into a single
    #: repair incident (seconds).
    incident_merge_window: float = 3600.0

    def sample_hours(self, rng: np.random.Generator, size: int) -> np.ndarray:
        fast = rng.exponential(self.fast_mean_hours, size=size)
        slow = rng.lognormal(math.log(self.slow_median_hours), self.slow_sigma, size=size)
        pick_fast = rng.random(size) < self.fast_prob
        return np.clip(np.where(pick_fast, fast, slow), 0.01, self.max_hours)

    @property
    def mean_hours(self) -> float:
        slow_mean = self.slow_median_hours * math.exp(self.slow_sigma**2 / 2.0)
        return self.fast_prob * self.fast_mean_hours + (1 - self.fast_prob) * slow_mean


@dataclass(frozen=True)
class CalibrationProfile:
    """Everything the injector needs for one GPU population."""

    name: str
    window_days: float
    #: Number of GPU nodes the per-node MTBE normalizes by (Table 1: 206).
    reference_node_count: int
    xids: Mapping[Xid, XidCalibration]
    kernel: Mapping[Xid, KernelRow]
    repair: RepairModelParams = field(default_factory=RepairModelParams)
    #: Whole-switch NVLink faults on 8-way nodes: incidents in which every
    #: GPU behind the NVSwitch logs an NVLink error near-simultaneously
    #: (source of the paper's "35 NVLink errors affected all eight GPUs").
    nvlink_switch_fault_incidents: int = 4
    #: Root-level NVLink incident fanout: probability that a link fault's
    #: root involves 2 / 4 GPUs at once (remaining mass: single GPU).
    #: Calibrated so ~16% of NVLink errors sit in multi-GPU incidents and
    #: ~5% in 4+-GPU incidents (paper Section 4.4.2).
    nvlink_fanout: Tuple[Tuple[int, float], ...] = ((2, 0.09), (4, 0.018))
    #: Fraction of the MMU root budget emitted by buggy user jobs through
    #: the workload substrate instead of the hardware injector (Section 5.3:
    #: MMU errors largely arise from illegal accesses by user code).
    mmu_from_workload_fraction: float = 0.65

    @property
    def window_seconds(self) -> float:
        return self.window_days * 86400.0

    @property
    def window_node_hours(self) -> float:
        return self.window_days * 24.0 * self.reference_node_count

    def total_count(self) -> int:
        return sum(c.count for c in self.xids.values())

    def mtbe_all_nodes_hours(self, xid: Xid) -> float:
        return self.window_days * 24.0 / self.xids[xid].count

    def scaled_counts(self, scale: float) -> Dict[Xid, float]:
        check_positive("scale", scale)
        return {xid: cal.count * scale for xid, cal in self.xids.items()}


# ---------------------------------------------------------------------------
# The Ampere (Table 1) profile
# ---------------------------------------------------------------------------

_DELAY_FAST = DelayModel(0.5, 4.0)  # cross-XID propagation within a burst
_DELAY_REPEAT = DelayModel(7.0, 45.0)  # same-XID recurrence (beyond coalescing)
_DELAY_NVLINK_PEER = DelayModel(0.5, 10.0)

AMPERE_KERNEL: Dict[Xid, KernelRow] = {
    # Figure 5: GSP errors are overwhelmingly isolated & fatal to the GPU;
    # 0.01 recur, 0.01 (21 cases) spill into PMU SPI errors.
    Xid.GSP: KernelRow(
        Xid.GSP,
        transitions=(
            Transition(Xid.GSP, 0.01, _DELAY_REPEAT),
            Transition(Xid.PMU_SPI, 0.01, DelayModel(1.0, 8.0)),
        ),
        inoperable_prob=0.98,
    ),
    # Figure 5: PMU SPI errors cause MMU errors with probability 0.82 and
    # recur with probability 0.18.
    Xid.PMU_SPI: KernelRow(
        Xid.PMU_SPI,
        transitions=(
            Transition(Xid.MMU, 0.82, DelayModel(0.5, 3.5)),
            Transition(Xid.PMU_SPI, 0.18, _DELAY_REPEAT),
        ),
    ),
    # Figure 6: NVLink errors recur on the same GPU (0.66) or leave it in an
    # error state (0.20).  Inter-GPU spread is generated at the *root* of an
    # incident (a shared link/switch fault makes both end-points log within
    # seconds — see ``CalibrationProfile.nvlink_fanout``), which is what
    # keeps the per-event inter-GPU propagation at the paper's 0.14 while
    # only ~14-16% of errors belong to multi-GPU incidents.
    Xid.NVLINK: KernelRow(
        Xid.NVLINK,
        # Tighter recurrence spacing than other codes: incident chains on
        # the GPUs sharing a faulty link interleave within the propagation
        # window, which is what the inter-GPU edge measurement picks up.
        transitions=(Transition(Xid.NVLINK, 0.66, DelayModel(7.0, 25.0)),),
        inoperable_prob=0.20,
    ),
    # Figure 7: a DBE triggers row remapping; success logs an RRE (0.5),
    # failure logs an RRF (~0.5 minus the one DBE observed with no successor).
    Xid.DBE: KernelRow(
        Xid.DBE,
        transitions=(
            Transition(Xid.RRE, 0.50, _DELAY_FAST),
            Transition(Xid.RRF, 0.47, _DELAY_FAST),
        ),
    ),
    # Figure 7: after an RRF, containment succeeds 0.43 (Contained ECC),
    # fails into an uncontained error 0.11, or is not triggered at all
    # (0.46), leaving the GPU inoperable.
    Xid.RRF: KernelRow(
        Xid.RRF,
        transitions=(
            Transition(Xid.CONTAINED, 0.43, _DELAY_FAST),
            Transition(Xid.UNCONTAINED, 0.11, _DELAY_FAST),
        ),
        inoperable_prob=0.46,
    ),
    # Uncontained errors render the GPU inoperable until an SRE reset
    # (Section 4.4.3) but have no *chained* successors in Figure 7: the
    # offender's bursty recurrences are generated as episodes, not chains.
    Xid.UNCONTAINED: KernelRow(Xid.UNCONTAINED, inoperable_prob=1.0),
    Xid.FALLEN_OFF_BUS: KernelRow(Xid.FALLEN_OFF_BUS, inoperable_prob=1.0),
    Xid.MMU: KernelRow(Xid.MMU),
    Xid.RRE: KernelRow(Xid.RRE),
    Xid.CONTAINED: KernelRow(Xid.CONTAINED),
}


def _ampere_xids() -> Dict[Xid, XidCalibration]:
    """Table 1, row by row."""
    rows = {
        Xid.MMU: XidCalibration(
            xid=Xid.MMU,
            count=18_876,
            # Tight body at ~2.8 s plus a 5% tail to 5-10 s reproduces the
            # (2.85, 2.80, 5.80) mean/P50/P95 triple.
            persistence=_persistence(mean=2.72, p50=2.80, tail_prob=0.07,
                                     tail_range=(4.5, 8.0)),
            paper_mtbe_all_nodes_hours=1.09,
            paper_mtbe_per_node_hours=223.94,
            paper_persistence_mean=2.85,
            paper_persistence_p50=2.80,
            paper_persistence_p95=5.80,
            job_failure_prob=0.5867,
            busy_bias=0.0,  # job-correlated MMU errors come from the workload side
            # A few defective parts also emit MMU errors at volume; their
            # removal is part of Section 5.5's 3x counterfactual gain.
            # The share applies to the injector's hardware portion of the
            # MMU budget (~35% of the code's total).
            offenders=OffenderSkew(n_offenders=4, offender_share=0.35, top_share=0.5),
        ),
        Xid.DBE: XidCalibration(
            xid=Xid.DBE,
            count=32,
            persistence=_persistence(mean=0.14, p50=0.12),
            paper_mtbe_all_nodes_hours=641.25,
            paper_mtbe_per_node_hours=132_097.5,
            paper_persistence_mean=0.14,
            paper_persistence_p50=0.12,
            paper_persistence_p95=0.24,
            job_failure_prob=0.90,
            busy_bias=0.30,
            offenders=OffenderSkew(
                n_offenders=6, offender_share=0.9, top_share=0.4,
                testing_phase_days=90.0, testing_phase_share=0.85,
            ),
        ),
        Xid.RRE: XidCalibration(
            xid=Xid.RRE,
            count=95,
            persistence=_persistence(mean=0.12, p50=0.12),
            paper_mtbe_all_nodes_hours=216.0,
            paper_mtbe_per_node_hours=44_496.0,
            paper_persistence_mean=0.12,
            paper_persistence_p50=0.12,
            paper_persistence_p95=0.12,
            job_failure_prob=0.50,
            busy_bias=0.02,
        ),
        Xid.RRF: XidCalibration(
            xid=Xid.RRF,
            count=35,
            persistence=_persistence(mean=8.88, p50=2.90),
            paper_mtbe_all_nodes_hours=586.29,
            paper_mtbe_per_node_hours=120_774.9,
            paper_persistence_mean=8.88,
            paper_persistence_p50=2.90,
            paper_persistence_p95=26.65,
            job_failure_prob=1.0,
            busy_bias=0.23,
            offenders=OffenderSkew(
                n_offenders=4, offender_share=0.9, top_share=0.5,
                testing_phase_days=90.0, testing_phase_share=0.85,
            ),
        ),
        Xid.NVLINK: XidCalibration(
            xid=Xid.NVLINK,
            count=2_987,
            persistence=_persistence(mean=0.38, p50=0.24, tail_prob=0.03,
                                     tail_range=(5.0, 30.0)),
            paper_mtbe_all_nodes_hours=6.87,
            paper_mtbe_per_node_hours=1_415.2,
            paper_persistence_mean=0.76,
            paper_persistence_p50=0.24,
            paper_persistence_p95=1.18,
            job_failure_prob=0.6571,
            busy_bias=0.005,
        ),
        Xid.FALLEN_OFF_BUS: XidCalibration(
            xid=Xid.FALLEN_OFF_BUS,
            count=31,
            persistence=_persistence(mean=2.71, p50=0.25),
            paper_mtbe_all_nodes_hours=661.94,
            paper_mtbe_per_node_hours=136_358.6,
            paper_persistence_mean=2.71,
            paper_persistence_p50=0.25,
            paper_persistence_p95=12.03,
            job_failure_prob=1.0,
            busy_bias=0.0,
        ),
        Xid.CONTAINED: XidCalibration(
            xid=Xid.CONTAINED,
            count=28,
            persistence=_persistence(mean=0.12, p50=0.12),
            paper_mtbe_all_nodes_hours=732.86,
            paper_mtbe_per_node_hours=150_968.6,
            paper_persistence_mean=0.12,
            paper_persistence_p50=0.12,
            paper_persistence_p95=0.14,
            job_failure_prob=1.0,
            busy_bias=0.10,
        ),
        Xid.UNCONTAINED: XidCalibration(
            xid=Xid.UNCONTAINED,
            count=38_905,
            # Body median 75 s (Table 1's P50) plus a ~5% log-uniform tail up
            # to the one-day cut-off: reproduces the mean of ~860 s despite a
            # P95 of only ~341 s (the 17-day saga lives in the tail).
            # Narrow body around the 75 s median plus a 5% log-uniform tail:
            # the mixture reproduces the paradoxical Table-1 triple where the
            # mean (860 s) exceeds the P95 (341 s).
            persistence=_persistence(
                mean=89.5, p50=75.22, tail_prob=0.045, tail_range=(600.0, 86_000.0)
            ),
            paper_mtbe_all_nodes_hours=0.53,
            paper_mtbe_per_node_hours=108.69,
            paper_persistence_mean=860.24,
            paper_persistence_p50=75.22,
            paper_persistence_p95=340.69,
            job_failure_prob=0.9716,
            busy_bias=0.01,
            # Section 4.4.3: only 4 GPUs ever saw uncontained errors, one of
            # them contributing 99% — all spontaneous uncontained errors are
            # offender-generated (the rare non-offender instances arise via
            # the RRF containment-failure chain).
            offenders=OffenderSkew(n_offenders=4, offender_share=1.0, top_share=0.99),
            min_gap=30.0,
        ),
        Xid.GSP: XidCalibration(
            xid=Xid.GSP,
            count=2_136,
            # Most GSP bursts are a single line pair (P50 of 0.03 s); ~6% are
            # long stuck-GSP bursts, which carry the 12 s mean and ~100 s P95.
            persistence=_persistence(mean=0.05, p50=0.03, tail_prob=0.065,
                                     tail_range=(60.0, 450.0)),
            paper_mtbe_all_nodes_hours=9.61,
            paper_mtbe_per_node_hours=1_979.0,
            paper_persistence_mean=12.14,
            paper_persistence_p50=0.03,
            paper_persistence_p95=100.85,
            job_failure_prob=1.0,
            busy_bias=0.015,
        ),
        Xid.PMU_SPI: XidCalibration(
            xid=Xid.PMU_SPI,
            count=128,
            persistence=_persistence(mean=0.05, p50=0.06),
            paper_mtbe_all_nodes_hours=160.31,
            paper_mtbe_per_node_hours=33_024.4,
            paper_persistence_mean=0.05,
            paper_persistence_p50=0.06,
            paper_persistence_p95=0.08,
            job_failure_prob=0.9661,
            busy_bias=0.45,
        ),
    }
    return rows


AMPERE_CALIBRATION = CalibrationProfile(
    name="delta-ampere",
    window_days=855.0,
    reference_node_count=206,
    xids=_ampere_xids(),
    kernel=AMPERE_KERNEL,
)

#: Alias: the paper's headline characterization is the Ampere population.
DELTA_CALIBRATION = AMPERE_CALIBRATION


# ---------------------------------------------------------------------------
# The Hopper (Section 6) profile
# ---------------------------------------------------------------------------

H100_KERNEL: Dict[Xid, KernelRow] = {
    # Section 6: H100 DBEs were followed by RRFs, not RREs — "which is
    # unusual, as it typically indicates exhausted remappable rows".
    Xid.DBE: KernelRow(
        Xid.DBE,
        transitions=(Transition(Xid.RRF, 0.50, _DELAY_FAST),),
    ),
    Xid.RRF: KernelRow(Xid.RRF, inoperable_prob=0.5),
    Xid.MMU: KernelRow(Xid.MMU),
    Xid.CONTAINED: KernelRow(Xid.CONTAINED),
    Xid.XID_136: KernelRow(Xid.XID_136),
}


def _h100_xids() -> Dict[Xid, XidCalibration]:
    """Section 6 event counts over the H100 early-deployment window."""

    def row(xid: Xid, count: int, mean: float, p50: float, busy: float = 0.05,
            fail: float = 1.0) -> XidCalibration:
        return XidCalibration(
            xid=xid,
            count=count,
            persistence=_persistence(mean=mean, p50=p50),
            paper_mtbe_all_nodes_hours=float("nan"),
            paper_mtbe_per_node_hours=float("nan"),
            paper_persistence_mean=mean,
            paper_persistence_p50=p50,
            paper_persistence_p95=float("nan"),
            job_failure_prob=fail,
            busy_bias=busy,
        )

    return {
        Xid.MMU: row(Xid.MMU, 18, 2.85, 2.80, busy=0.3, fail=0.59),
        Xid.DBE: row(Xid.DBE, 10, 0.14, 0.12, fail=0.9),
        Xid.RRF: row(Xid.RRF, 5, 8.88, 2.90),
        Xid.CONTAINED: row(Xid.CONTAINED, 9, 0.12, 0.12),
        Xid.XID_136: row(Xid.XID_136, 70, 1.0, 0.5, busy=0.02, fail=0.5),
    }


#: 80 GH200 nodes observed for 240 days: 112 events over 460,800 node-hours
#: gives the paper's 4,114-hour MTBE.
H100_CALIBRATION = CalibrationProfile(
    name="delta-h100",
    window_days=240.0,
    reference_node_count=80,
    xids=_h100_xids(),
    kernel=H100_KERNEL,
)


class PaperTable2Row(NamedTuple):
    """One published Table-2 row (tuple-compatible with the old layout)."""

    gpu_failed_jobs: int
    jobs_encountering: int
    failure_pct: float


#: Table 2 reference: job-failure probability given an XID, plus the job
#: encounter counts the paper reports (used by EXPERIMENTS.md comparisons).
PAPER_TABLE2: Dict[Xid, PaperTable2Row] = {
    Xid.MMU: PaperTable2Row(3_760, 6_408, 58.67),
    Xid.UNCONTAINED: PaperTable2Row(514, 529, 97.16),
    Xid.PMU_SPI: PaperTable2Row(57, 59, 96.61),
    Xid.GSP: PaperTable2Row(36, 36, 100.0),
    Xid.NVLINK: PaperTable2Row(23, 35, 65.71),
    Xid.DBE: PaperTable2Row(9, 10, 90.0),
    Xid.RRF: PaperTable2Row(8, 8, 100.0),
    Xid.CONTAINED: PaperTable2Row(3, 3, 100.0),
    Xid.RRE: PaperTable2Row(1, 2, 50.0),
}

#: Paper headline totals used across EXPERIMENTS.md.
PAPER_TOTAL_ERRORS = 63_253
PAPER_OVERALL_MTBE_NODE_HOURS = 67.0
PAPER_GPU_FAILED_JOBS = 4_322
PAPER_NODE_AVAILABILITY = 0.995
PAPER_MTTR_HOURS = 0.3


# ---------------------------------------------------------------------------
# Tolerance-annotated expectations (repro-delta verify)
# ---------------------------------------------------------------------------


def _expectations() -> Dict[str, PaperExpectation]:
    """The verifiable subset of the paper's numbers, with tolerance bands.

    Keys are ``"<experiment id>.<metric name>"``.  Bands were calibrated
    against the default reproduction (scale 0.05, seed 7) with enough slack
    for sampling noise at that scale but tight enough to catch a genuine
    miscalibration of the generative model.  ``scales_with_window`` marks
    counts that grow with the observation window and are compared after
    multiplying by the dataset's scale.
    """
    two = Tolerance
    return {
        # Table 1
        "table1.total_errors": PaperExpectation(
            float(PAPER_TOTAL_ERRORS), two(rel=0.10), source="Table 1",
            scales_with_window=True),
        "table1.overall_mtbe_node_hours": PaperExpectation(
            PAPER_OVERALL_MTBE_NODE_HOURS, two(rel=0.15), source="Table 1"),
        "table1.memory_vs_hardware_ratio": PaperExpectation(
            30.0, two(rel=0.20, kind="min"), source="Section 4.2",
            note="paper reports >30x; one-sided lower bound"),
        # Table 2
        "table2.total_gpu_failed": PaperExpectation(
            float(PAPER_GPU_FAILED_JOBS), two(rel=0.30), source="Table 2",
            scales_with_window=True),
        "table2.success_rate_pct": PaperExpectation(
            74.68, two(abs=4.0), source="Section 5.1"),
        "table2.p_fail_mmu_pct": PaperExpectation(
            PAPER_TABLE2[Xid.MMU].failure_pct, two(abs=12.0), source="Table 2"),
        "table2.p_fail_uncontained_pct": PaperExpectation(
            PAPER_TABLE2[Xid.UNCONTAINED].failure_pct, two(abs=10.0),
            source="Table 2"),
        # Table 3
        "table3.single_gpu_share_pct": PaperExpectation(
            69.86, two(abs=3.0), source="Table 3"),
        # Figure 5
        "fig5.p_gsp_self_or_terminal": PaperExpectation(
            0.99, two(abs=0.05), source="Figure 5"),
        "fig5.p_gsp_to_pmu": PaperExpectation(
            0.01, two(abs=0.02), source="Figure 5"),
        "fig5.p_gsp_isolated": PaperExpectation(
            0.99, two(abs=0.05), source="Figure 5"),
        "fig5.p_pmu_to_mmu": PaperExpectation(
            0.82, two(abs=0.20), source="Figure 5"),
        "fig5.p_pmu_self": PaperExpectation(
            0.18, two(abs=0.20), source="Figure 5"),
        # Figure 6
        "fig6.p_nvlink_self": PaperExpectation(
            0.66, two(abs=0.15), source="Figure 6"),
        "fig6.p_nvlink_inter": PaperExpectation(
            0.14, two(abs=0.10), source="Figure 6"),
        "fig6.p_nvlink_error_state": PaperExpectation(
            0.20, two(abs=0.15), source="Figure 6"),
        "fig6.single_gpu_pct": PaperExpectation(
            85.0, two(abs=20.0), source="Section 4.4"),
        "fig6.multi_gpu_pct": PaperExpectation(
            15.0, two(abs=20.0), source="Section 4.4"),
        "fig6.four_plus_gpu_pct": PaperExpectation(
            5.0, two(abs=10.0), source="Section 4.4"),
        "fig6.all8_errors": PaperExpectation(
            35.0, two(abs=5.0), source="Section 4.4", scales_with_window=True),
        # Figure 7 (support-gated: DBE/RRF are rare at small scales)
        "fig7.p_dbe_to_rre": PaperExpectation(
            0.50, two(abs=0.25), source="Figure 7"),
        "fig7.p_dbe_to_rrf": PaperExpectation(
            0.47, two(abs=0.25), source="Figure 7"),
        "fig7.p_rrf_to_contained": PaperExpectation(
            0.43, two(abs=0.30), source="Figure 7"),
        "fig7.p_rrf_to_uncontained": PaperExpectation(
            0.11, two(abs=0.30), source="Figure 7"),
        "fig7.p_rrf_terminal": PaperExpectation(
            0.46, two(abs=0.40), source="Figure 7"),
        "fig7.dbe_alleviated_pct": PaperExpectation(
            70.6, two(abs=25.0), source="Figure 7"),
        # Figure 9
        "fig9.lost_node_hours": PaperExpectation(
            7_500.0, two(rel=0.60), source="Figure 9a",
            scales_with_window=True),
        "fig9.mean_unavailability_hours": PaperExpectation(
            PAPER_MTTR_HOURS, two(abs=0.15), source="Figure 9c"),
        "fig9.total_downtime_node_hours": PaperExpectation(
            5_700.0, two(rel=0.60), source="Figure 9c",
            scales_with_window=True),
        "fig9.mttf_hours": PaperExpectation(
            PAPER_OVERALL_MTBE_NODE_HOURS, two(rel=0.15), source="Figure 9c"),
        "fig9.mttr_hours": PaperExpectation(
            PAPER_MTTR_HOURS, two(abs=0.15), source="Figure 9c"),
        "fig9.availability_pct": PaperExpectation(
            PAPER_NODE_AVAILABILITY * 100.0, two(abs=0.5),
            source="Section 5.4"),
        "fig9.downtime_minutes_per_day": PaperExpectation(
            7.0, two(rel=0.50), source="Section 5.4"),
        # Section 5.4
        "sec5.4.overprovision_40min_pct": PaperExpectation(
            20.0, two(rel=0.25), source="Section 5.4"),
        "sec5.4.overprovision_5min_pct": PaperExpectation(
            5.0, two(rel=0.35), source="Section 5.4"),
        # Section 5.5
        "sec5.5.baseline_mtbe_node_hours": PaperExpectation(
            PAPER_OVERALL_MTBE_NODE_HOURS, two(rel=0.15), source="Section 5.5"),
        "sec5.5.without_offenders_mtbe_node_hours": PaperExpectation(
            190.0, two(rel=0.35), source="Section 5.5"),
        "sec5.5.offender_improvement": PaperExpectation(
            3.0, two(abs=1.1), source="Section 5.5"),
        "sec5.5.without_offenders_and_hw_mtbe_node_hours": PaperExpectation(
            223.0, two(rel=0.40), source="Section 5.5"),
        "sec5.5.hardware_additional_improvement_pct": PaperExpectation(
            16.0, two(abs=15.0), source="Section 5.5"),
        "sec5.5.baseline_availability_pct": PaperExpectation(
            PAPER_NODE_AVAILABILITY * 100.0, two(abs=0.5),
            source="Section 5.5"),
        "sec5.5.improved_availability_pct": PaperExpectation(
            99.9, two(abs=0.25), source="Section 5.5"),
        # Section 4.2 (iii)
        "sec4.2iii.uncontained_top1_share": PaperExpectation(
            0.99, two(abs=0.05), source="Section 4.2 (iii)"),
        # Section 6
        "sec6.mtbe_node_hours": PaperExpectation(
            4_114.0, two(rel=0.25), source="Section 6"),
        "sec6.xid136_count": PaperExpectation(
            70.0, two(rel=0.35), source="Section 6", scales_with_window=True),
        "sec6.has_remap_anomaly": PaperExpectation(
            1.0, two(abs=0.0), source="Section 6",
            note="DBE/RRF present while RREs are absent"),
        # Methodology
        "pipeline.parity.sequences_identical": PaperExpectation(
            1.0, two(abs=0.0), source="Section 3.2",
            note="batch and streaming Algorithm-1 stages must agree exactly"),
    }


#: Registry of machine-checkable paper expectations, keyed
#: ``"<experiment id>.<metric name>"`` (consumed by result builders and
#: ``repro-delta verify``).
PAPER_EXPECTATIONS: Dict[str, PaperExpectation] = _expectations()


def expectation_for(key: str, *, scale: Optional[float] = None) -> PaperExpectation:
    """Look up an expectation, resolving window scaling when given."""
    expectation = PAPER_EXPECTATIONS[key]
    if scale is not None:
        expectation = expectation.scaled(scale)
    return expectation
