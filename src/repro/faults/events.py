"""Ground-truth fault event model.

The injector produces a :class:`FaultTrace` — a time-ordered list of
:class:`ErrorEvent` — which is rendered into raw syslog by
:mod:`repro.syslog` and consumed (indirectly, via the rendered text) by the
analysis pipeline.  The trace also keeps generation-side annotations (chain
membership, whether the event left the GPU inoperable) that tests use to
check the pipeline's *inferences* against the generator's *intent*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.cluster.gpu import GpuDevice
from repro.faults.xid import Xid


@dataclass(frozen=True)
class ErrorEvent:
    """One coalesced-level GPU error as the generator intends it.

    ``persistence`` is the *target* duration of the duplicate-line burst the
    syslog renderer will emit for this event; the pipeline's Algorithm-1
    implementation should recover approximately this value from the raw
    lines.  A persistence of 0 renders as a single log line.
    """

    time: float  # seconds since window start
    node_id: str
    pci_bus: str
    xid: Xid
    persistence: float = 0.0
    #: Chain bookkeeping: events sharing a chain_id form one propagation chain.
    chain_id: int = 0
    #: Position within the chain (0 = root).
    chain_pos: int = 0
    #: Generator's intent: the error left the GPU in an error state that
    #: requires a reset (drives the availability/repair substrate).
    inoperable: bool = False

    @property
    def gpu_key(self) -> Tuple[str, str]:
        return (self.node_id, self.pci_bus)

    @property
    def is_root(self) -> bool:
        return self.chain_pos == 0

    @property
    def end_time(self) -> float:
        return self.time + self.persistence

    def shifted(self, dt: float) -> "ErrorEvent":
        return replace(self, time=self.time + dt)


@dataclass
class FaultTrace:
    """A time-ordered ground-truth error trace over an observation window."""

    events: List[ErrorEvent]
    window_seconds: float
    #: Node IDs covered by the trace (the MTBE normalization population).
    node_ids: Tuple[str, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: (e.time, e.node_id, e.pci_bus, int(e.xid)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ErrorEvent]:
        return iter(self.events)

    # -- ground-truth views used by tests and calibration checks ---------

    def counts_by_xid(self) -> Dict[Xid, int]:
        out: Dict[Xid, int] = {}
        for event in self.events:
            out[event.xid] = out.get(event.xid, 0) + 1
        return out

    def events_of(self, *xids: Xid) -> List[ErrorEvent]:
        wanted = set(xids)
        return [e for e in self.events if e.xid in wanted]

    def events_on_gpu(self, node_id: str, pci_bus: str) -> List[ErrorEvent]:
        return [e for e in self.events if e.node_id == node_id and e.pci_bus == pci_bus]

    def chains(self) -> Dict[int, List[ErrorEvent]]:
        """Events grouped by chain, each chain ordered by chain position."""
        grouped: Dict[int, List[ErrorEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.chain_id, []).append(event)
        for chain in grouped.values():
            chain.sort(key=lambda e: e.chain_pos)
        return grouped

    def inoperable_events(self) -> List[ErrorEvent]:
        return [e for e in self.events if e.inoperable]

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines (one event per line + a header)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            header = {
                "kind": "trace",
                "window_seconds": self.window_seconds,
                "node_ids": list(self.node_ids),
                "seed": self.seed,
            }
            handle.write(json.dumps(header) + "\n")
            for event in self.events:
                handle.write(
                    json.dumps(
                        {
                            "t": event.time,
                            "n": event.node_id,
                            "b": event.pci_bus,
                            "x": int(event.xid),
                            "p": event.persistence,
                            "c": event.chain_id,
                            "i": event.chain_pos,
                            "o": event.inoperable,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "FaultTrace":
        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            if header.get("kind") != "trace":
                raise ValueError(f"{path} is not a fault trace file")
            events = [
                ErrorEvent(
                    time=row["t"],
                    node_id=row["n"],
                    pci_bus=row["b"],
                    xid=Xid(row["x"]),
                    persistence=row["p"],
                    chain_id=row["c"],
                    chain_pos=row["i"],
                    inoperable=row["o"],
                )
                for row in map(json.loads, handle)
            ]
        return cls(
            events=events,
            window_seconds=header["window_seconds"],
            node_ids=tuple(header["node_ids"]),
            seed=header["seed"],
        )

    def merged_with(self, other: "FaultTrace") -> "FaultTrace":
        """Union of two traces over the same window (chain IDs re-spaced)."""
        if other.window_seconds != self.window_seconds:
            raise ValueError("cannot merge traces with different windows")
        offset = max((e.chain_id for e in self.events), default=0) + 1
        moved = [replace(e, chain_id=e.chain_id + offset) for e in other.events]
        return FaultTrace(
            events=list(self.events) + moved,
            window_seconds=self.window_seconds,
            node_ids=tuple(sorted(set(self.node_ids) | set(other.node_ids))),
            seed=self.seed,
        )


def gpu_for_event(event: ErrorEvent, gpus: Iterable[GpuDevice]) -> GpuDevice:
    """Resolve an event's GPU device from an inventory iterable."""
    for gpu in gpus:
        if gpu.key == event.gpu_key:
            return gpu
    raise KeyError(f"no GPU matching event at {event.gpu_key}")


def filter_window(events: Sequence[ErrorEvent], start: float, end: float) -> List[ErrorEvent]:
    """Events with ``start <= time < end``."""
    return [e for e in events if start <= e.time < end]
