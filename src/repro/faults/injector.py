"""Calibrated fault injection onto a cluster.

The :class:`FaultInjector` turns a :class:`~repro.faults.calibration.CalibrationProfile`
into a concrete :class:`~repro.faults.events.FaultTrace` on a
:class:`~repro.cluster.inventory.ClusterInventory`:

1. Solve the kernel's root-rate equation so expected totals match Table 1.
2. Place root events on GPUs — uniformly, biased toward busy/idle GPU-time
   (via an optional :class:`OccupancySampler`), or concentrated on designated
   offender GPUs with episode structure (bursty defective parts).
3. Walk the propagation kernel from each root (Figures 5-7) and materialize
   follow-up events on the same GPU or an NVLink peer.
4. Enforce that distinct events of the same (GPU, XID) never fall within the
   coalescing window of each other, so the analysis pipeline can in
   principle recover the generated event count exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.cluster.gpu import GpuDevice
from repro.cluster.inventory import ClusterInventory
from repro.cluster.node import Node, NodeKind
from repro.cluster.topology import nvlink_topology_for
from repro.faults.calibration import CalibrationProfile, solve_root_counts
from repro.faults.chains import walk_chain
from repro.faults.events import ErrorEvent, FaultTrace
from repro.faults.xid import Xid
from repro.util.rng import RngStreams
from repro.util.validation import check_positive

GpuKey = Tuple[str, str]

#: Minimum separation enforced between the end of one event's burst and the
#: start of the next event on the same (GPU, XID): strictly greater than the
#: pipeline's 5-second coalescing window.
COALESCE_GUARD_SECONDS = 6.0


class OccupancySampler(Protocol):
    """Schedule-aware placement oracle supplied by the datasets layer."""

    def sample_busy(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[List[GpuKey], np.ndarray]:
        """``n`` (GPU, time) points with a job active on that GPU."""
        ...

    def sample_idle(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[List[GpuKey], np.ndarray]:
        """``n`` (GPU, time) points with no job active on that GPU."""
        ...


@dataclass(frozen=True)
class InjectorConfig:
    """Injection parameters.

    ``scale`` shrinks (or stretches) the observation window; event counts
    scale proportionally so MTBE statistics are scale-invariant.  With
    ``deterministic_counts`` the number of events per XID is the rounded
    expectation (paper-faithful totals at ``scale=1``); otherwise counts are
    Poisson-distributed around it.
    """

    scale: float = 1.0
    seed: int = 7
    deterministic_counts: bool = True
    #: When True the workload substrate supplies the job-correlated share of
    #: MMU root events (see ``CalibrationProfile.mmu_from_workload_fraction``)
    #: and the injector generates only the hardware share.
    workload_mmu_external: bool = False

    def __post_init__(self) -> None:
        check_positive("scale", self.scale)


@dataclass
class _Placement:
    """Root placements for one XID before chain materialization.

    ``groups`` optionally assigns placements to shared incidents (NVLink
    fanout): placements in one group share a ground-truth chain ID.
    """

    gpus: List[GpuKey] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    groups: List[int] = field(default_factory=list)
    #: Pre-sampled root persistence (episode placements plan their spacing
    #: around these draws; ``None`` means sample at materialization).
    persistences: List[Optional[float]] = field(default_factory=list)

    def extend(
        self,
        gpus: Sequence[GpuKey],
        times: Sequence[float],
        group: int | None = None,
        persistences: Sequence[float] | None = None,
    ) -> None:
        self.gpus.extend(gpus)
        self.times.extend(float(t) for t in times)
        if group is None:
            start = (self.groups[-1] + 1) if self.groups else 0
            self.groups.extend(range(start, start + len(gpus)))
        else:
            self.groups.extend([group] * len(gpus))
        if persistences is None:
            self.persistences.extend([None] * len(gpus))
        else:
            self.persistences.extend(float(p) for p in persistences)

    def __len__(self) -> int:
        return len(self.gpus)


class FaultInjector:
    """Generate a ground-truth fault trace for one calibration profile."""

    def __init__(
        self,
        profile: CalibrationProfile,
        config: InjectorConfig | None = None,
    ) -> None:
        self.profile = profile
        self.config = config or InjectorConfig()
        self._streams = RngStreams(self.config.seed).fork("faults", profile.name)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def window_seconds(self) -> float:
        return self.profile.window_seconds * self.config.scale

    def population(self, cluster: ClusterInventory) -> Tuple[Node, ...]:
        """The nodes this profile injects into (Ampere vs Hopper parts)."""
        if self.profile.name.endswith("h100"):
            return cluster.hopper_nodes
        return cluster.ampere_nodes

    def root_counts(self) -> Dict[Xid, float]:
        """Expected root counts after scaling and workload-MMU exclusion."""
        totals = self.profile.scaled_counts(self.config.scale)
        # Switch-fault NVLink events are generated outside the kernel; keep
        # the overall NVLink total on target by shrinking the kernel's share.
        n_switch = self._switch_fault_event_count()
        if Xid.NVLINK in totals:
            totals[Xid.NVLINK] = max(0.0, totals[Xid.NVLINK] - n_switch)
        roots = solve_root_counts(totals, self.profile.kernel)
        if self.config.workload_mmu_external and Xid.MMU in roots:
            roots[Xid.MMU] *= 1.0 - self.profile.mmu_from_workload_fraction
        # NVLink incidents fan out to several GPUs at the root (shared
        # link/switch faults), multiplying the events each root produces.
        if Xid.NVLINK in roots:
            roots[Xid.NVLINK] /= self._nvlink_fanout_factor()
        return roots

    def _nvlink_fanout_factor(self) -> float:
        """Expected GPUs involved per NVLink root incident."""
        fanout = getattr(self.profile, "nvlink_fanout", ())
        return 1.0 + sum((k - 1) * p for k, p in fanout)

    def workload_mmu_budget(self) -> float:
        """Expected MMU events the workload substrate should emit."""
        totals = self.profile.scaled_counts(self.config.scale)
        roots = solve_root_counts(totals, self.profile.kernel)
        return roots.get(Xid.MMU, 0.0) * self.profile.mmu_from_workload_fraction

    def generate(
        self,
        cluster: ClusterInventory,
        occupancy: Optional[OccupancySampler] = None,
    ) -> FaultTrace:
        """Generate the full trace for this profile on ``cluster``."""
        nodes = self.population(cluster)
        if not nodes:
            raise ValueError(
                f"cluster has no nodes for profile {self.profile.name!r}"
            )
        gpus = [gpu for node in nodes for gpu in node.gpus]
        events: List[ErrorEvent] = []
        chain_counter = 0

        for xid, root_count in sorted(self.root_counts().items(), key=lambda kv: int(kv[0])):
            rng = self._streams.get("xid", str(int(xid)))
            n = self._realized_count(rng, root_count)
            if n <= 0:
                continue
            if xid is Xid.NVLINK:
                # NVLink incident sizes are geometric x fanout, so a fixed
                # root count carries ~15-30% total-count variance at partial
                # scale.  Generate a surplus of incidents and stop at the
                # calibrated event quota instead.
                quota = int(round(
                    self.profile.scaled_counts(self.config.scale)[Xid.NVLINK]
                    - self._switch_fault_event_count()
                ))
                placement = self._place_roots(
                    rng, xid, int(n * 1.6) + 8, gpus, occupancy
                )
                placement = self._expand_nvlink_fanout(placement, cluster, rng)
                chain_counter = self._materialize(
                    events, cluster, xid, placement, rng, chain_counter, quota=quota
                )
            else:
                placement = self._place_roots(rng, xid, n, gpus, occupancy)
                chain_counter = self._materialize(
                    events, cluster, xid, placement, rng, chain_counter
                )

        chain_counter = self._inject_switch_faults(events, cluster, chain_counter)
        events = self._enforce_separation(events)
        return FaultTrace(
            events=events,
            window_seconds=self.window_seconds,
            node_ids=tuple(sorted(node.node_id for node in nodes)),
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    # Root placement
    # ------------------------------------------------------------------

    def _realized_count(self, rng: np.random.Generator, expected: float) -> int:
        if self.config.deterministic_counts:
            return int(round(expected))
        return int(rng.poisson(expected))

    def _place_roots(
        self,
        rng: np.random.Generator,
        xid: Xid,
        n: int,
        gpus: Sequence[GpuDevice],
        occupancy: Optional[OccupancySampler],
    ) -> _Placement:
        calibration = self.profile.xids[xid]
        placement = _Placement()

        n_offender = 0
        if calibration.offenders is not None:
            n_offender = int(round(n * calibration.offenders.offender_share))
            self._place_offender_episodes(rng, xid, n_offender, gpus, placement)

        n_rest = n - n_offender
        if n_rest <= 0:
            return placement

        n_busy = int(round(n_rest * calibration.busy_bias))
        n_idle = n_rest - n_busy
        if occupancy is not None:
            if n_busy:
                busy_gpus, busy_times = occupancy.sample_busy(rng, n_busy)
                placement.extend(busy_gpus, busy_times)
            if n_idle:
                idle_gpus, idle_times = occupancy.sample_idle(rng, n_idle)
                placement.extend(idle_gpus, idle_times)
        else:
            chosen = rng.integers(0, len(gpus), size=n_rest)
            times = rng.uniform(0.0, self.window_seconds, size=n_rest)
            placement.extend([gpus[i].key for i in chosen], times)
        return placement

    def _place_offender_episodes(
        self,
        rng: np.random.Generator,
        xid: Xid,
        n: int,
        gpus: Sequence[GpuDevice],
        placement: _Placement,
    ) -> None:
        """Episode-structured placement on a few defective GPUs.

        Events on one offender GPU form a sequence whose inter-event gaps
        leave room for each event's duplicate burst, mimicking a part that
        errors near-continuously (Section 4.4.3's bursty uncontained case).
        """
        if n <= 0:
            return
        skew = self.profile.xids[xid].offenders
        assert skew is not None
        k = min(skew.n_offenders, len(gpus))
        offender_indices = rng.choice(len(gpus), size=k, replace=False)
        offenders = [gpus[i].key for i in offender_indices]

        # Allocate events: top GPU takes top_share of the offender mass.
        counts = [0] * k
        counts[0] = int(round(n * skew.top_share)) if k > 1 else n
        remaining = n - counts[0]
        for i in range(1, k):
            share = remaining // (k - 1)
            counts[i] = share
        counts[k - 1 if k > 1 else 0] += n - sum(counts)

        window = self.window_seconds
        testing_end = window
        if skew.testing_phase_share > 0 and skew.testing_phase_days > 0:
            testing_end = min(window, skew.testing_phase_days * 86400.0 * max(
                self.config.scale, 1e-9))
            # The testing phase scales with the window so small-scale runs
            # keep the early-window concentration.

        persistence_model = self.profile.xids[xid].persistence
        for gpu_key, count in zip(offenders, counts):
            if count <= 0:
                continue
            horizon = testing_end if rng.random() < skew.testing_phase_share else window
            durations = persistence_model.sample(rng, count)
            gaps = rng.lognormal(math.log(500.0), 0.7, size=count)
            gaps = np.maximum(gaps, COALESCE_GUARD_SECONDS)
            occupied = durations + gaps
            total = float(occupied.sum())
            if total > horizon * 0.95:
                # Compress gaps (never bursts) to fit the horizon.
                budget = max(horizon * 0.95 - float(durations.sum()), count * 1.0)
                gaps *= budget / float(gaps.sum())
                gaps = np.maximum(gaps, COALESCE_GUARD_SECONDS)
                occupied = durations + gaps
                total = float(occupied.sum())
            start = rng.uniform(0.0, max(horizon - total, 1.0))
            times = start + np.concatenate(([0.0], np.cumsum(occupied[:-1])))
            times = np.minimum(times, self.window_seconds - 1.0)
            # Hand the planned burst durations down so materialization does
            # not re-sample them (a fresh draw would overrun the next
            # event's start and collapse the planned spacing).
            placement.extend([gpu_key] * count, times, persistences=durations)

    def _expand_nvlink_fanout(
        self, placement: _Placement, cluster: ClusterInventory, rng: np.random.Generator
    ) -> _Placement:
        """Expand NVLink roots into multi-GPU incidents (Figure 6 structure).

        A shared link/switch fault makes several end-points log NVLink
        errors within seconds; each involved GPU then runs its own
        recurrence chain.  Fanout is clamped to the GPU's NVLink-reachable
        set (A40 bridge pairs can only involve two GPUs).
        """
        fanout = getattr(self.profile, "nvlink_fanout", ())
        if not fanout:
            return placement
        expanded = _Placement()
        for incident, (gpu_key, t) in enumerate(zip(placement.gpus, placement.times)):
            expanded.extend([gpu_key], [t], group=incident)
            draw = rng.random()
            cumulative = 0.0
            target = 1
            for k, prob in fanout:
                cumulative += prob
                if draw < cumulative:
                    target = k
                    break
            if target <= 1:
                continue
            node = cluster.node(gpu_key[0])
            topology = nvlink_topology_for(node)
            if topology is None:
                continue
            slot = node.gpu_by_bus(gpu_key[1]).index
            reachable = [
                s for s in topology.reachable(slot) if s != slot and s < node.gpu_count
            ]
            if len(reachable) < target - 1:
                # The fault needs a wider NVLink domain than this GPU has
                # (e.g. a 4-GPU fault on an A40 bridge pair): relocate the
                # incident to a fully-connected node.
                candidates = [
                    n for n in self.population(cluster)
                    if n.gpu_count >= target and (top := nvlink_topology_for(n))
                    and len(top.reachable(0)) >= target
                ]
                if candidates:
                    node = candidates[int(rng.integers(0, len(candidates)))]
                    slot = int(rng.integers(0, node.gpu_count))
                    gpu_key = (node.node_id, node.gpus[slot].pci_bus)
                    expanded.gpus[-1] = gpu_key  # move the root event too
                    topology = nvlink_topology_for(node)
                    reachable = [
                        s for s in topology.reachable(slot)
                        if s != slot and s < node.gpu_count
                    ]
            n_extra = min(target - 1, len(reachable))
            if n_extra <= 0:
                continue
            picks = rng.choice(len(reachable), size=n_extra, replace=False)
            for pick in picks:
                peer_bus = node.gpus[reachable[int(pick)]].pci_bus
                expanded.extend(
                    [(node.node_id, peer_bus)],
                    [t + float(rng.uniform(0.5, 5.0))],
                    group=incident,
                )
        return expanded

    # ------------------------------------------------------------------
    # Chain materialization
    # ------------------------------------------------------------------

    def _materialize(
        self,
        events: List[ErrorEvent],
        cluster: ClusterInventory,
        root_xid: Xid,
        placement: _Placement,
        rng: np.random.Generator,
        chain_counter: int,
        quota: int | None = None,
    ) -> int:
        window = self.window_seconds
        kernel = self.profile.kernel
        groups = placement.groups or list(range(len(placement)))
        planned = placement.persistences or [None] * len(placement)
        members_seen: Dict[int, int] = {}
        produced = 0
        last_group: int | None = None
        for gpu_key, t0, group, root_persistence in zip(
            placement.gpus, placement.times, groups, planned
        ):
            if quota is not None and produced >= quota and group != last_group:
                break  # quota met: stop at an incident boundary
            last_group = group
            member = members_seen.get(group, 0)
            members_seen[group] = member + 1
            # Fanout members of one incident share a chain ID; their step
            # positions are offset so positions stay unique within the chain.
            pos_offset = member * 1000
            steps = walk_chain(root_xid, kernel, rng)
            current_key = gpu_key
            t = float(t0)
            prev_end = t
            for position, step in enumerate(steps):
                if position > 0:
                    t = prev_end + step.delay_after_prev
                    if step.on_peer:
                        current_key = self._pick_peer(cluster, current_key, rng)
                if t >= window:
                    break
                if position == 0 and root_persistence is not None:
                    persistence = float(root_persistence)
                else:
                    persistence = float(
                        self.profile.xids[step.xid].persistence.sample(rng, 1)[0]
                    )
                persistence = min(persistence, max(0.0, window - t - 1.0))
                events.append(
                    ErrorEvent(
                        time=t,
                        node_id=current_key[0],
                        pci_bus=current_key[1],
                        xid=step.xid,
                        persistence=persistence,
                        chain_id=chain_counter + group,
                        chain_pos=pos_offset + position,
                        inoperable=step.inoperable,
                    )
                )
                produced += 1
                prev_end = t + persistence
        n_groups = (max(groups) + 1) if groups else 0
        return chain_counter + n_groups

    def _pick_peer(
        self, cluster: ClusterInventory, gpu_key: GpuKey, rng: np.random.Generator
    ) -> GpuKey:
        node_id, pci_bus = gpu_key
        node = cluster.node(node_id)
        topology = nvlink_topology_for(node)
        gpu = node.gpu_by_bus(pci_bus)
        if topology is None:
            return gpu_key
        peers = topology.peers(gpu.index)
        peers = tuple(p for p in peers if p < node.gpu_count)
        if not peers:
            return gpu_key
        slot = int(peers[int(rng.integers(0, len(peers)))])
        return (node_id, node.gpus[slot].pci_bus)

    # ------------------------------------------------------------------
    # NVSwitch whole-board faults (Figure 6's all-eight-GPU cases)
    # ------------------------------------------------------------------

    def _switch_fault_event_count(self) -> int:
        if Xid.NVLINK not in self.profile.xids:
            return 0
        incidents = int(round(self.profile.nvlink_switch_fault_incidents * self.config.scale))
        return incidents * 8

    def _inject_switch_faults(
        self, events: List[ErrorEvent], cluster: ClusterInventory, chain_counter: int
    ) -> int:
        n_events = self._switch_fault_event_count()
        if n_events == 0:
            return chain_counter
        eight_way = [n for n in self.population(cluster) if n.kind is NodeKind.A100_X8]
        if not eight_way:
            return chain_counter
        rng = self._streams.get("switch-faults")
        incidents = n_events // 8
        for _ in range(incidents):
            node = eight_way[int(rng.integers(0, len(eight_way)))]
            t0 = float(rng.uniform(0.0, max(self.window_seconds - 60.0, 1.0)))
            for offset, gpu in enumerate(node.gpus):
                persistence = float(
                    self.profile.xids[Xid.NVLINK].persistence.sample(rng, 1)[0]
                )
                events.append(
                    ErrorEvent(
                        time=t0 + offset * 0.4,
                        node_id=node.node_id,
                        pci_bus=gpu.pci_bus,
                        xid=Xid.NVLINK,
                        persistence=persistence,
                        chain_id=chain_counter,
                        chain_pos=offset,
                        inoperable=offset == 0,
                    )
                )
            chain_counter += 1
        return chain_counter

    # ------------------------------------------------------------------
    # Separation guarantee
    # ------------------------------------------------------------------

    def _enforce_separation(self, events: List[ErrorEvent]) -> List[ErrorEvent]:
        """Push same-(GPU, XID) events apart so bursts never touch.

        Two events of the same code on the same GPU whose bursts come within
        the coalescing window would be merged by the pipeline into a single
        error, silently deflating counts; this pass guarantees the generated
        count is recoverable.
        """
        window = self.window_seconds
        grouped: Dict[Tuple[GpuKey, Xid], List[ErrorEvent]] = {}
        for event in events:
            grouped.setdefault((event.gpu_key, event.xid), []).append(event)

        out: List[ErrorEvent] = []
        from dataclasses import replace

        for group in grouped.values():
            group.sort(key=lambda e: e.time)
            prev_end = -math.inf
            for event in group:
                t = event.time
                if t < prev_end + COALESCE_GUARD_SECONDS:
                    t = prev_end + COALESCE_GUARD_SECONDS
                if t >= window:
                    continue  # pushed out of the window: drop
                persistence = min(event.persistence, max(0.0, window - t - 0.5))
                if t != event.time or persistence != event.persistence:
                    event = replace(event, time=t, persistence=persistence)
                out.append(event)
                prev_end = event.end_time
        return out
