"""Propagation-chain walking.

Given a root XID and the calibration kernel, :func:`walk_chain` samples the
abstract chain (which codes follow, with what delays, on the same GPU or a
peer).  The injector then materializes the chain onto concrete devices and
timestamps.  Keeping the walk pure makes the kernel's branching statistics
directly testable without a cluster or clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

import numpy as np

from repro.faults.calibration import KernelRow, Scope
from repro.faults.xid import Xid

#: Hard cap on chain length; the calibrated kernels have expected lengths
#: below 5, so hitting this indicates a mis-calibrated (near-recurrent)
#: kernel rather than legitimate behaviour.
MAX_CHAIN_LENGTH = 200


@dataclass(frozen=True)
class ChainStep:
    """One event of a sampled chain (relative timing, abstract placement)."""

    xid: Xid
    #: Delay in seconds after the *end* of the previous event's burst
    #: (0.0 for the root).
    delay_after_prev: float
    #: Whether this step lands on an NVLink peer of the previous step's GPU.
    on_peer: bool
    #: Whether this event terminates the chain leaving the GPU inoperable.
    inoperable: bool


def walk_chain(
    root_xid: Xid,
    kernel: Mapping[Xid, KernelRow],
    rng: np.random.Generator,
) -> List[ChainStep]:
    """Sample one propagation chain starting from a spontaneous root event.

    Each event's fate is drawn from its kernel row: follow one transition
    (recursively — chained events draw again from their own row, which is
    what makes the *measured* conditional propagation probabilities equal
    the kernel probabilities) or terminate, possibly inoperably.
    """
    steps: List[ChainStep] = []
    current = root_xid
    delay = 0.0
    on_peer = False
    while len(steps) < MAX_CHAIN_LENGTH:
        row = kernel.get(current)
        if row is None:
            steps.append(ChainStep(current, delay, on_peer, inoperable=False))
            break
        draw = rng.random()
        cumulative = 0.0
        chosen = None
        for transition in row.transitions:
            cumulative += transition.prob
            if draw < cumulative:
                chosen = transition
                break
        if chosen is None:
            # Terminal: the leftover mass; inoperable_prob is over all
            # outcomes, so rescale it onto the terminal branch.
            terminal = row.terminal_prob
            inoperable = False
            if terminal > 0 and row.inoperable_prob > 0:
                inoperable = rng.random() < min(1.0, row.inoperable_prob / terminal)
            steps.append(ChainStep(current, delay, on_peer, inoperable))
            break
        steps.append(ChainStep(current, delay, on_peer, inoperable=False))
        delay = chosen.delay.sample(rng)
        on_peer = chosen.scope is Scope.PEER_GPU
        current = chosen.target
    else:
        raise RuntimeError(
            f"chain from {root_xid!r} exceeded {MAX_CHAIN_LENGTH} steps; "
            "kernel is too close to recurrent"
        )
    return steps


def expected_chain_length(
    root_xid: Xid, kernel: Mapping[Xid, KernelRow], samples: int, rng: np.random.Generator
) -> float:
    """Monte-Carlo expected chain length (calibration diagnostics)."""
    total = 0
    for _ in range(samples):
        total += len(walk_chain(root_xid, kernel, rng))
    return total / samples
