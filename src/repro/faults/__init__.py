"""Calibrated GPU fault substrate.

This subpackage is the generative half of the reproduction: it plants
ground-truth fault chains on a simulated cluster, shaped by the statistics
the paper published for Delta (``DELTA_CALIBRATION``).  The analysis pipeline
in :mod:`repro.core` never reads these ground-truth events directly — it only
sees the rendered syslog text — so recovering the calibration constants from
the logs is an end-to-end test of the paper's methodology.
"""

from repro.faults.calibration import (
    AMPERE_CALIBRATION,
    DELTA_CALIBRATION,
    H100_CALIBRATION,
    CalibrationProfile,
    XidCalibration,
)
from repro.faults.diagnostics import CalibrationReport, check_calibration
from repro.faults.events import ErrorEvent, FaultTrace
from repro.faults.injector import FaultInjector, InjectorConfig
from repro.faults.variants import (
    burned_in_profile,
    hardened_peripherals_profile,
    profile_variant,
)
from repro.faults.xid import Xid, XidCategory, XidInfo, XID_CATALOG, RecoveryAction

__all__ = [
    "AMPERE_CALIBRATION",
    "DELTA_CALIBRATION",
    "H100_CALIBRATION",
    "CalibrationProfile",
    "XidCalibration",
    "CalibrationReport",
    "check_calibration",
    "ErrorEvent",
    "FaultTrace",
    "FaultInjector",
    "InjectorConfig",
    "burned_in_profile",
    "hardened_peripherals_profile",
    "profile_variant",
    "Xid",
    "XidCategory",
    "XidInfo",
    "XID_CATALOG",
    "RecoveryAction",
]
