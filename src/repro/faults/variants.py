"""Calibration-profile variants: generative what-if studies.

Section 5.5's counterfactual removes observed errors *after the fact*.
A stronger check re-synthesizes the world under a modified generative
model — GSP errors 10x rarer, no defective parts shipped, NVLink hardened —
and re-measures everything through the unchanged pipeline.  When the
analytic (exclusion-based) and generative (re-synthesis) counterfactuals
agree, the exclusion arithmetic the paper relies on is validated.

``profile_variant`` builds modified profiles without touching the frozen
originals.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping

from repro.faults.calibration import CalibrationProfile, XidCalibration
from repro.faults.xid import Xid


def profile_variant(
    profile: CalibrationProfile,
    *,
    name_suffix: str = "variant",
    count_scales: Mapping[Xid, float] | None = None,
    drop_xids: Mapping[Xid, bool] | None = None,
    remove_offenders: bool = False,
) -> CalibrationProfile:
    """A modified copy of a calibration profile.

    ``count_scales`` multiplies per-code totals (e.g. ``{Xid.GSP: 0.1}``
    models a firmware fix); ``drop_xids`` removes codes entirely;
    ``remove_offenders`` deletes defective-GPU skew, spreading each code's
    (unchanged) volume uniformly — the "comprehensive burn-in testing"
    scenario, generatively.
    """
    count_scales = dict(count_scales or {})
    drop = {xid for xid, flag in (drop_xids or {}).items() if flag}

    new_xids: Dict[Xid, XidCalibration] = {}
    for xid, calibration in profile.xids.items():
        if xid in drop:
            continue
        updated = calibration
        scale = count_scales.get(xid)
        if scale is not None:
            if scale < 0:
                raise ValueError(f"count scale for {xid!r} must be non-negative")
            updated = replace(updated, count=int(round(updated.count * scale)))
        if remove_offenders and updated.offenders is not None:
            updated = replace(updated, offenders=None)
        if updated.count > 0:
            new_xids[xid] = updated

    # Prune kernel rows of removed codes AND transitions into them (a chain
    # must never materialize an event the profile cannot parameterize).
    new_kernel = {}
    for xid, row in profile.kernel.items():
        if xid not in new_xids:
            continue
        kept = tuple(t for t in row.transitions if t.target in new_xids)
        new_kernel[xid] = replace(row, transitions=kept) if (
            len(kept) != len(row.transitions)
        ) else row
    return replace(
        profile,
        name=f"{profile.name}-{name_suffix}",
        xids=new_xids,
        kernel=new_kernel,
    )


def burned_in_profile(profile: CalibrationProfile) -> CalibrationProfile:
    """Section 5.5 scenario 1, generatively: defective parts never shipped.

    Offender-concentrated volume disappears with the parts: each skewed
    code keeps only its non-offender share (plus chain inflow).
    """
    count_scales: Dict[Xid, float] = {}
    for xid, calibration in profile.xids.items():
        if calibration.offenders is None:
            continue
        share_of_total = calibration.offenders.offender_share
        if xid is Xid.MMU:
            # MMU offender skew applies only to the injector's hardware
            # portion; the workload-emitted share is not part-bound.
            share_of_total *= 1.0 - profile.mmu_from_workload_fraction
        count_scales[xid] = 1.0 - share_of_total
    return profile_variant(
        profile,
        name_suffix="burned-in",
        count_scales=count_scales,
        remove_offenders=True,
    )


def hardened_peripherals_profile(profile: CalibrationProfile) -> CalibrationProfile:
    """Section 5.5 scenario 2, generatively: GSP/PMU/NVLink fixed."""
    return profile_variant(
        burned_in_profile(profile),
        name_suffix="hardened",
        drop_xids={Xid.GSP: True, Xid.PMU_SPI: True, Xid.NVLINK: True},
    )
