"""Session runtime layer: one run-wiring path for every command.

* :mod:`repro.session.config` — :class:`RunConfig`, the typed, hashable
  record of a run's knobs and the single source of the run manifests'
  ``config_hashes["run"]`` digest;
* :mod:`repro.session.session` — :class:`Session`, which owns dataset
  synthesis, store read-through, study construction (lazy, cached) and
  experiment execution;
* :mod:`repro.session.parallel` — the process-pool fan-out behind
  ``--jobs``, byte-identical to serial execution.
"""

from repro.session.config import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    RunConfig,
    SessionError,
)
from repro.session.session import Session

__all__ = ["DEFAULT_SCALE", "DEFAULT_SEED", "RunConfig", "Session", "SessionError"]
