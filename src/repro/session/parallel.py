"""Parallel experiment execution: fan runner ids over a process pool.

Experiment runners are pure functions of their
:class:`~repro.experiments.ExperimentContext` — given the same study,
scale and seed they produce the same :class:`ExperimentResult` — so
running them in worker processes is a pure speed knob.  The shared study
is built **once** in the parent and shipped to each worker exactly once
(via the pool initializer), either as:

* the store directory, when the session is store-backed — workers
  re-open the store and Stage I is a columnar decode; or
* the parent's extracted record list, pickled — Stage I is pre-paid and
  the workers coalesce the exact records the parent extracted.

Both reconstructions carry the parent study's full provenance
(window/node/GPU counts, engine, store hash, dataset label), so the
manifests written by a parallel run are byte-identical to a serial one.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import DeltaStudy
    from repro.results.artifact import ExperimentResult
    from repro.session.session import Session


@dataclass(frozen=True)
class StudySpec:
    """A picklable recipe for rebuilding the parent's study in a worker."""

    window_hours: float
    n_nodes: int
    n_gpus: Optional[int]
    engine: str
    scale: float
    seed: int
    workers: int
    run_digest: str
    #: Exactly one of the two transports is set.
    store_dir: Optional[str] = None
    records: Optional[tuple] = None
    slurm_db: object = None
    coalesce_config: object = None
    store_hash: Optional[str] = None
    dataset_label: Optional[str] = None
    #: Trace context (``repro.obs.TraceContext``) when the dispatching
    #: process is tracing; workers re-activate it so their spans land in
    #: the same trace directory, parented under the dispatch span.
    trace: object = None


def spec_for(session: "Session") -> StudySpec:
    """Capture the session's study as a worker-shippable spec."""
    from repro import obs

    study = session.study
    common = dict(
        trace=obs.current_context(label="job"),
        window_hours=float(study.window_hours),
        n_nodes=int(study.n_nodes),
        n_gpus=study.n_gpus,
        engine=study.engine,
        scale=session.scale,
        seed=session.config.seed,
        workers=session.config.workers,
        run_digest=session.config.digest(),
        slurm_db=study.slurm_db,
        coalesce_config=study.coalesce_config,
        store_hash=study.store_hash,
        dataset_label=study.dataset_label,
    )
    if session.config.store is not None and study.store_hash is not None:
        return StudySpec(store_dir=str(session.config.store), **common)
    # ``study.records`` materializes Stage I once in the parent; every
    # worker then starts from the identical record list.
    return StudySpec(records=tuple(study.records), **common)


def rebuild_study(spec: StudySpec) -> "DeltaStudy":
    """Reconstruct the parent's study from a spec (runs in the worker)."""
    from repro.core.pipeline import DeltaStudy

    if spec.store_dir is not None:
        study = DeltaStudy.from_store(
            spec.store_dir,
            window_hours=spec.window_hours,
            n_nodes=spec.n_nodes,
            slurm_db=spec.slurm_db,
            engine=spec.engine,
        )
    else:
        study = DeltaStudy.from_records(
            spec.records,
            window_hours=spec.window_hours,
            n_nodes=spec.n_nodes,
            n_gpus=spec.n_gpus,
            slurm_db=spec.slurm_db,
            coalesce_config=spec.coalesce_config,
            engine=spec.engine,
        )
    if spec.n_gpus is not None:
        study.n_gpus = spec.n_gpus
    study.store_hash = spec.store_hash
    study.dataset_label = spec.dataset_label
    return study


# -- worker side -----------------------------------------------------------

#: Per-worker state, installed once by the pool initializer so the study
#: is unpickled/rebuilt once per worker, not once per experiment.
_WORKER: Dict[str, object] = {}


def _init_worker(spec: StudySpec) -> None:
    from repro import obs

    obs.activate_context(spec.trace)  # type: ignore[arg-type]
    _WORKER["spec"] = spec
    with obs.span("session.study.rebuild"):
        _WORKER["study"] = rebuild_study(spec)


def _run_one(identifier: str) -> "ExperimentResult":
    from repro import obs
    from repro.experiments import run_experiment

    spec: StudySpec = _WORKER["spec"]  # type: ignore[assignment]
    tracer = obs.active()
    before = tracer.snapshot() if tracer is not None else None
    with obs.span("session.experiment", experiment=identifier):
        result = run_experiment(
            identifier,
            _WORKER["study"],  # type: ignore[arg-type]
            scale=spec.scale,
            seed=spec.seed,
            workers=spec.workers,
            run_digest=spec.run_digest,
        )
    if tracer is not None:
        result = obs.stamp_result(result, tracer=tracer, before=before)
    return result


# -- parent side -----------------------------------------------------------


def run_parallel(
    session: "Session", identifiers: Sequence[str], *, jobs: int
) -> List["ExperimentResult"]:
    """Run ``identifiers`` over ``jobs`` worker processes, in order.

    ``pool.map`` preserves input order, so the result list is positioned
    exactly as the serial path would produce it regardless of which
    worker finishes first.
    """
    from repro import obs

    with obs.span("session.dispatch", jobs=jobs, experiments=len(identifiers)):
        # The spec captures the trace context *inside* the dispatch span,
        # so worker spans re-parent under it when the trace is read back.
        spec = spec_for(session)
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=(spec,)
        ) as pool:
            return list(pool.map(_run_one, identifiers))
