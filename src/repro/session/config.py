"""The run configuration: every knob that shapes a characterization run.

``RunConfig`` is the single typed record of how a run is wired — window
scale, RNG seed, extraction worker count, experiment fan-out, dataset
and store locations, output destination and format.  Every CLI command
builds one (:meth:`RunConfig.from_args`), every :class:`~repro.session.
session.Session` is constructed from one, and every run manifest's
``config_hashes["run"]`` entry is :meth:`RunConfig.digest` — so the
provenance recorded next to a result names exactly the wiring that
produced it.

The digest covers only the *data-determining* fields (scale, seed,
dataset, store, engine).  Execution knobs (``workers``, ``jobs``) and
presentation knobs (``format``, ``output_dir``) are excluded on
purpose: the repo's identity contracts promise byte-identical results
for any worker or job count, and a digest that shifted with them would
make equal results look different.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.results.artifact import config_digest


class SessionError(ValueError):
    """Invalid run configuration (maps to CLI exit code 2)."""


#: The scale the default CLI study runs at (the goldens' setting).
DEFAULT_SCALE = 0.05

#: The analysis seed every subcommand defaults to.
DEFAULT_SEED = 7


@dataclass(frozen=True)
class RunConfig:
    """One run's wiring, hashable and comparable.

    ``workers`` parallelizes Stage-I extraction *within* one study;
    ``jobs`` fans independent experiment runners out over processes.
    The two compose: each is a pure speed knob with an identity
    contract, so ``(workers, jobs)`` never changes any result.
    """

    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    workers: int = 1
    jobs: int = 1
    dataset: Optional[Path] = None
    store: Optional[Path] = None
    output_dir: Optional[Path] = None
    format: str = "text"
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise SessionError(f"scale must be positive, got {self.scale}")
        if self.workers < 1:
            raise SessionError(f"--workers must be >= 1, got {self.workers}")
        if self.jobs < 1:
            raise SessionError(f"--jobs must be >= 1, got {self.jobs}")
        if self.format not in ("text", "json"):
            raise SessionError(f"format must be text or json, got {self.format!r}")

    @classmethod
    def from_args(cls, args, **overrides) -> "RunConfig":
        """Build from an argparse namespace; absent flags keep defaults.

        ``--workers`` may arrive as ``None`` ("all cores"): that resolves
        here, so every consumer downstream sees a concrete count.
        """
        import os

        values = {}
        for name in ("scale", "seed", "jobs", "dataset", "store",
                     "output_dir", "format"):
            value = getattr(args, name, None)
            if value is not None:
                values[name] = value
        workers = getattr(args, "workers", None)
        if workers is not None:
            values["workers"] = workers
        elif hasattr(args, "workers"):
            values["workers"] = os.cpu_count() or 1
        values.update(overrides)
        return cls(**values)

    def with_(self, **changes) -> "RunConfig":
        return replace(self, **changes)

    def digest(self) -> str:
        """Stable short hash of the data-determining configuration."""
        return config_digest({
            "scale": self.scale,
            "seed": self.seed,
            "dataset": str(self.dataset) if self.dataset else None,
            "store": str(self.store) if self.store else None,
            "engine": self.engine,
        })
