"""The session: one object that owns a run's wiring, end to end.

Before this layer existed, every CLI command re-implemented the same
dance — synthesize or load a dataset, maybe read through a columnar
store (validating its scale/seed), build a :class:`DeltaStudy`, pick the
effective scale — in slightly different ways.  ``Session`` is that dance
written once:

* the dataset (in-memory synthesis, or a directory written by
  ``synthesize``) is resolved lazily and cached;
* ``--store DIR`` read-through happens in exactly one place, including
  the build-on-first-use and the scale/seed validation against the
  store's recorded metadata;
* the :class:`DeltaStudy` is built lazily, cached, and shared by every
  experiment the session runs;
* experiments run through :meth:`run` / :meth:`run_many`, which stamp
  each result's manifest with the session's
  :meth:`~repro.session.config.RunConfig.digest`;
* ``jobs > 1`` fans :meth:`run_many` over a process pool
  (:mod:`repro.session.parallel`) with the shared study shipped to the
  workers — byte-identical to the serial path.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.session.config import RunConfig, SessionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import DeltaStudy
    from repro.results.artifact import ExperimentResult


class Session:
    """A lazily-wired run: config in, cached study and results out."""

    def __init__(self, config: RunConfig) -> None:
        self.config = config
        self._dataset = None
        self._study: Optional["DeltaStudy"] = None

    @classmethod
    def from_args(cls, args, **overrides) -> "Session":
        return cls(RunConfig.from_args(args, **overrides))

    # ------------------------------------------------------------------
    # Dataset resolution
    # ------------------------------------------------------------------

    @property
    def dataset(self):
        """The in-memory synthesized dataset (on-disk runs never build one)."""
        if self.config.dataset is not None:
            raise ValueError(
                "session reads an on-disk dataset; there is no in-memory one"
            )
        if self._dataset is None:
            from repro import obs
            from repro.datasets import synthesize_delta

            with obs.span(
                "session.dataset.synthesize",
                scale=self.config.scale, seed=self.config.seed,
            ):
                self._dataset = synthesize_delta(
                    scale=self.config.scale, seed=self.config.seed
                )
        return self._dataset

    @property
    def scale(self) -> float:
        """The effective observation-window scale of the run."""
        if self.config.dataset is not None or self._dataset is None:
            return self.config.scale
        return self._dataset.config.scale

    # ------------------------------------------------------------------
    # Store read-through
    # ------------------------------------------------------------------

    def _open_store(self, make_source, *, meta: dict, workers: int = 1):
        """Open ``config.store``, building it on first use.

        ``make_source`` is called only when the store is empty (so the
        raw logs are parsed exactly once per dataset, not once per
        analysis).  A non-empty store must have been built for the same
        scale/seed — silently reusing someone else's records would be
        worse than slow.
        """
        from repro.store import EventStore, StoreError

        store = EventStore.open_or_create(self.config.store, meta=meta)
        if store.n_records == 0:
            store.ingest(make_source(), workers=workers)
            return store
        for key in ("scale", "seed"):
            want, have = meta.get(key), store.meta.get(key)
            if want is not None and have is not None and want != have:
                raise StoreError(
                    f"store at {self.config.store} was built with "
                    f"{key}={have}, this run wants {key}={want}; pass a "
                    f"matching --{key} or a different --store directory"
                )
        return store

    # ------------------------------------------------------------------
    # Study construction (the one wiring path)
    # ------------------------------------------------------------------

    @property
    def study(self) -> "DeltaStudy":
        """The run's :class:`DeltaStudy`, built once and cached."""
        if self._study is None:
            from repro import obs

            with obs.span("session.study.build"):
                self._study = self._build_study()
        return self._study

    def _build_study(self) -> "DeltaStudy":
        if self.config.dataset is not None:
            return self._study_from_directory(self.config.dataset)
        return self._study_from_memory()

    def _study_from_directory(self, dataset_dir: Path) -> "DeltaStudy":
        from repro.core import DeltaStudy
        from repro.faults import AMPERE_CALIBRATION
        from repro.slurm import SlurmDatabase

        config = self.config
        slurm_db = SlurmDatabase.load(dataset_dir / "slurm.jsonl")
        window_hours = AMPERE_CALIBRATION.window_days * 24.0 * config.scale
        n_nodes = AMPERE_CALIBRATION.reference_node_count
        if config.store is not None:
            from repro.pipeline import FileSetSource

            store = self._open_store(
                lambda: FileSetSource(dataset_dir / "logs"),
                meta={
                    "scale": config.scale,
                    "seed": config.seed,
                    "window_hours": window_hours,
                    "n_nodes": n_nodes,
                    "dataset": str(dataset_dir),
                },
                workers=config.workers,
            )
            return DeltaStudy.from_store(
                store, slurm_db=slurm_db, workers=config.workers,
                engine=config.engine,
            )
        return DeltaStudy.from_log_directory(
            dataset_dir / "logs",
            window_hours=window_hours,
            n_nodes=n_nodes,
            slurm_db=slurm_db,
            workers=config.workers,
            engine=config.engine,
        )

    def _study_from_memory(self) -> "DeltaStudy":
        from repro.core import DeltaStudy

        dataset = self.dataset
        if self.config.store is not None:
            from repro.pipeline import LinesSource

            store = self._open_store(
                lambda: LinesSource(dataset.log_lines()),
                meta={
                    "scale": dataset.config.scale,
                    "seed": dataset.config.seed,
                    "window_hours": dataset.window_seconds / 3600.0,
                    "n_nodes": dataset.reference_node_count,
                    "n_gpus": dataset.reference_gpu_count,
                },
            )
            return DeltaStudy.from_store(
                store, slurm_db=dataset.slurm_db,
                workers=self.config.workers, engine=self.config.engine,
            )
        return DeltaStudy.from_dataset(
            dataset, workers=self.config.workers, engine=self.config.engine
        )

    # ------------------------------------------------------------------
    # Experiment execution
    # ------------------------------------------------------------------

    def run(self, identifier: str) -> "ExperimentResult":
        """Run one registered experiment against the session's study.

        When tracing is active the result's manifest is stamped with the
        spans/counters this experiment produced (trace-directory copy
        only — the default serialization stays byte-identical).
        """
        from repro import obs
        from repro.experiments import run_experiment

        tracer = obs.active()
        before = tracer.snapshot() if tracer is not None else None
        with obs.span("session.experiment", experiment=identifier):
            result = run_experiment(
                identifier,
                self.study,
                scale=self.scale,
                seed=self.config.seed,
                workers=self.config.workers,
                run_digest=self.config.digest(),
            )
        if tracer is not None:
            result = obs.stamp_result(result, tracer=tracer, before=before)
        return result

    def run_many(
        self, identifiers: Sequence[str], *, jobs: Optional[int] = None
    ) -> List["ExperimentResult"]:
        """Run several experiments, optionally fanned over processes.

        Results come back in ``identifiers`` order whatever the job
        count, and each result is byte-identical to what :meth:`run`
        would have produced — runners are pure functions of their
        :class:`~repro.experiments.ExperimentContext`, so shipping the
        shared study to worker processes is a pure speed knob.
        """
        identifiers = list(identifiers)
        jobs = self.config.jobs if jobs is None else jobs
        if jobs < 1:
            raise SessionError(f"--jobs must be >= 1, got {jobs}")
        jobs = min(jobs, len(identifiers))
        if jobs <= 1:
            return [self.run(identifier) for identifier in identifiers]
        from repro.session.parallel import run_parallel

        return run_parallel(self, identifiers, jobs=jobs)
