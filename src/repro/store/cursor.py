"""Windowed replay cursor: stream a store's history in bounded time slices.

:class:`ReplayCursor` walks an :class:`~repro.store.store.EventStore`
(optionally under a residual :class:`~repro.store.query.Query`) in
consecutive event-time windows.  Each window is answered by its own
pushdown query — the manifest's zone maps prune segments per window, so a
cursor positioned late in a long history never opens early segments —
and the concatenation of the window streams is *exactly* the stream the
one-shot full query returns, tie-breaks included: windows are half-open
``[lo, hi)`` slices of event time, so records sharing a timestamp always
travel in the same window and keep their manifest-order resolution.

This is the shape a replay engine wants: bounded memory per window, a
place to pace/checkpoint between windows, and :meth:`seek` to start
mid-history, all without giving up byte-identity with the flat stream.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.parsing import RawXidRecord
from repro.store.query import MATCH_ALL, Query
from repro.store.store import EventStore

#: Default window width: six hours of event time per slice.
DEFAULT_WINDOW_SECONDS = 6 * 3600.0


class ReplayCursor:
    """Iterate a store's (filtered) history window-by-window, in order.

    ``window_seconds`` bounds how much event time one slice covers;
    ``query`` narrows the replayed stream exactly like
    :meth:`EventStore.query` would.  The cursor's own time bounds are the
    intersection of the store's span and the query's ``time_range``.
    """

    def __init__(
        self,
        store: Union[EventStore, str],
        *,
        query: Query = MATCH_ALL,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
    ) -> None:
        if not isinstance(store, EventStore):
            store = EventStore.open(store)
        if window_seconds <= 0 or not math.isfinite(window_seconds):
            raise ValueError("window_seconds must be positive and finite")
        self.store = store
        self.query = query
        self.window_seconds = float(window_seconds)
        span = store.time_span
        lo = span[0] if span else 0.0
        hi = span[1] if span else 0.0
        if query.time_range is not None:
            q_lo, q_hi = query.time_range
            if q_lo is not None:
                lo = max(lo, q_lo)
            if q_hi is not None:
                hi = min(hi, q_hi)
        #: Inclusive bounds of the replayable history.
        self.time_min = lo
        self.time_max = hi
        self._position = lo if span is not None and lo <= hi else math.inf

    # ------------------------------------------------------------------

    @property
    def position(self) -> float:
        """Event time the next window starts at."""
        return self._position

    @property
    def exhausted(self) -> bool:
        return self._position > self.time_max

    def seek(self, time: float) -> "ReplayCursor":
        """Position the cursor so the next window starts at ``time``."""
        self._position = float(time)
        return self

    # ------------------------------------------------------------------

    def _window_query(self, lo: float, hi_inclusive: float) -> Query:
        return dataclasses.replace(self.query, time_range=(lo, hi_inclusive))

    def next_window(self) -> Optional[Tuple[float, float, List[RawXidRecord]]]:
        """Advance one window; ``(lo, hi, records)`` or ``None`` at the end.

        Records satisfy ``lo <= record.time < hi`` except in the final
        window, which also includes records at exactly ``time_max`` (the
        history's last instant must land somewhere).
        """
        if self.exhausted:
            return None
        lo = self._position
        hi = lo + self.window_seconds
        final = hi > self.time_max
        # The pushdown interval is closed; trim the open edge ourselves so
        # boundary-sharing records always travel with the later window.
        records = [
            record
            for record in self.store.query(self._window_query(lo, min(hi, self.time_max)))
            if record.time < hi or (final and record.time <= self.time_max)
        ]
        self._position = hi if not final else self.time_max + math.inf
        return (lo, hi, records)

    def windows(self) -> Iterator[Tuple[float, float, List[RawXidRecord]]]:
        """Yield ``(lo, hi, records)`` slices until the history runs out."""
        while True:
            window = self.next_window()
            if window is None:
                return
            yield window

    def iter_records(self) -> Iterator[RawXidRecord]:
        """The flat stream: identical to ``store.query(query)``."""
        for _, _, records in self.windows():
            yield from records

    def __iter__(self) -> Iterator[RawXidRecord]:
        return self.iter_records()
