"""The event store: durable, indexed home for coalesced XID records.

:class:`EventStore` is a directory of immutable columnar segments
(:mod:`repro.store.segment`) under one atomically-updated manifest
(:mod:`repro.store.manifest`).  It supports:

* **incremental append** — any iterable of records lands as one or more
  new segments (write-temp + rename, then a manifest commit), so a
  crash never corrupts existing data;
* **crash recovery** — :meth:`open` sweeps leftovers: half-written
  ``*.tmp`` files are deleted, complete orphan segments (renamed but not
  yet in the manifest) are adopted, files on the garbage list (a
  compaction interrupted before cleanup) are removed;
* **pushdown queries** — :meth:`query` consults each segment's zone map
  and never opens segments that cannot match, then k-way-merges the
  surviving per-segment streams into one globally time-ordered stream
  (ties break by segment order, mirroring the pipeline's shard-order
  tie-break — a store built from the pipeline's merged stream replays
  it record-for-record);
* **compaction** — adjacent small segments merge into one, keeping
  logical content and replay order identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import operator
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.parsing import RawXidRecord
from repro.store.manifest import MANIFEST_NAME, StoreManifest
from repro.store.query import MATCH_ALL, Query
from repro.store.segment import (
    SegmentCorruptError,
    SegmentInfo,
    StoreError,
    count_matches,
    iter_segment_records,
    read_footer,
    write_segment,
)

#: Default batch size for appends: one segment per this many records.
DEFAULT_SEGMENT_RECORDS = 50_000

#: Compaction default: segments smaller than this are merge candidates.
DEFAULT_COMPACT_THRESHOLD = 10_000


class EventStore:
    """A persistent, indexed XID record store rooted at one directory."""

    def __init__(self, directory: str | Path, manifest: StoreManifest) -> None:
        self.directory = Path(directory)
        self.manifest = manifest

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, directory: str | Path, *, meta: Optional[Dict[str, object]] = None
    ) -> "EventStore":
        """Initialize an empty store (the directory may not already hold one)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / MANIFEST_NAME).exists():
            raise StoreError(f"{directory} already holds an event store")
        manifest = StoreManifest(meta=dict(meta or {}))
        manifest.commit(directory)
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory: str | Path) -> "EventStore":
        """Open an existing store, running crash recovery first."""
        directory = Path(directory)
        if not (directory / MANIFEST_NAME).exists():
            raise StoreError(f"no event store at {directory} (missing {MANIFEST_NAME})")
        manifest = StoreManifest.load(directory)
        store = cls(directory, manifest)
        store._recover()
        return store

    @classmethod
    def open_or_create(
        cls, directory: str | Path, *, meta: Optional[Dict[str, object]] = None
    ) -> "EventStore":
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            return cls.open(directory)
        return cls.create(directory, meta=meta)

    @staticmethod
    def exists(directory: str | Path) -> bool:
        return (Path(directory) / MANIFEST_NAME).exists()

    def _recover(self) -> None:
        """Sweep crash leftovers; commits the manifest only when it changed."""
        changed = False

        # 1. Half-written segments never made it into the namespace.
        for leftover in self.directory.glob("*.tmp"):
            if leftover.name == MANIFEST_NAME + ".tmp":
                leftover.unlink(missing_ok=True)
                continue
            leftover.unlink(missing_ok=True)

        # 2. An interrupted compaction left files it meant to delete.
        if self.manifest.garbage:
            for name in self.manifest.garbage:
                (self.directory / name).unlink(missing_ok=True)
            self.manifest.garbage = []
            changed = True

        # 3. Complete segments that missed their manifest commit: adopt
        #    (rename-into-place means the file is whole); structurally
        #    invalid files are quarantined, never silently read.
        known = {entry.name for entry in self.manifest.segments}
        orphans = sorted(
            path
            for path in self.directory.glob("seg-*.seg")
            if path.name not in known
        )
        for path in orphans:
            try:
                info = self._describe(path)
            except SegmentCorruptError:
                path.rename(path.with_suffix(".seg.corrupt"))
                continue
            self.manifest.segments.append(info)
            sequence = _sequence_of(path.name)
            if sequence is not None:
                self.manifest.next_seq = max(self.manifest.next_seq, sequence + 1)
            changed = True
        if changed:
            self.manifest.segments.sort(key=lambda e: _sequence_of(e.name) or 0)
            self.manifest.commit(self.directory)

    def _describe(self, path: Path) -> SegmentInfo:
        footer = read_footer(path)
        zone = footer["zone"]
        payload = path.read_bytes()
        return SegmentInfo(
            name=path.name,
            n_records=int(footer["n_records"]),
            n_bytes=len(payload),
            sha256=hashlib.sha256(payload).hexdigest(),
            time_min=float(zone["time_min"]),
            time_max=float(zone["time_max"]),
            xids=tuple(int(x) for x in zone["xids"]),
            nodes=tuple(str(n) for n in zone["nodes"]),
            serials=tuple(str(s) for s in zone["serials"]),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def meta(self) -> Dict[str, object]:
        return self.manifest.meta

    @property
    def n_segments(self) -> int:
        return len(self.manifest.segments)

    @property
    def n_records(self) -> int:
        return self.manifest.n_records

    @property
    def time_span(self) -> Optional[Tuple[float, float]]:
        if not self.manifest.segments:
            return None
        return (
            min(s.time_min for s in self.manifest.segments),
            max(s.time_max for s in self.manifest.segments),
        )

    def content_hash(self) -> str:
        """Digest of the store's physical state (segment hashes, in order).

        Recorded in run manifests: two runs citing the same hash read the
        very same bytes.
        """
        digest = hashlib.sha256()
        for entry in self.manifest.segments:
            digest.update(entry.sha256.encode())
        return digest.hexdigest()[:16]

    def stats(self) -> dict:
        xids: Dict[int, int] = {}
        nodes = set()
        serials = set()
        for entry in self.manifest.segments:
            nodes.update(entry.nodes)
            serials.update(entry.serials)
            for xid in entry.xids:
                xids.setdefault(xid, 0)
        # Exact per-XID counts need the columns; zone maps only list
        # presence.  Counting is still pushdown-cheap per XID because
        # non-listing segments are pruned.
        for xid in xids:
            xids[xid] = self.count(Query(xids={xid}))
        span = self.time_span
        return {
            "directory": str(self.directory),
            "schema": self.manifest.schema,
            "n_segments": self.n_segments,
            "n_records": self.n_records,
            "n_bytes": sum(s.n_bytes for s in self.manifest.segments),
            "n_nodes": len(nodes),
            "n_serials": len(serials),
            "time_min": span[0] if span else None,
            "time_max": span[1] if span else None,
            "counts_by_xid": dict(sorted(xids.items())),
            "content_hash": self.content_hash(),
            "meta": dict(self.manifest.meta),
        }

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def _next_segment_path(self) -> Path:
        sequence = self.manifest.next_seq
        self.manifest.next_seq = sequence + 1
        return self.directory / f"seg-{sequence:06d}.seg"

    def append_segment(
        self, records: Iterable[RawXidRecord]
    ) -> Optional[SegmentInfo]:
        """Write one batch as a segment and commit it; no-op when empty."""
        batch = list(records)
        if not batch:
            return None
        final = self._next_segment_path()
        temporary = final.with_suffix(".seg.tmp")
        info = write_segment(temporary, batch)
        temporary.rename(final)
        info = dataclasses.replace(info, name=final.name)
        self.manifest.segments.append(info)
        self.manifest.commit(self.directory)
        return info

    def append(
        self,
        records: Iterable[RawXidRecord],
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> List[SegmentInfo]:
        """Append a record stream as one segment per ``segment_records``."""
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        written: List[SegmentInfo] = []
        batch: List[RawXidRecord] = []
        for record in records:
            batch.append(record)
            if len(batch) >= segment_records:
                info = self.append_segment(batch)
                assert info is not None
                written.append(info)
                batch = []
        if batch:
            info = self.append_segment(batch)
            assert info is not None
            written.append(info)
        return written

    def ingest(
        self,
        source,
        *,
        workers: int = 1,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> List[SegmentInfo]:
        """Append everything a pipeline :class:`~repro.pipeline.sources.Source`
        holds, riding the shared (optionally parallel) extraction front-end."""
        from repro.pipeline.extract import iter_source_records

        return self.append(
            iter_source_records(source, workers=workers),
            segment_records=segment_records,
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def plan(self, query: Query = MATCH_ALL) -> Tuple[List[SegmentInfo], int]:
        """(segments that may match, number pruned by zone maps)."""
        from repro import obs

        candidates = [
            entry
            for entry in self.manifest.segments
            if query.matches_zone(entry.zone)
        ]
        pruned = len(self.manifest.segments) - len(candidates)
        obs.add("store.segments_planned", len(self.manifest.segments))
        obs.add("store.segments_pruned", pruned)
        return candidates, pruned

    def query(self, query: Query = MATCH_ALL) -> Iterator[RawXidRecord]:
        """Matching records in global timestamp order.

        Per-segment streams are already time-sorted.  Consecutive
        candidates whose time ranges do not overlap (the common case — a
        store built from one sorted stream cuts it into consecutive
        ranges) are simply chained; only genuinely overlapping runs pay
        for a heap merge.  Both resolve equal timestamps by segment
        (manifest) order — ``heapq.merge`` is stable and a chain keeps
        segment order outright — the same tie-break the pipeline's k-way
        extract merge uses.
        """
        import itertools

        candidates, _ = self.plan(query)
        groups: List[List[SegmentInfo]] = []
        for entry in candidates:
            if groups and entry.time_min >= groups[-1][-1].time_max:
                groups[-1].append(entry)  # ranges don't overlap: concatenate
            else:
                groups.append([entry])
        streams = [
            itertools.chain.from_iterable(
                iter_segment_records(self.directory / entry.name, query)
                for entry in group
            )
            for group in groups
        ]
        if len(streams) == 1:
            return iter(streams[0])
        return heapq.merge(*streams, key=operator.attrgetter("time"))

    def count(self, query: Query = MATCH_ALL) -> int:
        """Matching-record count without materializing record objects."""
        candidates, _ = self.plan(query)
        return sum(
            count_matches(self.directory / entry.name, query)
            for entry in candidates
        )

    def iter_records(self) -> Iterator[RawXidRecord]:
        """The full stream (the store-as-a-Source shape)."""
        return self.query(MATCH_ALL)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(
        self, *, threshold: int = DEFAULT_COMPACT_THRESHOLD
    ) -> int:
        """Merge adjacent small segments; returns how many were replaced.

        Only *adjacent* (manifest-order) runs merge, and the merged
        segment k-way-merges its inputs with the same stable tie-break
        :meth:`query` uses — replay order is invariant under compaction.
        """
        merged_away = 0
        entries = self.manifest.segments
        runs: List[List[SegmentInfo]] = []
        run: List[SegmentInfo] = []
        for entry in entries:
            if entry.n_records < threshold:
                run.append(entry)
            else:
                if len(run) > 1:
                    runs.append(run)
                run = []
        if len(run) > 1:
            runs.append(run)
        if not runs:
            return 0

        for run in runs:
            streams = [
                iter_segment_records(self.directory / entry.name)
                for entry in run
            ]
            combined = list(
                heapq.merge(*streams, key=operator.attrgetter("time"))
            )
            final = self._next_segment_path()
            temporary = final.with_suffix(".seg.tmp")
            info = write_segment(temporary, combined)
            temporary.rename(final)
            info = dataclasses.replace(info, name=final.name)

            position = self.manifest.segments.index(run[0])
            names = {entry.name for entry in run}
            self.manifest.segments = [
                entry
                for entry in self.manifest.segments
                if entry.name not in names
            ]
            self.manifest.segments.insert(position, info)
            self.manifest.garbage = sorted(names)
            self.manifest.commit(self.directory)

            for name in names:
                (self.directory / name).unlink(missing_ok=True)
            self.manifest.garbage = []
            self.manifest.commit(self.directory)
            merged_away += len(run)
        return merged_away


def _sequence_of(name: str) -> Optional[int]:
    """Segment sequence number from ``seg-XXXXXX.seg``; None if foreign."""
    if not (name.startswith("seg-") and name.endswith(".seg")):
        return None
    try:
        return int(name[4:-4])
    except ValueError:
        return None
