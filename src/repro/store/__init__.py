"""Columnar on-disk event store for coalesced XID records.

The persistent, indexed home of the merged record stream the staged
pipeline produces: immutable per-column numpy segments with zone-map
footers, one atomically-committed manifest, crash-safe append and
compaction, and a pushdown query layer that yields records in global
timestamp order — byte-identical to the pipeline stream the store was
built from.  See ``docs/store.md`` for the format and recovery
semantics.
"""

from repro.store.cursor import DEFAULT_WINDOW_SECONDS, ReplayCursor
from repro.store.manifest import MANIFEST_NAME, StoreManifest
from repro.store.query import MATCH_ALL, Query, gpu_serial
from repro.store.segment import (
    SCHEMA_VERSION,
    SegmentCorruptError,
    SegmentInfo,
    StoreError,
    StoreSchemaError,
)
from repro.store.source import SegmentShard, StoreSource
from repro.store.store import (
    DEFAULT_SEGMENT_RECORDS,
    EventStore,
)
from repro.store.writer import StoreWriter

__all__ = [
    "DEFAULT_SEGMENT_RECORDS",
    "DEFAULT_WINDOW_SECONDS",
    "EventStore",
    "ReplayCursor",
    "MANIFEST_NAME",
    "MATCH_ALL",
    "Query",
    "SCHEMA_VERSION",
    "SegmentCorruptError",
    "SegmentInfo",
    "SegmentShard",
    "StoreError",
    "StoreManifest",
    "StoreSchemaError",
    "StoreSource",
    "StoreWriter",
    "gpu_serial",
]
