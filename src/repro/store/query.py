"""Predicate pushdown: which records — and which *segments* — match.

A :class:`Query` is a conjunction of four optional predicates over the
coalesced-record schema: a closed time window, an XID set, a node set,
and a GPU-serial set (``"<node>/<pci-bus>"``, the identity the paper
uses to attribute log lines).  The same object answers two questions:

* :meth:`matches_zone` — can *any* record in a segment match, judged
  from the segment's zone map alone (min/max timestamp plus the XID /
  node / serial sets the segment footer records)?  Segments that cannot
  match are never opened, let alone decoded — that is the pushdown.
* :meth:`mask` — which rows of a decoded segment match, evaluated as
  one vectorized boolean mask over the column arrays.

Both answers are conservative in the right direction: a zone-map miss is
definitive (the segment holds no matching record), a zone-map hit only
means "must look inside".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple


def gpu_serial(node_id: str, pci_bus: str) -> str:
    """The store's GPU identity string: ``"<node>/<pci-bus>"``."""
    return f"{node_id}/{pci_bus}"


def _freeze(values: Optional[Iterable]) -> Optional[FrozenSet]:
    if values is None:
        return None
    frozen = frozenset(values)
    return frozen if frozen else None


@dataclass(frozen=True)
class Query:
    """A conjunction of predicates over stored XID records.

    ``time_range`` is a closed interval ``(start, end)`` in epoch
    seconds; either bound may be ``None`` for half-open windows.  The
    set predicates (``xids``, ``nodes``, ``serials``) each accept any
    iterable and mean "record's value is in this set"; ``None`` (or an
    empty iterable) leaves the dimension unconstrained.
    """

    time_range: Optional[Tuple[Optional[float], Optional[float]]] = None
    xids: Optional[FrozenSet[int]] = None
    nodes: Optional[FrozenSet[str]] = None
    serials: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "xids", _freeze(self.xids))
        object.__setattr__(self, "nodes", _freeze(self.nodes))
        object.__setattr__(self, "serials", _freeze(self.serials))
        if self.time_range is not None:
            start, end = self.time_range
            if start is None and end is None:
                object.__setattr__(self, "time_range", None)
            elif start is not None and end is not None and start > end:
                raise ValueError(
                    f"empty time range: start {start} > end {end}"
                )

    # ------------------------------------------------------------------

    @property
    def unconstrained(self) -> bool:
        """True when every record matches (the full-scan query)."""
        return (
            self.time_range is None
            and self.xids is None
            and self.nodes is None
            and self.serials is None
        )

    def matches_record(self, record) -> bool:
        """Row-at-a-time predicate (the streaming / non-numpy path)."""
        if self.time_range is not None:
            start, end = self.time_range
            if start is not None and record.time < start:
                return False
            if end is not None and record.time > end:
                return False
        if self.xids is not None and record.xid not in self.xids:
            return False
        if self.nodes is not None and record.node_id not in self.nodes:
            return False
        if self.serials is not None:
            if gpu_serial(record.node_id, record.pci_bus) not in self.serials:
                return False
        return True

    # ------------------------------------------------------------------
    # Pushdown against a zone map
    # ------------------------------------------------------------------

    def matches_zone(self, zone: Mapping[str, object]) -> bool:
        """Can any record under this zone map match?

        ``zone`` carries ``time_min`` / ``time_max`` plus the segment's
        ``xids`` / ``nodes`` / ``serials`` value sets (sequences).  A
        ``False`` here is a proof of emptiness — the segment is skipped
        without being read.
        """
        if self.time_range is not None:
            start, end = self.time_range
            if start is not None and float(zone["time_max"]) < start:
                return False
            if end is not None and float(zone["time_min"]) > end:
                return False
        if self.xids is not None:
            if self.xids.isdisjoint(int(x) for x in zone["xids"]):
                return False
        if self.nodes is not None:
            if self.nodes.isdisjoint(str(n) for n in zone["nodes"]):
                return False
        if self.serials is not None:
            if self.serials.isdisjoint(str(s) for s in zone["serials"]):
                return False
        return True

    # ------------------------------------------------------------------
    # Vectorized residual predicate over decoded columns
    # ------------------------------------------------------------------

    def mask(self, columns: "SegmentColumns"):
        """Boolean row mask over one decoded segment (numpy)."""
        import numpy as np

        n = len(columns.time)
        mask = np.ones(n, dtype=bool)
        if self.time_range is not None:
            start, end = self.time_range
            if start is not None:
                mask &= columns.time >= start
            if end is not None:
                mask &= columns.time <= end
        if self.xids is not None:
            mask &= np.isin(columns.xid, np.fromiter(self.xids, dtype=np.int64))
        if self.nodes is not None:
            codes = [
                code for code, name in enumerate(columns.node_dict)
                if name in self.nodes
            ]
            mask &= np.isin(columns.node, np.asarray(codes, dtype=np.int64))
        if self.serials is not None:
            allowed = set()
            node_index = {name: code for code, name in enumerate(columns.node_dict)}
            pci_index = {name: code for code, name in enumerate(columns.pci_dict)}
            for serial in self.serials:
                node_id, _, pci = serial.rpartition("/")
                node_code = node_index.get(node_id)
                pci_code = pci_index.get(pci)
                if node_code is not None and pci_code is not None:
                    allowed.add((node_code << 32) | pci_code)
            combined = (columns.node.astype(np.int64) << 32) | columns.pci.astype(
                np.int64
            )
            mask &= np.isin(
                combined, np.fromiter(allowed, dtype=np.int64, count=len(allowed))
            ) if allowed else np.zeros(n, dtype=bool)
        return mask

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "time_range": list(self.time_range) if self.time_range else None,
            "xids": sorted(self.xids) if self.xids else None,
            "nodes": sorted(self.nodes) if self.nodes else None,
            "serials": sorted(self.serials) if self.serials else None,
        }


#: The match-everything query (full scans pass this instead of ``None``
#: so call sites never branch).
MATCH_ALL = Query()


@dataclass
class SegmentColumns:
    """One decoded segment: column arrays plus the string dictionaries."""

    time: "object"  # np.ndarray[float64]
    xid: "object"  # np.ndarray[int64]
    node: "object"  # np.ndarray[int64] — codes into node_dict
    pci: "object"  # np.ndarray[int64] — codes into pci_dict
    msg: "object"  # np.ndarray[int64] — codes into msg_dict
    pid: "object"  # np.ndarray[int64] — -1 encodes None
    node_dict: Sequence[str] = field(default_factory=list)
    pci_dict: Sequence[str] = field(default_factory=list)
    msg_dict: Sequence[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.time)
