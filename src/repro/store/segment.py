"""Segment files: the store's immutable columnar unit.

One segment holds a batch of coalesced-record rows as per-column numpy
arrays, laid out so a reader can answer "could this segment match?"
without touching the columns:

```
+----------+----------------------------+-------------+----------+----------+
| MAGIC(8) | column arrays (.npy each)  | JSON footer | len(Q,8) | MAGIC(8) |
+----------+----------------------------+-------------+----------+----------+
```

The footer (read by seeking to the end) carries the schema version, the
per-column byte offsets, the string dictionaries (node ids, PCI buses,
messages — duplicate bursts make messages highly repetitive, so
dictionary coding is where the compression lives), and the segment's
**zone map**: min/max timestamp plus the exact XID / node / GPU-serial
value sets.  The query layer prunes on the zone map; only surviving
segments get their columns decoded.

Rows are stable-sorted by timestamp at write time, so a segment written
from an already time-ordered stream (the pipeline's k-way merge) stores
it verbatim — that is what makes store replay byte-identical to the
pipeline stream.  Writes go to a temporary name and are renamed into
place by the caller; a segment file that exists under its final name is
complete by construction.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.parsing import RawXidRecord
from repro.store.query import MATCH_ALL, Query, SegmentColumns, gpu_serial

#: Leading and trailing file marker ("repro xid segment, layout 1").
MAGIC = b"RXSEG001"

#: Schema identity embedded in every footer and the store manifest.  The
#: reader rejects anything whose major line differs — column meanings
#: changed, not just grew.
SCHEMA_VERSION = "repro.store/1"

#: Column order in the file body.  ``node``/``pci``/``msg`` are integer
#: codes into the footer's dictionaries; ``pid`` encodes ``None`` as -1.
COLUMN_NAMES = ("time", "xid", "node", "pci", "msg", "pid")

_LEN_STRUCT = struct.Struct("<Q")


class StoreError(Exception):
    """Base class for event-store failures."""


class StoreSchemaError(StoreError):
    """A segment or manifest carries an incompatible schema version."""


class SegmentCorruptError(StoreError):
    """A segment file fails structural validation (bad magic / footer)."""


@dataclass(frozen=True)
class SegmentInfo:
    """What the manifest records about one segment (zone map included)."""

    name: str
    n_records: int
    n_bytes: int
    sha256: str
    time_min: float
    time_max: float
    xids: Tuple[int, ...]
    nodes: Tuple[str, ...]
    serials: Tuple[str, ...]

    @property
    def zone(self) -> dict:
        return {
            "time_min": self.time_min,
            "time_max": self.time_max,
            "xids": self.xids,
            "nodes": self.nodes,
            "serials": self.serials,
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_records": self.n_records,
            "n_bytes": self.n_bytes,
            "sha256": self.sha256,
            "time_min": self.time_min,
            "time_max": self.time_max,
            "xids": list(self.xids),
            "nodes": list(self.nodes),
            "serials": list(self.serials),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentInfo":
        return cls(
            name=str(data["name"]),
            n_records=int(data["n_records"]),
            n_bytes=int(data["n_bytes"]),
            sha256=str(data["sha256"]),
            time_min=float(data["time_min"]),
            time_max=float(data["time_max"]),
            xids=tuple(int(x) for x in data["xids"]),
            nodes=tuple(str(n) for n in data["nodes"]),
            serials=tuple(str(s) for s in data["serials"]),
        )


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _encode_dictionary(values: Sequence[str]) -> Tuple[List[int], List[str]]:
    """Dictionary-code a string column: (codes, unique values in first-seen order)."""
    index: dict = {}
    codes: List[int] = []
    for value in values:
        code = index.get(value)
        if code is None:
            code = len(index)
            index[value] = code
        codes.append(code)
    return codes, list(index)


def encode_segment(records: Sequence[RawXidRecord]) -> bytes:
    """Serialize one batch of records into segment-file bytes.

    Rows are stable-sorted by timestamp, so equal-timestamp records keep
    their input order — the property that makes a store built from the
    pipeline's merged stream replay it identically.
    """
    import numpy as np

    if not records:
        raise ValueError("a segment must hold at least one record")
    rows = sorted(records, key=lambda r: r.time)  # sorted() is stable

    node_codes, node_dict = _encode_dictionary([r.node_id for r in rows])
    pci_codes, pci_dict = _encode_dictionary([r.pci_bus for r in rows])
    msg_codes, msg_dict = _encode_dictionary([r.message for r in rows])

    columns = {
        "time": np.array([r.time for r in rows], dtype=np.float64),
        "xid": np.array([r.xid for r in rows], dtype=np.int64),
        "node": np.array(node_codes, dtype=np.int64),
        "pci": np.array(pci_codes, dtype=np.int64),
        "msg": np.array(msg_codes, dtype=np.int64),
        "pid": np.array(
            [-1 if r.pid is None else r.pid for r in rows], dtype=np.int64
        ),
    }

    body = io.BytesIO()
    body.write(MAGIC)
    layout = {}
    for name in COLUMN_NAMES:
        offset = body.tell()
        np.save(body, columns[name], allow_pickle=False)
        layout[name] = {"offset": offset, "n_bytes": body.tell() - offset}

    serials = sorted(
        {gpu_serial(node_dict[n], pci_dict[p]) for n, p in zip(node_codes, pci_codes)}
    )
    footer = {
        "schema": SCHEMA_VERSION,
        "n_records": len(rows),
        "columns": layout,
        "dicts": {"node": node_dict, "pci": pci_dict, "msg": msg_dict},
        "zone": {
            "time_min": float(columns["time"][0]),
            "time_max": float(columns["time"][-1]),
            "xids": sorted({int(x) for x in columns["xid"]}),
            "nodes": sorted(set(node_dict)),
            "serials": serials,
        },
    }
    footer_bytes = json.dumps(footer, separators=(",", ":")).encode("utf-8")
    body.write(footer_bytes)
    body.write(_LEN_STRUCT.pack(len(footer_bytes)))
    body.write(MAGIC)
    return body.getvalue()


def write_segment(path: str | Path, records: Sequence[RawXidRecord]) -> SegmentInfo:
    """Write one segment file (flushed to disk) and describe it.

    The caller owns the naming protocol (write under a temporary name,
    rename into place); this function just produces a complete file.
    """
    import os

    path = Path(path)
    payload = encode_segment(records)
    with open(path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    footer = _parse_footer(payload)
    zone = footer["zone"]
    return SegmentInfo(
        name=path.name,
        n_records=int(footer["n_records"]),
        n_bytes=len(payload),
        sha256=hashlib.sha256(payload).hexdigest(),
        time_min=float(zone["time_min"]),
        time_max=float(zone["time_max"]),
        xids=tuple(int(x) for x in zone["xids"]),
        nodes=tuple(str(n) for n in zone["nodes"]),
        serials=tuple(str(s) for s in zone["serials"]),
    )


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _check_schema(schema: object) -> None:
    if schema != SCHEMA_VERSION:
        raise StoreSchemaError(
            f"unsupported store schema {schema!r} (this build reads "
            f"{SCHEMA_VERSION!r})"
        )


def _parse_footer(payload: bytes) -> dict:
    """Validate framing and return the footer of in-memory segment bytes."""
    tail = len(MAGIC) + _LEN_STRUCT.size
    if len(payload) < len(MAGIC) + tail or not payload.startswith(MAGIC):
        raise SegmentCorruptError("segment too short or bad leading magic")
    if not payload.endswith(MAGIC):
        raise SegmentCorruptError("segment missing trailing magic")
    (footer_len,) = _LEN_STRUCT.unpack(
        payload[-tail:-len(MAGIC)]
    )
    footer_end = len(payload) - tail
    if footer_len > footer_end - len(MAGIC):
        raise SegmentCorruptError("segment footer length out of range")
    try:
        footer = json.loads(payload[footer_end - footer_len:footer_end])
    except ValueError as error:
        raise SegmentCorruptError(f"segment footer is not JSON: {error}") from None
    _check_schema(footer.get("schema"))
    return footer


def read_footer(path: str | Path) -> dict:
    """Read a segment's footer (and validate framing) without its columns."""
    path = Path(path)
    tail = len(MAGIC) + _LEN_STRUCT.size
    with open(path, "rb") as handle:
        handle.seek(0, io.SEEK_END)
        size = handle.tell()
        if size < len(MAGIC) + tail:
            raise SegmentCorruptError(f"{path.name}: segment too short")
        handle.seek(0)
        if handle.read(len(MAGIC)) != MAGIC:
            raise SegmentCorruptError(f"{path.name}: bad leading magic")
        handle.seek(size - tail)
        trailer = handle.read(tail)
        if trailer[-len(MAGIC):] != MAGIC:
            raise SegmentCorruptError(f"{path.name}: missing trailing magic")
        (footer_len,) = _LEN_STRUCT.unpack(trailer[: _LEN_STRUCT.size])
        footer_end = size - tail
        if footer_len > footer_end - len(MAGIC):
            raise SegmentCorruptError(f"{path.name}: footer length out of range")
        handle.seek(footer_end - footer_len)
        try:
            footer = json.loads(handle.read(footer_len))
        except ValueError as error:
            raise SegmentCorruptError(
                f"{path.name}: footer is not JSON: {error}"
            ) from None
    _check_schema(footer.get("schema"))
    return footer


def read_columns(path: str | Path, footer: Optional[dict] = None) -> SegmentColumns:
    """Decode a segment's column arrays."""
    import numpy as np

    path = Path(path)
    if footer is None:
        footer = read_footer(path)
    arrays = {}
    with open(path, "rb") as handle:
        for name in COLUMN_NAMES:
            handle.seek(footer["columns"][name]["offset"])
            arrays[name] = np.load(handle, allow_pickle=False)
    dicts = footer["dicts"]
    return SegmentColumns(
        time=arrays["time"],
        xid=arrays["xid"],
        node=arrays["node"],
        pci=arrays["pci"],
        msg=arrays["msg"],
        pid=arrays["pid"],
        node_dict=list(dicts["node"]),
        pci_dict=list(dicts["pci"]),
        msg_dict=list(dicts["msg"]),
    )


def iter_segment_records(
    path: str | Path, query: Query = MATCH_ALL
) -> Iterator[RawXidRecord]:
    """Stream a segment's matching records in stored (time) order.

    Still a generator — consumers interleave segments lazily, so the
    full store is never resident.  The scan span covers the column
    decode plus the vectorized residual predicate (the I/O- and
    numpy-bound part); row materialization streams outside it.
    """
    from repro import obs

    path = Path(path)
    with obs.span("store.segment.scan", segment=path.name) as span:
        columns = read_columns(path)
        if query.unconstrained:
            indices: object = range(len(columns))
        else:
            indices = query.mask(columns).nonzero()[0].tolist()
        span.add("store.segments_opened", 1)
        span.add("store.rows_scanned", len(columns))
        span.add("store.rows_matched", len(indices))  # type: ignore[arg-type]
    yield from decode_records(columns, query, indices=indices)


def decode_records(
    columns: SegmentColumns, query: Query = MATCH_ALL, indices=None
) -> Iterator[RawXidRecord]:
    """Materialize rows back into :class:`RawXidRecord` objects.

    The residual predicate runs vectorized first; only surviving rows pay
    the per-object construction cost.  ``indices`` lets a caller that
    already evaluated the mask (the scan span above) pass the surviving
    row positions instead of paying for it twice.
    """
    if indices is None:
        if query.unconstrained:
            indices = range(len(columns))
        else:
            indices = query.mask(columns).nonzero()[0].tolist()

    times = columns.time.tolist()
    xids = columns.xid.tolist()
    node_codes = columns.node.tolist()
    pci_codes = columns.pci.tolist()
    msg_codes = columns.msg.tolist()
    pids = columns.pid.tolist()
    node_dict = columns.node_dict
    pci_dict = columns.pci_dict
    msg_dict = columns.msg_dict

    for i in indices:
        pid = pids[i]
        yield RawXidRecord(
            time=times[i],
            node_id=node_dict[node_codes[i]],
            pci_bus=pci_dict[pci_codes[i]],
            xid=xids[i],
            message=msg_dict[msg_codes[i]],
            pid=None if pid < 0 else pid,
        )


def count_matches(path: str | Path, query: Query = MATCH_ALL) -> int:
    """How many rows of one segment match, without materializing records."""
    footer = read_footer(path)
    if query.unconstrained:
        return int(footer["n_records"])
    columns = read_columns(path, footer)
    return int(query.mask(columns).sum())
