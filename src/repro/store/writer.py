"""Pipeline consumer that persists the record stream into an event store.

Attach a :class:`StoreWriter` to any :class:`~repro.pipeline.engine.IngestPipeline`
and every record the pipeline observes lands in the store: batch builds
flush a segment per ``segment_records``, live tails additionally flush
whatever has accumulated every ``flush_seconds`` of wall time so a
long-lived ``repro-delta serve`` leaves durable history behind even at
low event rates.  ``close()`` (called by the pipeline's ``finally``)
flushes the remainder — no records are lost on a clean stop.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro import obs
from repro.core.parsing import RawXidRecord
from repro.pipeline.engine import Consumer
from repro.store.store import DEFAULT_SEGMENT_RECORDS, EventStore


class StoreWriter(Consumer):
    """Buffer records and append them to an :class:`EventStore` in segments."""

    def __init__(
        self,
        store: EventStore,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        flush_seconds: Optional[float] = None,
        counters=None,
    ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.store = store
        self.segment_records = segment_records
        self.flush_seconds = flush_seconds
        self.records_written = 0
        self.segments_written = 0
        self.flushes = 0
        self.flush_seconds_total = 0.0
        #: Optional :class:`repro.obs.CounterSet` fed per flush
        #: (``store.flushes`` / ``store.flush_seconds`` /
        #: ``store.records_written``) for ``/metrics`` self-observability.
        self.counters = counters
        self._buffer: List[RawXidRecord] = []
        self._last_flush = time.monotonic()

    def on_record(self, record: RawXidRecord) -> None:
        self._buffer.append(record)
        if len(self._buffer) >= self.segment_records:
            self.flush()
        elif (
            self.flush_seconds is not None
            and time.monotonic() - self._last_flush >= self.flush_seconds
        ):
            self.flush()

    def flush(self) -> None:
        """Write the buffered records out as one segment (if any)."""
        start = time.monotonic()
        self._last_flush = start
        if not self._buffer:
            return
        info = self.store.append_segment(self._buffer)
        n_written = 0
        if info is not None:
            n_written = info.n_records
            self.records_written += info.n_records
            self.segments_written += 1
        self._buffer = []
        elapsed = time.monotonic() - start
        self.flushes += 1
        self.flush_seconds_total += elapsed
        if self.counters is not None:
            self.counters.inc("store.flushes")
            self.counters.inc("store.flush_seconds", elapsed)
            if n_written:
                self.counters.inc("store.records_written", n_written)
        obs.add("store.flushes")
        obs.add("store.flush_seconds", elapsed)

    def close(self) -> None:
        self.flush()
