"""The store manifest: which segments exist, in what logical order.

One JSON file (``manifest.json``) is the store's single source of truth.
Every mutation builds the next manifest in memory and commits it with
write-temp + ``os.replace`` — readers observe either the old state or
the new one, never a torn file.  Two bookkeeping lists make every
multi-file operation crash-safe:

* a segment file is written under a ``*.tmp`` name and renamed to its
  final ``*.seg`` name *before* the manifest that references it is
  committed — a crash in between leaves a complete orphan segment that
  recovery adopts (rename is atomic, so a ``.seg`` name implies a
  complete file), while a crash mid-write leaves only a ``.tmp`` that
  recovery deletes;
* compaction commits the merged segment and a ``garbage`` list naming
  the replaced files in one manifest write, deletes them, then clears
  the list — a crash in between leaves files that recovery knows to
  delete rather than re-adopt.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.store.segment import SCHEMA_VERSION, SegmentInfo, StoreSchemaError

MANIFEST_NAME = "manifest.json"


@dataclass
class StoreManifest:
    """In-memory image of ``manifest.json``."""

    schema: str = SCHEMA_VERSION
    next_seq: int = 1
    meta: Dict[str, object] = field(default_factory=dict)
    segments: List[SegmentInfo] = field(default_factory=list)
    garbage: List[str] = field(default_factory=list)

    @property
    def n_records(self) -> int:
        return sum(s.n_records for s in self.segments)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "next_seq": self.next_seq,
            "meta": dict(self.meta),
            "segments": [s.to_dict() for s in self.segments],
            "garbage": list(self.garbage),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreManifest":
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise StoreSchemaError(
                f"unsupported manifest schema {schema!r} (this build reads "
                f"{SCHEMA_VERSION!r})"
            )
        return cls(
            schema=str(schema),
            next_seq=int(data.get("next_seq", 1)),
            meta=dict(data.get("meta") or {}),
            segments=[SegmentInfo.from_dict(s) for s in data.get("segments", [])],
            garbage=[str(name) for name in data.get("garbage", [])],
        )

    # ------------------------------------------------------------------

    @classmethod
    def load(cls, directory: str | Path) -> "StoreManifest":
        path = Path(directory) / MANIFEST_NAME
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def commit(self, directory: str | Path) -> None:
        """Atomically replace ``manifest.json`` with this state."""
        directory = Path(directory)
        final = directory / MANIFEST_NAME
        temporary = directory / (MANIFEST_NAME + ".tmp")
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, final)
