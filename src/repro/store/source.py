"""The store as a pipeline source: segments are shards.

:class:`StoreSource` lets everything downstream of extraction — the
coalesce stages, the study, every consumer — read from a built store
exactly the way it reads from raw log files, except that "extraction"
is now a columnar decode instead of a regex scan.  Each segment is one
picklable shard (a path plus the query), so ``workers > 1`` fans decode
across processes; segments are internally time-ordered, so the standard
k-way merge applies and ties break by shard order = manifest order =
the store's own replay order.  An attached :class:`~repro.store.query.Query`
is pushed down: pruned segments never become shards at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence, Union

from repro.core.parsing import RawXidRecord
from repro.pipeline.sources import Source
from repro.store.query import MATCH_ALL, Query
from repro.store.segment import iter_segment_records
from repro.store.store import EventStore


@dataclass(frozen=True)
class SegmentShard:
    """One segment file plus the residual predicate; picklable."""

    path: Path
    query: Query = MATCH_ALL

    def iter_records(self) -> Iterator[RawXidRecord]:
        return iter_segment_records(self.path, self.query)


class StoreSource(Source):
    """Read a built :class:`~repro.store.store.EventStore` as a pipeline source."""

    parallelizable = True
    merge_by_time = True
    reiterable = True

    def __init__(
        self,
        store: Union[EventStore, str, Path],
        *,
        query: Query = MATCH_ALL,
    ) -> None:
        if not isinstance(store, EventStore):
            store = EventStore.open(store)
        self.store = store
        self.query = query

    def shards(self) -> Sequence[SegmentShard]:
        candidates, _ = self.store.plan(self.query)
        return [
            SegmentShard(self.store.directory / entry.name, self.query)
            for entry in candidates
        ]
