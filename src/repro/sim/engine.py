"""The what-if engine: one training job versus the measured failure process.

A run places a distributed training job on a Delta-shaped inventory (via
the real :class:`~repro.slurm.scheduler.GpuScheduler`, so node packing and
partition routing match the substrate), samples the allocation's share of
the calibrated failure process, and advances a discrete-event loop until
the job's useful work completes:

* progress is *volatile* until a checkpoint write commits it;
* a fatal chain (or any inoperable GPU) interrupts the job: volatile
  progress becomes rework, and the recovery policy decides what the job
  waits for — restore only, node repair, a hot-spare swap, or an elastic
  restart on the surviving nodes;
* exponential arrivals are re-sampled whenever a policy mutates the
  allocation's rate (offender eviction, shrink/regrow) — exact, because
  the process is memoryless.

Everything stochastic draws from one caller-supplied generator, so a run
is a pure function of ``(config, rng stream)`` — the property the sweep
runner's worker-count-independence guarantee rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.gpu import GpuModel
from repro.cluster.inventory import DeltaShape, build_delta_cluster
from repro.faults.calibration import CalibrationProfile
from repro.sim.events import EventKind, EventQueue, SimEvent
from repro.sim.failures import AllocationFailureState, FailureDraw, FailureModel
from repro.sim.metrics import RunMetrics
from repro.sim.policies import RecoveryPolicy, resolve_interval
from repro.slurm.job import JobSpec
from repro.slurm.scheduler import PARTITIONS, GpuScheduler
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TrainingJobConfig:
    """The job under study."""

    n_gpus: int = 256
    #: Ideal compute the job needs, in wall-hours at full allocation.
    useful_hours: float = 720.0
    partition: str = "a100"

    def __post_init__(self) -> None:
        check_positive("useful_hours", self.useful_hours)
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if self.partition not in PARTITIONS:
            raise ValueError(
                f"unknown partition {self.partition!r}; known: {sorted(PARTITIONS)}"
            )


@dataclass(frozen=True)
class SimTimings:
    """Fixed costs of the recovery machinery (hours)."""

    checkpoint_cost_hours: float = 0.1
    restore_cost_hours: float = 0.25
    #: Failure detection + rescheduling latency before recovery begins.
    detection_hours: float = 0.1
    spare_swap_hours: float = 0.05

    def __post_init__(self) -> None:
        check_positive("checkpoint_cost_hours", self.checkpoint_cost_hours)
        check_positive("restore_cost_hours", self.restore_cost_hours)
        if self.detection_hours < 0 or self.spare_swap_hours < 0:
            raise ValueError("detection/swap delays must be non-negative")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one replica needs (picklable: policies are plain data)."""

    profile: CalibrationProfile
    job: TrainingJobConfig
    policy: RecoveryPolicy
    timings: SimTimings = SimTimings()
    include_workload_mmu: bool = False
    #: Abort incomplete runs at ``useful_hours * max_wall_factor`` (the
    #: no-checkpoint baseline on a long job would otherwise never return).
    max_wall_factor: float = 50.0


# ---------------------------------------------------------------------------
# Placement on the Delta inventory
# ---------------------------------------------------------------------------


@lru_cache(maxsize=32)
def _reference_population_gpus(hopper: bool) -> int:
    """GPU population the offender lottery normalizes by (848 / 320)."""
    cluster = build_delta_cluster()
    if hopper:
        return len(cluster.gpus_of_model(GpuModel.H100))
    return len(cluster.gpus_of_model(GpuModel.A40, GpuModel.A100))


@lru_cache(maxsize=32)
def allocate_job(n_gpus: int, partition: str) -> Tuple[int, ...]:
    """Per-node GPU counts of the job's allocation, via the real scheduler.

    The stock Delta shape is grown (whole nodes of the partition's primary
    kind) when a job outsizes the partition, so what-ifs can study fleets
    larger than the machine the paper measured.
    """
    shape = DeltaShape()
    per_node = {"a40": 4, "a100": 4, "h100": 4}[partition]
    pool = {
        "a40": shape.a40_x4_nodes * 4,
        "a100": shape.a100_x4_nodes * 4 + shape.a100_x8_nodes * 8,
        "h100": shape.gh200_nodes * 4,
    }[partition]
    deficit = n_gpus + 4 * per_node - pool  # headroom: a few spare nodes
    if deficit > 0:
        extra = math.ceil(deficit / per_node)
        if partition == "a40":
            shape = replace(shape, a40_x4_nodes=shape.a40_x4_nodes + extra)
        elif partition == "a100":
            shape = replace(shape, a100_x4_nodes=shape.a100_x4_nodes + extra)
        else:
            shape = replace(shape, gh200_nodes=shape.gh200_nodes + extra)
    cluster = build_delta_cluster(shape)
    spec = JobSpec(
        job_id=1,
        name="llm_pretrain",
        user="sim",
        submit_time=0.0,
        requested_gpus=n_gpus,
        duration=1.0,
        partition=partition,
        is_ml=True,
    )
    schedule = GpuScheduler(cluster).schedule([spec], window_seconds=1.0e9)
    record = schedule.jobs[0]
    if record.n_gpus < n_gpus:
        raise RuntimeError(
            f"could not place {n_gpus} GPUs on partition {partition!r}"
        )
    counts: dict = {}
    for node_id, _ in record.gpus:
        counts[node_id] = counts.get(node_id, 0) + 1
    return tuple(sorted(counts.values(), reverse=True))


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

_RUN, _WRITE, _DOWN, _STALL = "run", "write", "down", "stall"


class WhatIfEngine:
    """Simulate one training run; ``run()`` returns its :class:`RunMetrics`."""

    def __init__(self, config: SimulationConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.model = FailureModel(
            config.profile, include_workload_mmu=config.include_workload_mmu
        )
        self.node_sizes: Tuple[int, ...] = allocate_job(
            config.job.n_gpus, config.job.partition
        )
        self.total_gpus = sum(self.node_sizes)
        hopper = "h100" in config.profile.name
        self.state: AllocationFailureState = self.model.allocation_state(
            n_nodes=len(self.node_sizes),
            n_gpus=self.total_gpus,
            population_gpus=_reference_population_gpus(hopper),
            rng=rng,
        )
        fatal_rate = self.state.fatal_rate()
        self.interval = resolve_interval(
            config.policy,
            checkpoint_cost_hours=config.timings.checkpoint_cost_hours,
            restore_cost_hours=config.timings.restore_cost_hours,
            mtbf_hours=(1.0 / fatal_rate) if fatal_rate > 0 else float("inf"),
        )

    # -- event loop ------------------------------------------------------

    def run(self) -> RunMetrics:
        cfg = self.config
        timings = cfg.timings
        useful = cfg.job.useful_hours
        max_wall = useful * cfg.max_wall_factor + 100.0

        q = EventQueue()
        clock = 0.0
        durable = 0.0
        volatile = 0.0  # progress since the last durable commit (job-hours)
        pending_commit = 0.0
        phase = _STALL
        seg_start = 0.0
        rate = 1.0
        segment = 0
        fail_gen = 0
        resume_at = 0.0
        failure_started: Optional[float] = None
        spares_free = cfg.policy.n_spares
        active_gpus = self.total_gpus
        drained: List[int] = []  # sizes of elastically-removed nodes

        # Accumulators.
        ckpt_write = rework = restore_spent = repair_wait = 0.0
        gpu_hours = 0.0
        recoveries: List[float] = []
        n_root = n_interrupt = n_inoperable = n_ckpt = n_swaps = 0
        completed = False

        def segment_progress(t: float) -> float:
            return (t - seg_start) * rate if phase == _RUN else 0.0

        def unsafe_progress(t: float) -> float:
            """Progress that an interruption right now would destroy."""
            return volatile + pending_commit + segment_progress(t)

        def schedule_failure(t: float) -> None:
            gap = self.state.next_gap_hours(self.rng)
            if math.isfinite(gap):
                q.schedule(t + gap, EventKind.FAILURE, generation=fail_gen)

        def reschedule_failures(t: float) -> None:
            nonlocal fail_gen
            fail_gen += 1
            schedule_failure(t)

        def start_segment(t: float) -> None:
            nonlocal phase, seg_start, rate, segment
            rate = active_gpus / self.total_gpus
            if rate <= 0.0:
                phase = _STALL
                return
            phase = _RUN
            seg_start = t
            segment += 1
            remaining = useful - durable - volatile
            t_done = t + remaining / rate
            t_ckpt = t + self.interval
            if t_done <= t_ckpt:
                q.schedule(t_done, EventKind.JOB_COMPLETE, generation=segment)
            else:
                q.schedule(t_ckpt, EventKind.CHECKPOINT_WRITE, generation=segment)

        def begin_recovery(t: float, ready: float) -> None:
            nonlocal resume_at
            resume_at = max(resume_at, ready)
            q.schedule(resume_at, EventKind.RESTORE_DONE)

        def interrupt(t: float, draw: FailureDraw) -> None:
            """A running (or mid-write) job is taken down by ``draw``."""
            nonlocal phase, segment, volatile, pending_commit, rework
            nonlocal failure_started, n_interrupt
            n_interrupt += 1
            rework += unsafe_progress(t)
            volatile = 0.0
            pending_commit = 0.0
            if not cfg.policy.checkpointing:
                # Restart from zero: durable progress never existed.
                pass
            segment += 1  # invalidate the segment's scheduled events
            phase = _DOWN
            failure_started = t
            ready = t + timings.detection_hours
            ready += handle_node_down(t, draw)
            ready += timings.restore_cost_hours
            begin_recovery(t, ready)

        def handle_node_down(t: float, draw: FailureDraw) -> float:
            """Policy-specific reaction to an inoperable GPU.

            Returns the extra delay (beyond detection/restore) the recovery
            must absorb.  Overlapping repairs are accounted at face value.
            """
            nonlocal spares_free, n_swaps, repair_wait, active_gpus, n_inoperable
            if not draw.inoperable:
                return 0.0
            n_inoperable += 1
            policy = cfg.policy
            if policy.elastic:
                if self.state.n_active_nodes > 0:
                    size = self.node_sizes[
                        int(self.rng.integers(0, len(self.node_sizes)))
                    ]
                    size = min(size, active_gpus)
                    drained.append(size)
                    active_gpus -= size
                    self.state.n_active_nodes -= 1
                    if draw.offender_index is not None:
                        self.state.suspend_offender(draw.offender_index)
                    q.schedule(
                        t + draw.repair_hours,
                        EventKind.DRAIN_END,
                        payload=draw.offender_index,
                    )
                    reschedule_failures(t)
                return 0.0
            if policy.n_spares > 0 and spares_free > 0:
                spares_free -= 1
                n_swaps += 1
                q.schedule(t + timings.spare_swap_hours, EventKind.SPARE_SWAP)
                if draw.offender_index is not None:
                    # The defective part leaves the allocation with its node.
                    self.state.evict_offender(draw.offender_index)
                    reschedule_failures(t)
                q.schedule(t + draw.repair_hours, EventKind.DRAIN_END)
                return timings.spare_swap_hours
            # No spare: the job blocks on the in-place repair.
            repair_wait += draw.repair_hours
            return draw.repair_hours

        schedule_failure(0.0)
        start_segment(0.0)

        while True:
            event = q.pop()
            if event is None:
                break  # nothing can happen anymore (e.g. stalled empty fleet)
            t = event.time
            if t > max_wall:
                clock = max_wall
                break
            gpu_hours += active_gpus * (t - clock)
            clock = t
            kind = event.kind

            if kind is EventKind.FAILURE:
                if event.generation != fail_gen:
                    continue
                draw = self.state.draw(self.rng)
                n_root += 1
                schedule_failure(t)
                if phase in (_RUN, _WRITE):
                    if draw.interrupts:
                        interrupt(t, draw)
                elif phase in (_DOWN, _STALL) and draw.inoperable:
                    # The outage compounds; recovery pushes out further.
                    extra = handle_node_down(t, draw)
                    if phase == _DOWN:
                        begin_recovery(
                            t,
                            t
                            + timings.detection_hours
                            + extra
                            + timings.restore_cost_hours,
                        )

            elif kind is EventKind.CHECKPOINT_WRITE:
                if event.generation != segment or phase != _RUN:
                    continue
                pending_commit = volatile + segment_progress(t)
                volatile = 0.0
                phase = _WRITE
                q.schedule(
                    t + timings.checkpoint_cost_hours,
                    EventKind.CHECKPOINT_DONE,
                    generation=segment,
                )

            elif kind is EventKind.CHECKPOINT_DONE:
                if event.generation != segment or phase != _WRITE:
                    continue
                durable += pending_commit
                pending_commit = 0.0
                ckpt_write += timings.checkpoint_cost_hours
                n_ckpt += 1
                start_segment(t)

            elif kind is EventKind.RESTORE_DONE:
                if phase != _DOWN:
                    continue
                if t < resume_at - 1e-12:
                    continue  # superseded; a later RESTORE_DONE is queued
                if active_gpus <= 0:
                    phase = _STALL  # every node is drained: wait for repairs
                    continue
                restore_spent += timings.restore_cost_hours
                if failure_started is not None:
                    recoveries.append(t - failure_started)
                    failure_started = None
                start_segment(t)

            elif kind is EventKind.DRAIN_END:
                if cfg.policy.elastic:
                    if drained:
                        size = drained.pop()
                        active_gpus += size
                        self.state.n_active_nodes += 1
                    if event.payload is not None:
                        self.state.resume_offender(event.payload)
                    reschedule_failures(t)
                    if phase == _RUN:
                        # Regrow: break the segment at the old rate, resume
                        # at the new one (in-memory progress survives).
                        volatile += segment_progress(t)
                        start_segment(t)
                    elif phase == _STALL:
                        phase = _DOWN
                        begin_recovery(t, t + timings.restore_cost_hours)
                elif cfg.policy.n_spares > 0:
                    spares_free += 1  # repaired node rejoins the spare pool

            elif kind is EventKind.SPARE_SWAP:
                continue  # bookkeeping only; delay is folded into recovery

            elif kind is EventKind.JOB_COMPLETE:
                if event.generation != segment or phase != _RUN:
                    continue
                durable += volatile + segment_progress(t)
                volatile = 0.0
                completed = True
                break

        downtime = math.fsum(recoveries)
        return RunMetrics(
            completed=completed,
            wall_hours=clock,
            useful_hours=durable if completed else durable,
            n_gpus=self.total_gpus,
            checkpoint_write_hours=ckpt_write,
            rework_hours=rework,
            restore_hours=restore_spent,
            repair_wait_hours=repair_wait,
            downtime_hours=downtime,
            gpu_hours_allocated=gpu_hours,
            n_root_events=n_root,
            n_interruptions=n_interrupt,
            n_inoperable=n_inoperable,
            n_checkpoints=n_ckpt,
            n_spare_swaps=n_swaps,
            offenders_drawn=len(self.state.offenders),
            offenders_evicted=self.state.offenders_evicted,
            ettr_hours=(downtime / len(recoveries)) if recoveries else 0.0,
        )


def simulate_training_run(
    config: SimulationConfig,
    *,
    seed: int = 7,
    replica: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> RunMetrics:
    """One replica, on its own named stream of ``seed``.

    The stream path includes profile, policy, and replica index, so adding
    replicas (or running them on any worker) never perturbs existing ones.
    """
    if rng is None:
        rng = spawn_rng(
            seed,
            "sim",
            config.profile.name,
            config.policy.name,
            str(replica),
        )
    return WhatIfEngine(config, rng).run()
