"""Named what-if scenarios: a profile plus a job, ready to sweep.

Presets pair the two calibrated fleets (855-day Ampere, 240-day Hopper)
with representative long-training jobs, plus the paper's Section 5.5
counterfactuals rebuilt generatively:

* ``a100-512-no-xid79`` — the "no fallen-off-the-bus" world: Xid 79 is
  removed from the generative model (not just excluded after the fact);
* ``a100-512-burned-in`` — defective parts never shipped: offender skew
  deleted and the offender-bound volume with it.

A scenario fixes profile + job; the *policy* stays a free axis so sweeps
can compare recovery strategies within a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.faults.calibration import (
    AMPERE_CALIBRATION,
    H100_CALIBRATION,
    CalibrationProfile,
)
from repro.faults.variants import burned_in_profile, profile_variant
from repro.faults.xid import Xid
from repro.sim.engine import SimTimings, SimulationConfig, TrainingJobConfig
from repro.sim.policies import RecoveryPolicy, parse_policy


@dataclass(frozen=True)
class Scenario:
    """A preset: who trains what, on which measured (or altered) fleet."""

    name: str
    description: str
    #: Thunk, not a profile: variants are built lazily so importing this
    #: module never pays for counterfactual reconstruction.
    profile_factory: Callable[[], CalibrationProfile] = field(repr=False)
    job: TrainingJobConfig = TrainingJobConfig()
    timings: SimTimings = SimTimings()
    include_workload_mmu: bool = False

    def config(
        self,
        policy: RecoveryPolicy,
        *,
        n_gpus: Optional[int] = None,
        useful_hours: Optional[float] = None,
    ) -> SimulationConfig:
        """Materialize a runnable config (optionally overriding the job)."""
        job = self.job
        if n_gpus is not None or useful_hours is not None:
            from dataclasses import replace

            job = replace(
                job,
                **{
                    k: v
                    for k, v in (
                        ("n_gpus", n_gpus),
                        ("useful_hours", useful_hours),
                    )
                    if v is not None
                },
            )
        return SimulationConfig(
            profile=self.profile_factory(),
            job=job,
            policy=policy,
            timings=self.timings,
            include_workload_mmu=self.include_workload_mmu,
        )


def _no_xid79_ampere() -> CalibrationProfile:
    return profile_variant(
        AMPERE_CALIBRATION,
        name_suffix="no-xid79",
        drop_xids={Xid.FALLEN_OFF_BUS: True},
    )


def _burned_in_ampere() -> CalibrationProfile:
    return burned_in_profile(AMPERE_CALIBRATION)


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="a100-512",
            description="512-GPU month-long pretrain on the Ampere fleet",
            profile_factory=lambda: AMPERE_CALIBRATION,
            job=TrainingJobConfig(n_gpus=512, useful_hours=720.0, partition="a100"),
        ),
        Scenario(
            name="a100-256",
            description="256-GPU two-week pretrain on the Ampere fleet",
            profile_factory=lambda: AMPERE_CALIBRATION,
            job=TrainingJobConfig(n_gpus=256, useful_hours=336.0, partition="a100"),
        ),
        Scenario(
            name="h100-256",
            description="256-GPU two-week pretrain on the Hopper fleet",
            profile_factory=lambda: H100_CALIBRATION,
            job=TrainingJobConfig(n_gpus=256, useful_hours=336.0, partition="h100"),
        ),
        Scenario(
            name="h100-512",
            description="512-GPU month-long pretrain on the Hopper fleet",
            profile_factory=lambda: H100_CALIBRATION,
            job=TrainingJobConfig(n_gpus=512, useful_hours=720.0, partition="h100"),
        ),
        Scenario(
            name="a100-512-no-xid79",
            description=(
                "Counterfactual: Ampere fleet with Xid 79 (fallen off the "
                "bus) removed from the generative model"
            ),
            profile_factory=_no_xid79_ampere,
            job=TrainingJobConfig(n_gpus=512, useful_hours=720.0, partition="a100"),
        ),
        Scenario(
            name="a100-512-burned-in",
            description=(
                "Counterfactual: Ampere fleet where burn-in caught every "
                "defective part (offender skew removed, volume with it)"
            ),
            profile_factory=_burned_in_ampere,
            job=TrainingJobConfig(n_gpus=512, useful_hours=720.0, partition="a100"),
        ),
    )
}


def list_scenarios() -> Tuple[Tuple[str, str], ...]:
    """(name, description) pairs, in registration order."""
    return tuple((s.name, s.description) for s in SCENARIOS.values())


def build_scenario(
    name: str,
    policy: "RecoveryPolicy | str",
    *,
    n_gpus: Optional[int] = None,
    useful_hours: Optional[float] = None,
) -> SimulationConfig:
    """Resolve a scenario name + policy (object or spec) into a config."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r}; known: {known}") from None
    if isinstance(policy, str):
        policy = parse_policy(policy)
    return scenario.config(policy, n_gpus=n_gpus, useful_hours=useful_hours)
