"""Per-run outcomes and sweep aggregation.

``RunMetrics`` is the engine's verdict on one Monte-Carlo replica;
``aggregate_metrics`` reduces a replica list to mean ± 95 % half-widths in
a fixed field order, so a sweep's aggregate is a pure function of the
replica set — independent of worker count or completion order.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class RunMetrics:
    """Outcome of one simulated training run (hours unless noted)."""

    completed: bool
    wall_hours: float
    useful_hours: float          # work the job needed (GPU-scaled job-hours)
    n_gpus: int
    #: Overhead split: where the non-useful wall time went.
    checkpoint_write_hours: float
    rework_hours: float          # progress recomputed after interruptions
    restore_hours: float
    repair_wait_hours: float     # blocked on node repair (no spare available)
    downtime_hours: float        # total interrupted wall time (detect+wait+restore)
    #: Allocated capacity actually consumed (integrates elastic shrink).
    gpu_hours_allocated: float
    #: Event counts.
    n_root_events: int
    n_interruptions: int
    n_inoperable: int
    n_checkpoints: int
    n_spare_swaps: int
    offenders_drawn: int
    offenders_evicted: int
    #: Mean effective time-to-recovery over interruptions (0 if none).
    ettr_hours: float

    @property
    def goodput(self) -> float:
        """Fraction of wall time spent on work that counted."""
        if self.wall_hours <= 0:
            return 0.0
        return self.useful_hours / self.wall_hours

    @property
    def wasted_gpu_hours(self) -> float:
        """Allocated GPU-hours that produced no retained progress."""
        return max(0.0, self.gpu_hours_allocated - self.useful_hours * self.n_gpus)

    def to_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["goodput"] = self.goodput
        out["wasted_gpu_hours"] = self.wasted_gpu_hours
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunMetrics":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


def mean_ci95(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and normal-approximation 95 % half-width."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = math.fsum(values) / n
    if n == 1:
        return mean, 0.0
    var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, 1.96 * math.sqrt(var / n)


#: Aggregated fields, in report order.
AGGREGATE_FIELDS: Tuple[str, ...] = (
    "goodput",
    "wall_hours",
    "ettr_hours",
    "wasted_gpu_hours",
    "checkpoint_write_hours",
    "rework_hours",
    "restore_hours",
    "repair_wait_hours",
    "downtime_hours",
    "n_root_events",
    "n_interruptions",
    "n_checkpoints",
    "n_spare_swaps",
    "offenders_drawn",
    "offenders_evicted",
)


def aggregate_metrics(runs: Sequence[RunMetrics]) -> Dict[str, object]:
    """Mean ± CI per field, plus the completion fraction, as a flat dict."""
    if not runs:
        raise ValueError("cannot aggregate an empty replica list")
    rows: List[Dict[str, object]] = [run.to_dict() for run in runs]
    out: Dict[str, object] = {"replicas": len(runs)}
    out["completed_fraction"] = math.fsum(
        1.0 for run in runs if run.completed
    ) / len(runs)
    for name in AGGREGATE_FIELDS:
        mean, ci = mean_ci95([float(row[name]) for row in rows])
        out[name] = {"mean": mean, "ci95": ci}
    return out
