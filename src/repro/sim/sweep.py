"""Parallel Monte-Carlo sweeps over the what-if engine.

Determinism contract: replica ``i`` of a sweep draws from the stream
``spawn_rng(seed, "sim", profile, policy, str(i))`` regardless of which
worker runs it, and aggregation consumes replicas sorted by index — so
``run_sweep(config, workers=K)`` returns identical aggregates for every
``K``.  The same property makes caching sound: results are keyed by a
hash of the sweep's *semantic* config (scenario, policy, job overrides,
seed — everything except the replica count), so growing ``replicas`` or
re-running after an interruption reuses every replica already on disk.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.results.artifact import RunManifest
from repro.sim.engine import SimulationConfig, simulate_training_run
from repro.sim.metrics import RunMetrics, aggregate_metrics
from repro.sim.scenarios import build_scenario


@dataclass(frozen=True)
class SweepConfig:
    """A sweep, described entirely by plain data (picklable, hashable).

    Workers rebuild the heavy :class:`SimulationConfig` from these fields
    themselves; only strings and numbers cross the process boundary.
    """

    scenario: str = "a100-512"
    policy: str = "ckpt"
    replicas: int = 32
    seed: int = 7
    n_gpus: Optional[int] = None
    useful_hours: Optional[float] = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")

    def config_hash(self) -> str:
        """Cache key: every field that changes a replica's outcome.

        ``replicas`` is deliberately excluded — replica ``i`` is the same
        run whether the sweep asks for 10 or 10 000 of them, which is what
        makes partial sweeps resumable and growable.
        """
        payload = asdict(self)
        payload.pop("replicas")
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def build(self) -> SimulationConfig:
        return build_scenario(
            self.scenario,
            self.policy,
            n_gpus=self.n_gpus,
            useful_hours=self.useful_hours,
        )


@dataclass(frozen=True)
class SweepResult:
    """Aggregated sweep outcome plus per-replica detail."""

    config: SweepConfig
    config_hash: str
    runs: Tuple[RunMetrics, ...]  # index == replica index
    aggregate: Dict[str, object] = field(repr=False)
    n_from_cache: int = 0
    manifest: Optional[RunManifest] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "config": asdict(self.config),
            "config_hash": self.config_hash,
            "n_from_cache": self.n_from_cache,
            "aggregate": self.aggregate,
        }
        if self.manifest is not None:
            out["manifest"] = self.manifest.to_dict()
        return out


def _run_replica(task: Tuple[SweepConfig, int]) -> Tuple[int, Dict[str, object]]:
    """One replica (module-level so multiprocessing can pickle it)."""
    sweep, replica = task
    with obs.span("sim.replica", replica=replica, policy=sweep.policy):
        metrics = simulate_training_run(
            sweep.build(), seed=sweep.seed, replica=replica
        )
    return replica, metrics.to_dict()


def _init_sim_worker(context) -> None:
    """Pool initializer: adopt the dispatching process's trace context."""
    obs.activate_context(context)


def _cache_path(cache_dir: str, digest: str) -> str:
    return os.path.join(cache_dir, f"sweep-{digest}.jsonl")


def _load_cache(path: str) -> Dict[int, RunMetrics]:
    """Replica -> metrics from a (possibly truncated) JSONL cache file."""
    cached: Dict[int, RunMetrics] = {}
    if not os.path.exists(path):
        return cached
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                cached[int(row["replica"])] = RunMetrics.from_dict(row["metrics"])
            except (ValueError, KeyError, TypeError):
                continue  # a torn final line from an interrupted sweep
    return cached


def run_sweep(
    config: SweepConfig,
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> SweepResult:
    """Run (or resume) a sweep and aggregate it.

    ``workers > 1`` fans replicas out over a process pool; ``cache_dir``
    enables the JSONL result cache (missing replicas are computed and
    appended, present ones are reused verbatim).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    digest = config.config_hash()

    cached: Dict[int, RunMetrics] = {}
    cache_file: Optional[str] = None
    if cache_dir is not None:
        os.makedirs(cache_dir, exist_ok=True)
        cache_file = _cache_path(cache_dir, digest)
        cached = _load_cache(cache_file)

    wanted = range(config.replicas)
    missing = [i for i in wanted if i not in cached]
    tasks = [(config, i) for i in missing]

    fresh: List[Tuple[int, Dict[str, object]]] = []
    with obs.span(
        "sim.sweep", scenario=config.scenario, policy=config.policy,
        workers=workers,
    ) as sweep_span:
        sweep_span.add("sim.replicas_run", len(tasks))
        sweep_span.add("sim.replicas_cached", len(cached))
        if tasks:
            if workers == 1 or len(tasks) == 1:
                fresh = [_run_replica(task) for task in tasks]
            else:
                context = obs.current_context(label="sim")
                with multiprocessing.Pool(
                    processes=min(workers, len(tasks)),
                    initializer=_init_sim_worker,
                    initargs=(context,),
                ) as pool:
                    fresh = pool.map(_run_replica, tasks, chunksize=1)

    if cache_file is not None and fresh:
        with open(cache_file, "a", encoding="utf-8") as handle:
            for replica, row in sorted(fresh):
                handle.write(
                    json.dumps({"replica": replica, "metrics": row}, sort_keys=True)
                    + "\n"
                )

    by_replica: Dict[int, RunMetrics] = dict(cached)
    for replica, row in fresh:
        by_replica[replica] = RunMetrics.from_dict(row)
    runs = tuple(by_replica[i] for i in wanted)
    from repro import __version__

    manifest = RunManifest(
        run_id=f"sweep-{digest}",
        seed=config.seed,
        workers=workers,
        engine="sim",
        dataset=config.scenario,
        config_hashes={"sweep": digest},
        package_version=__version__,
    )
    return SweepResult(
        config=config,
        config_hash=digest,
        runs=runs,
        aggregate=aggregate_metrics(runs),
        n_from_cache=sum(1 for i in cached if i < config.replicas),
        manifest=manifest,
    )
