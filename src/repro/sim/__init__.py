"""Discrete-event what-if engine: failure-aware training simulation.

The substrate characterizes the failure process (``repro.faults``) and the
pipeline measures it (``repro.core``); this subpackage asks the *forward*
question the paper's Section 5 raises: how much goodput does a long
512-GPU training job lose to the measured failure process, and which
recovery policy buys it back?

* :mod:`repro.sim.events` — the event-queue core (failure, checkpoint
  write, restore, drain-end, spare-swap, job-complete events).
* :mod:`repro.sim.failures` — the calibrated failure process: root-event
  rates solved from a :class:`~repro.faults.calibration.CalibrationProfile`,
  chains replayed through the same Markov kernel the injector uses, and an
  explicit defective-part (offender) lottery.
* :mod:`repro.sim.policies` — pluggable recovery policies: restart from
  checkpoint (Young/Daly or fixed interval), node drain + hot-spare
  substitution, elastic shrink/regrow, and the no-checkpoint baseline.
* :mod:`repro.sim.engine` — the simulator that places a training job on a
  Delta-shaped inventory and runs it to completion under the event model.
* :mod:`repro.sim.metrics` — per-run outcomes (goodput, ETTR, wasted
  GPU-hours, overhead split) and sweep aggregation with confidence bounds.
* :mod:`repro.sim.sweep` — the parallel Monte-Carlo sweep runner: seeded
  per-replica streams, result caching keyed by config hash, resumable
  partial sweeps, and worker-count-independent aggregates.
* :mod:`repro.sim.scenarios` — named presets (A100 vs H100 fleets, the
  counterfactual "no Xid-79" world, the burned-in world).
"""

from repro.sim.engine import (
    SimulationConfig,
    SimTimings,
    TrainingJobConfig,
    WhatIfEngine,
    simulate_training_run,
)
from repro.sim.failures import AllocationFailureState, FailureDraw, FailureModel
from repro.sim.metrics import (
    AGGREGATE_FIELDS,
    RunMetrics,
    aggregate_metrics,
    mean_ci95,
)
from repro.sim.policies import (
    CheckpointRestart,
    ElasticScale,
    HotSpare,
    NoCheckpoint,
    RecoveryPolicy,
    parse_policy,
)
from repro.sim.scenarios import SCENARIOS, Scenario, build_scenario, list_scenarios
from repro.sim.sweep import SweepConfig, SweepResult, run_sweep

__all__ = [
    "SimulationConfig",
    "SimTimings",
    "TrainingJobConfig",
    "WhatIfEngine",
    "simulate_training_run",
    "AllocationFailureState",
    "FailureDraw",
    "FailureModel",
    "AGGREGATE_FIELDS",
    "RunMetrics",
    "aggregate_metrics",
    "mean_ci95",
    "CheckpointRestart",
    "ElasticScale",
    "HotSpare",
    "NoCheckpoint",
    "RecoveryPolicy",
    "parse_policy",
    "SCENARIOS",
    "Scenario",
    "build_scenario",
    "list_scenarios",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
]
