"""The calibrated failure process a training job is exposed to.

Rates come from the same place the injector's do: the per-XID totals of a
:class:`~repro.faults.calibration.CalibrationProfile` are reduced to root
(spontaneous) counts through the propagation kernel
(:func:`~repro.faults.calibration.solve_root_counts`), normalized to
per-node-hour rates over the profile's window, and chains are replayed
through :func:`~repro.faults.chains.walk_chain` — so a simulated job sees
the paper's failure process, not an independent re-model of it.

Two structural features of the measured process matter for a what-if and
are modelled explicitly:

* **Workload-induced MMU errors** are excluded by default: a production
  training job is assumed not to emit its own illegal-access errors, so
  only the hardware share of the MMU budget threatens it.
* **Defective parts (offenders)** are a lottery, not a fleet-average rate.
  Each code's offender share is concentrated on its ``n_offenders`` GPUs
  (the worst taking ``top_share`` — for uncontained errors one GPU carries
  99 %).  A run samples which offenders land inside the allocation; a
  drain-and-substitute policy can then *evict* one permanently, which is
  exactly the operational lever Section 5.5 quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.calibration import CalibrationProfile, solve_root_counts
from repro.faults.chains import walk_chain
from repro.faults.xid import Xid
from repro.util.rng import spawn_rng

#: Chain walks per XID used to estimate the probability a root event's chain
#: interrupts the job (drives the Young/Daly MTBF estimate).
_FATAL_MC_SAMPLES = 512


@dataclass(frozen=True)
class FailureDraw:
    """One resolved root fault: its chain and its consequence for the job."""

    root_xid: Xid
    chain: Tuple[Xid, ...]
    #: The chain contained an event that kills the job it hits (Table 2).
    fatal: bool
    fatal_xid: Optional[Xid]
    #: The chain left a GPU inoperable: its node must be drained/repaired.
    inoperable: bool
    #: Sampled node repair duration (hours); 0 when not inoperable.
    repair_hours: float
    #: Index into the allocation's offender components, if this event came
    #: from a defective part rather than the uniform background.
    offender_index: Optional[int] = None

    @property
    def interrupts(self) -> bool:
        """Whether the job is interrupted (killed or lost a GPU)."""
        return self.fatal or self.inoperable


@dataclass
class _OffenderComponent:
    """One defective GPU inside the allocation: a concentrated point rate."""

    xid: Xid
    rate_per_hour: float
    active: bool = True  # False while its node is drained or after eviction


@dataclass
class AllocationFailureState:
    """The failure process as seen by one concrete allocation.

    Mutable: policies change it mid-run (evicting an offender onto a spare,
    shrinking an elastic allocation).  The engine re-samples the next
    arrival after every mutation — exact for exponential arrivals.
    """

    model: "FailureModel"
    n_nodes: int
    n_active_nodes: int
    offenders: List[_OffenderComponent] = field(default_factory=list)
    offenders_evicted: int = 0

    # -- rates -----------------------------------------------------------

    def total_rate(self) -> float:
        """Root events per hour across the current allocation."""
        rate = self.model.base_rate_per_node_hour * self.n_active_nodes
        rate += sum(c.rate_per_hour for c in self.offenders if c.active)
        return rate

    def fatal_rate(self) -> float:
        """Expected job-interrupting events per hour (for Young's MTBF)."""
        rate = 0.0
        for xid, per_node in self.model.base_rates.items():
            rate += per_node * self.n_active_nodes * self.model.interrupt_prob(xid)
        for component in self.offenders:
            if component.active:
                rate += component.rate_per_hour * self.model.interrupt_prob(component.xid)
        return rate

    def next_gap_hours(self, rng: np.random.Generator) -> float:
        rate = self.total_rate()
        if rate <= 0.0:
            return math.inf
        return float(rng.exponential(1.0 / rate))

    # -- drawing ---------------------------------------------------------

    def draw(self, rng: np.random.Generator) -> FailureDraw:
        """Resolve the arrived root event: source, chain, consequence."""
        base_total = self.model.base_rate_per_node_hour * self.n_active_nodes
        active = [(i, c) for i, c in enumerate(self.offenders) if c.active]
        offender_total = sum(c.rate_per_hour for _, c in active)
        pick = rng.uniform(0.0, base_total + offender_total)
        if pick < base_total or not active:
            root = self.model.sample_base_root(rng)
            return self.model.resolve(root, rng)
        pick -= base_total
        for index, component in active:
            pick -= component.rate_per_hour
            if pick <= 0.0:
                return self.model.resolve(component.xid, rng, offender_index=index)
        index, component = active[-1]
        return self.model.resolve(component.xid, rng, offender_index=index)

    # -- mutations (policies) --------------------------------------------

    def evict_offender(self, index: int) -> None:
        """Permanently remove a defective part (hot-spare substitution)."""
        if self.offenders[index].active:
            self.offenders[index].active = False
            self.offenders_evicted += 1

    def suspend_offender(self, index: int) -> None:
        """Temporarily silence a drained offender (elastic shrink)."""
        self.offenders[index].active = False

    def resume_offender(self, index: int) -> None:
        """The drained node (defective part and all) rejoins the allocation."""
        self.offenders[index].active = True


class FailureModel:
    """Per-profile failure rates plus chain resolution.

    Stateless across runs; :meth:`allocation_state` samples the per-run
    offender lottery and returns the mutable view the engine works with.
    """

    def __init__(
        self,
        profile: CalibrationProfile,
        *,
        include_workload_mmu: bool = False,
    ) -> None:
        self.profile = profile
        window_hours = profile.window_days * 24.0
        roots = solve_root_counts(profile.scaled_counts(1.0), profile.kernel)
        if not include_workload_mmu and Xid.MMU in roots:
            roots[Xid.MMU] *= 1.0 - profile.mmu_from_workload_fraction

        #: Uniform background: per-node-per-hour root rate by XID.
        self.base_rates: Dict[Xid, float] = {}
        #: Cluster-wide offender rate by XID with per-GPU weights.
        self.offender_rates: Dict[Xid, Tuple[float, Tuple[float, ...]]] = {}
        for xid, count in sorted(roots.items(), key=lambda kv: int(kv[0])):
            if count <= 0:
                continue
            calibration = profile.xids.get(xid)
            skew = calibration.offenders if calibration is not None else None
            share = skew.offender_share if skew is not None else 0.0
            base = count * (1.0 - share) / (window_hours * profile.reference_node_count)
            if base > 0:
                self.base_rates[xid] = base
            if skew is not None and share > 0:
                total = count * share / window_hours
                k = skew.n_offenders
                if k == 1:
                    weights: Tuple[float, ...] = (1.0,)
                else:
                    rest = (1.0 - skew.top_share) / (k - 1)
                    weights = (skew.top_share,) + (rest,) * (k - 1)
                self.offender_rates[xid] = (total, weights)

        self.base_rate_per_node_hour = sum(self.base_rates.values())
        self._base_xids = tuple(self.base_rates)
        base_values = np.array([self.base_rates[x] for x in self._base_xids])
        self._base_probs = (
            base_values / base_values.sum() if base_values.size else base_values
        )
        self._interrupt_probs = self._estimate_interrupt_probs()

    # -- chain statistics -------------------------------------------------

    def _estimate_interrupt_probs(self) -> Dict[Xid, float]:
        """Monte-Carlo P(chain interrupts the job) per root XID.

        Uses a fixed stream derived from the profile name so the estimate —
        and hence Young's interval — is deterministic per profile.
        """
        probs: Dict[Xid, float] = {}
        roots = set(self._base_xids) | set(self.offender_rates)
        for xid in sorted(roots, key=int):
            rng = spawn_rng(0, "sim", "interrupt-mc", self.profile.name, str(int(xid)))
            hits = 0
            for _ in range(_FATAL_MC_SAMPLES):
                draw = self.resolve(xid, rng)
                if draw.interrupts:
                    hits += 1
            probs[xid] = hits / _FATAL_MC_SAMPLES
        return probs

    def interrupt_prob(self, xid: Xid) -> float:
        return self._interrupt_probs.get(xid, 1.0)

    def job_failure_prob(self, xid: Xid) -> float:
        calibration = self.profile.xids.get(xid)
        return calibration.job_failure_prob if calibration is not None else 1.0

    # -- sampling ----------------------------------------------------------

    def sample_base_root(self, rng: np.random.Generator) -> Xid:
        if not self._base_xids:
            raise ValueError(f"profile {self.profile.name!r} has no background rates")
        index = int(rng.choice(len(self._base_xids), p=self._base_probs))
        return self._base_xids[index]

    def resolve(
        self,
        root_xid: Xid,
        rng: np.random.Generator,
        offender_index: Optional[int] = None,
    ) -> FailureDraw:
        """Replay one chain from ``root_xid`` and score its consequence."""
        steps = walk_chain(root_xid, self.profile.kernel, rng)
        fatal = False
        fatal_xid: Optional[Xid] = None
        inoperable = False
        for step in steps:
            if step.inoperable:
                inoperable = True
            if not fatal and rng.random() < self.job_failure_prob(step.xid):
                fatal = True
                fatal_xid = step.xid
        repair_hours = 0.0
        if inoperable:
            repair_hours = float(self.profile.repair.sample_hours(rng, 1)[0])
        return FailureDraw(
            root_xid=root_xid,
            chain=tuple(step.xid for step in steps),
            fatal=fatal,
            fatal_xid=fatal_xid,
            inoperable=inoperable,
            repair_hours=repair_hours,
            offender_index=offender_index,
        )

    def allocation_state(
        self,
        *,
        n_nodes: int,
        n_gpus: int,
        population_gpus: int,
        rng: np.random.Generator,
    ) -> AllocationFailureState:
        """Sample the offender lottery for one allocation.

        Each defective GPU lands inside the allocation independently with
        probability ``n_gpus / population_gpus`` (capped at 1 for jobs
        larger than the reference population).
        """
        include_prob = min(1.0, n_gpus / max(population_gpus, 1))
        components: List[_OffenderComponent] = []
        for xid, (total_rate, weights) in sorted(
            self.offender_rates.items(), key=lambda kv: int(kv[0])
        ):
            for weight in weights:
                if rng.random() < include_prob:
                    components.append(
                        _OffenderComponent(xid=xid, rate_per_hour=total_rate * weight)
                    )
        return AllocationFailureState(
            model=self,
            n_nodes=n_nodes,
            n_active_nodes=n_nodes,
            offenders=components,
        )
