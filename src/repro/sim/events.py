"""The discrete-event core: typed events and a stable priority queue.

The engine advances a clock by popping the earliest event from an
:class:`EventQueue`.  Two details keep the state machine honest:

* **Stable ordering** — ties on time break by insertion sequence, so a
  restore scheduled before a failure at the same instant is processed
  first and replicas are bit-for-bit reproducible.
* **Generation guards** — an interruption invalidates every event the
  running segment had scheduled (its next checkpoint, its completion).
  Rather than deleting from the heap, each event carries the generation it
  was scheduled under and the engine discards stale ones on pop.  The same
  mechanism makes the failure process exact under rate changes: evicting a
  defective node re-samples the next arrival and bumps the failure
  generation, which is correct because exponential arrivals are memoryless.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


class EventKind(enum.Enum):
    """Everything that can happen to a training job in the what-if world."""

    #: A root fault arrives on the job's allocation (chains resolved inline).
    FAILURE = "failure"
    #: The running segment reaches its checkpoint boundary; the write begins.
    CHECKPOINT_WRITE = "checkpoint_write"
    #: The checkpoint write finishes; progress becomes durable.
    CHECKPOINT_DONE = "checkpoint_done"
    #: Recovery finishes; the job restarts from its last durable point.
    RESTORE_DONE = "restore_done"
    #: A drained node finishes repair (returns to the spare pool, or
    #: regrows an elastic allocation).
    DRAIN_END = "drain_end"
    #: A hot spare is substituted for a failed node.
    SPARE_SWAP = "spare_swap"
    #: The job's remaining useful work finishes at the current rate.
    JOB_COMPLETE = "job_complete"


@dataclass(frozen=True, order=False)
class SimEvent:
    """One scheduled occurrence.

    ``generation`` is matched against the engine's current segment (for
    segment-scoped events) or failure-process generation; ``payload``
    carries event-specific data (a failure draw, a node index).
    """

    time: float
    kind: EventKind
    generation: int = 0
    payload: Any = None


@dataclass
class EventQueue:
    """A stable min-heap of :class:`SimEvent` keyed by (time, sequence)."""

    _heap: list = field(default_factory=list)
    _seq: "itertools.count[int]" = field(default_factory=itertools.count)

    def push(self, event: SimEvent) -> None:
        heapq.heappush(self._heap, (event.time, next(self._seq), event))

    def schedule(
        self, time: float, kind: EventKind, generation: int = 0, payload: Any = None
    ) -> SimEvent:
        event = SimEvent(time=time, kind=kind, generation=generation, payload=payload)
        self.push(event)
        return event

    def pop(self) -> Optional[SimEvent]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[SimEvent]:
        """Events in an unspecified order (diagnostics only)."""
        return (entry[2] for entry in self._heap)
