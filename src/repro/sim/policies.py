"""Pluggable recovery policies for the what-if engine.

A policy answers two questions the event loop asks:

* how often should the job checkpoint (``interval_hours``: a fixed value,
  or ``None`` for the clamped Young/Daly optimum against the allocation's
  *measured* interrupt rate — the degenerate-config clamp in
  :func:`repro.slurm.checkpointing.optimal_interval` matters here, because
  an allocation that drew the worst offender GPU can see an MTBF shorter
  than the checkpoint cost);
* what happens when a node is rendered inoperable (wait for repair, swap
  in a hot spare and drain the bad node out of the allocation for good, or
  shrink elastically and regrow when the repair finishes).

Policies are plain data; all clock-advancing behaviour lives in the
engine, keyed off these flags, so a policy is trivially picklable for the
multiprocessing sweep runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.slurm.checkpointing import CheckpointConfig, optimal_interval


@runtime_checkable
class RecoveryPolicy(Protocol):
    """What the engine needs from a policy (structural, for third parties)."""

    name: str
    checkpointing: bool
    interval_hours: Optional[float]
    n_spares: int
    elastic: bool


@dataclass(frozen=True)
class CheckpointRestart:
    """Restart from the last checkpoint; inoperable nodes block on repair."""

    interval_hours: Optional[float] = None  # None: Young/Daly from measured MTBF
    name: str = "ckpt"
    checkpointing: bool = True
    n_spares: int = 0
    elastic: bool = False


@dataclass(frozen=True)
class HotSpare:
    """Checkpoint/restart plus a pool of hot spares.

    An inoperable node is drained and a spare substituted after a short
    swap delay; the drained node rejoins the *pool* (not the allocation)
    once repaired.  Substitution permanently evicts defective parts from
    the allocation — the drain-and-replace lever of Section 5.5.
    """

    n_spares: int = 2
    interval_hours: Optional[float] = None
    name: str = "spare"
    checkpointing: bool = True
    elastic: bool = False


@dataclass(frozen=True)
class ElasticScale:
    """Shrink past an inoperable node and regrow when its repair finishes.

    The job restarts from its checkpoint on the surviving nodes at reduced
    throughput instead of waiting; throughput returns (with the node — and
    any defective part on it) at drain end.
    """

    interval_hours: Optional[float] = None
    name: str = "elastic"
    checkpointing: bool = True
    n_spares: int = 0
    elastic: bool = True


@dataclass(frozen=True)
class NoCheckpoint:
    """The paper's grim baseline: a failure loses all progress."""

    name: str = "none"
    checkpointing: bool = False
    interval_hours: Optional[float] = None
    n_spares: int = 0
    elastic: bool = False


def resolve_interval(
    policy: RecoveryPolicy,
    *,
    checkpoint_cost_hours: float,
    restore_cost_hours: float,
    mtbf_hours: float,
) -> float:
    """The concrete checkpoint interval a run uses (``inf`` disables it)."""
    if not policy.checkpointing:
        return float("inf")
    if policy.interval_hours is not None:
        if policy.interval_hours <= 0:
            raise ValueError(f"interval_hours must be positive, got {policy.interval_hours}")
        return float(policy.interval_hours)
    if not (mtbf_hours > 0) or mtbf_hours == float("inf"):
        return float("inf")  # nothing ever fails: checkpointing is pure cost
    return optimal_interval(
        CheckpointConfig(
            checkpoint_cost_hours=checkpoint_cost_hours,
            restore_cost_hours=restore_cost_hours,
            mtbf_hours=mtbf_hours,
        )
    )


def parse_policy(spec: str) -> RecoveryPolicy:
    """Parse a CLI policy spec.

    Grammar: ``name[:arg]`` —

    * ``none`` — no checkpointing;
    * ``ckpt`` / ``ckpt:2.5`` — checkpoint/restart, Young or fixed 2.5 h;
    * ``spare`` / ``spare:4`` / ``spare:4:1.5`` — hot spares (pool size,
      optional fixed interval);
    * ``elastic`` / ``elastic:2.0`` — shrink/regrow.
    """
    parts = spec.strip().lower().split(":")
    kind, args = parts[0], parts[1:]

    def _interval(value: str) -> float:
        return float(value)

    if kind == "none":
        if args:
            raise ValueError("policy 'none' takes no arguments")
        return NoCheckpoint()
    if kind == "ckpt":
        if len(args) > 1:
            raise ValueError("policy 'ckpt' takes at most one argument (interval hours)")
        return CheckpointRestart(interval_hours=_interval(args[0]) if args else None)
    if kind == "spare":
        if len(args) > 2:
            raise ValueError("policy 'spare' takes at most [n_spares][:interval]")
        n_spares = int(args[0]) if args else 2
        if n_spares < 0:
            raise ValueError(f"n_spares must be >= 0, got {n_spares}")
        interval = _interval(args[1]) if len(args) > 1 else None
        return HotSpare(n_spares=n_spares, interval_hours=interval)
    if kind == "elastic":
        if len(args) > 1:
            raise ValueError("policy 'elastic' takes at most one argument (interval hours)")
        return ElasticScale(interval_hours=_interval(args[0]) if args else None)
    raise ValueError(
        f"unknown policy {spec!r}; expected none | ckpt[:h] | spare[:n][:h] | elastic[:h]"
    )
