"""Persistence-distribution analysis (paper Section 4.3).

Error persistence — the duration of an error's duplicate-line burst — is the
paper's proxy for recovery time.  This analyzer reproduces Section 4.3's
numbers: total useful GPU computation lost (sum of persistence across all
GPUs), the share of that loss carried by the tail beyond each code's P95,
and identification of long-persisting errors for monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.coalesce import CoalescedError
from repro.util.stats import DurationSummary, summarize_durations


@dataclass(frozen=True)
class TailAnalysis:
    """Loss accounting split at the per-XID P95 persistence threshold."""

    total_lost_gpu_hours: float
    tail_lost_gpu_hours: float

    @property
    def tail_share(self) -> float:
        if self.total_lost_gpu_hours <= 0:
            return 0.0
        return self.tail_lost_gpu_hours / self.total_lost_gpu_hours


class PersistenceAnalyzer:
    """Persistence distributions and lost-GPU-hours accounting."""

    def __init__(self, errors: Sequence[CoalescedError]) -> None:
        self.errors = list(errors)
        self._by_xid: Dict[int, List[float]] = {}
        for error in self.errors:
            self._by_xid.setdefault(error.xid, []).append(error.persistence)

    def summary(self, xid: int) -> DurationSummary:
        return summarize_durations(self._by_xid.get(int(xid), []))

    def summaries(self) -> Dict[int, DurationSummary]:
        return {xid: summarize_durations(vals) for xid, vals in sorted(self._by_xid.items())}

    # ------------------------------------------------------------------

    def total_lost_gpu_hours(self) -> float:
        """Sum of persistence across all errors, in GPU-hours.

        The paper's "320 GPU hours" figure — an optimistic estimate assuming
        each GPU becomes useful again the moment its burst ends.
        """
        return float(sum(e.persistence for e in self.errors)) / 3600.0

    def tail_analysis(self) -> TailAnalysis:
        """Share of lost GPU-hours from errors persisting beyond their
        code's P95 (the paper reports 91%)."""
        total = 0.0
        tail = 0.0
        for xid, values in self._by_xid.items():
            arr = np.asarray(values)
            if arr.size == 0:
                continue
            p95 = np.percentile(arr, 95)
            total += float(arr.sum())
            tail += float(arr[arr > p95].sum())
        return TailAnalysis(
            total_lost_gpu_hours=total / 3600.0,
            tail_lost_gpu_hours=tail / 3600.0,
        )

    # ------------------------------------------------------------------

    def longest(self, k: int = 10) -> List[CoalescedError]:
        """The k longest-persisting errors (the SRE monitoring watchlist)."""
        return sorted(self.errors, key=lambda e: e.persistence, reverse=True)[:k]

    def above_threshold(self, seconds: float) -> List[CoalescedError]:
        """Errors persisting beyond a threshold (alerting candidates)."""
        return [e for e in self.errors if e.persistence > seconds]

    def burstiness(self, xid: int) -> Tuple[float, float]:
        """(mean raw lines per error, max raw lines) for one code.

        Quantifies the paper's "over a million duplicated log entries"
        observation for uncontained errors.
        """
        raws = [e.n_raw for e in self.errors if e.xid == int(xid)]
        if not raws:
            return 0.0, 0.0
        return float(np.mean(raws)), float(max(raws))
