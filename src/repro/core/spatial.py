"""Spatial error-concentration analysis.

Section 4.2 (iii)'s operational insight — most memory-class errors come
from a handful of defective GPUs, so burn-in testing and replacement pay
off — needs a quantitative footing.  This module provides it:

* :func:`gini_coefficient` — inequality of the per-GPU error distribution
  (0: uniform across GPUs; ->1: one GPU holds everything);
* :func:`lorenz_points` — the top-k concentration curve ("the top GPU holds
  99% of uncontained errors");
* :class:`SpatialAnalyzer` — per-code concentration, offender detection
  with binomial surprise (is a GPU's count explainable by chance?), and
  node-level clustering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.coalesce import CoalescedError

GpuKey = Tuple[str, str]


def gini_coefficient(counts: Sequence[float], population: int | None = None) -> float:
    """Gini inequality of counts, optionally padded with zero-count units.

    ``population`` is the total number of GPUs (most of which saw zero
    errors); omitting it measures inequality among affected GPUs only.
    """
    values = [float(c) for c in counts]
    if population is not None:
        if population < len(values):
            raise ValueError("population smaller than the number of nonzero units")
        values = values + [0.0] * (population - len(values))
    arr = np.sort(np.asarray(values))
    n = arr.size
    total = arr.sum()
    if n == 0 or total == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * arr) / (n * total)) - (n + 1.0) / n)


def lorenz_points(
    counts: Sequence[float], ks: Sequence[int] = (1, 2, 4, 8)
) -> Dict[int, float]:
    """Share of all errors held by the top-k GPUs, for each k."""
    arr = np.sort(np.asarray([float(c) for c in counts]))[::-1]
    total = arr.sum()
    if total == 0:
        return {k: 0.0 for k in ks}
    return {k: float(arr[: min(k, arr.size)].sum() / total) for k in ks}


@dataclass(frozen=True)
class Offender:
    gpu: GpuKey
    count: int
    share: float
    #: -log10 of the Poisson tail probability of seeing >= count errors on
    #: one GPU if errors landed uniformly; > 6 means "not chance".
    surprise: float


class SpatialAnalyzer:
    """Per-GPU and per-node concentration of an error stream."""

    def __init__(self, errors: Sequence[CoalescedError], n_gpus: int) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        self.n_gpus = n_gpus
        self.errors = list(errors)
        self._per_gpu: Dict[int, Dict[GpuKey, int]] = {}
        self._per_node: Dict[int, Dict[str, int]] = {}
        for error in self.errors:
            self._per_gpu.setdefault(error.xid, {}).setdefault(error.gpu_key, 0)
            self._per_gpu[error.xid][error.gpu_key] += 1
            self._per_node.setdefault(error.xid, {}).setdefault(error.node_id, 0)
            self._per_node[error.xid][error.node_id] += 1

    # ------------------------------------------------------------------

    def gini(self, xid: int) -> float:
        counts = list(self._per_gpu.get(int(xid), {}).values())
        return gini_coefficient(counts, population=self.n_gpus)

    def top_share(self, xid: int, k: int = 1) -> float:
        counts = list(self._per_gpu.get(int(xid), {}).values())
        return lorenz_points(counts, ks=(k,)).get(k, 0.0)

    def affected_gpu_fraction(self, xid: int) -> float:
        """Fraction of the population that ever saw this code."""
        return len(self._per_gpu.get(int(xid), {})) / self.n_gpus

    # ------------------------------------------------------------------

    def offenders(self, xid: int, *, surprise_threshold: float = 6.0) -> List[Offender]:
        """GPUs whose counts are statistically inconsistent with chance.

        Under uniform placement each GPU's count is ~Poisson(total/n_gpus);
        the surprise score is -log10 of that tail probability (Chernoff
        bound for numerical robustness at extreme counts).
        """
        per_gpu = self._per_gpu.get(int(xid), {})
        total = sum(per_gpu.values())
        if total == 0:
            return []
        rate = total / self.n_gpus
        out: List[Offender] = []
        for gpu, count in per_gpu.items():
            surprise = _poisson_tail_surprise(count, rate)
            if surprise >= surprise_threshold and count >= 3:
                out.append(
                    Offender(gpu=gpu, count=count, share=count / total,
                             surprise=surprise)
                )
        out.sort(key=lambda o: o.count, reverse=True)
        return out

    def node_concentration(self, xid: int) -> Dict[str, int]:
        return dict(self._per_node.get(int(xid), {}))


def _poisson_tail_surprise(count: int, rate: float) -> float:
    """-log10 P(X >= count) for X ~ Poisson(rate), via the Chernoff bound.

    ``P(X >= k) <= exp(-rate) (e*rate/k)^k`` for k > rate; exact enough for
    a detection score and immune to overflow at the offender's 38k counts.
    """
    if count <= rate:
        return 0.0
    if rate <= 0:
        return float("inf")
    log_p = -rate + count * (1.0 + math.log(rate) - math.log(count))
    return max(0.0, -log_p / math.log(10.0))
