"""Error statistics: counts, MTBE, and the Table-1 view.

MTBE (mean time between errors) is reported two ways, as in the paper:

* **all-nodes** (system) hours: observation hours divided by error count;
* **per-node** hours: all-nodes MTBE multiplied by the node population
  (Table 1 footnote: 206 Ampere GPU nodes), i.e. the expected error-free
  operating time of a single node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.coalesce import CoalescedError
from repro.faults.xid import (
    HARDWARE_MTBE_XIDS,
    MEMORY_MTBE_XIDS,
    XID_CATALOG,
    Xid,
    XidCategory,
)
from repro.util.stats import DurationSummary, summarize_durations
from repro.util.validation import check_positive

_KNOWN_XIDS = {int(x) for x in Xid}


@dataclass(frozen=True)
class XidStatistics:
    """One Table-1 row as measured from the data."""

    xid: int
    count: int
    mtbe_all_nodes_hours: float
    mtbe_per_node_hours: float
    persistence: DurationSummary


class ErrorStatistics:
    """Counts and MTBE over a coalesced error set.

    ``window_hours`` is the observation span; ``n_nodes`` the population for
    per-node normalization.  User-induced codes (XID 13/43) are excluded
    from all statistics, mirroring the paper's filter, but their excluded
    count is kept for auditability.
    """

    def __init__(
        self,
        errors: Sequence[CoalescedError],
        window_hours: float,
        n_nodes: int,
    ) -> None:
        check_positive("window_hours", window_hours)
        check_positive("n_nodes", n_nodes)
        self.window_hours = window_hours
        self.n_nodes = n_nodes
        self.excluded_count = 0
        self.errors: List[CoalescedError] = []
        for error in errors:
            info = XID_CATALOG.get(Xid(error.xid)) if error.xid in _KNOWN_XIDS else None
            if info is not None and not info.studied:
                self.excluded_count += 1
                continue
            self.errors.append(error)
        self._by_xid: Dict[int, List[CoalescedError]] = {}
        for error in self.errors:
            self._by_xid.setdefault(error.xid, []).append(error)

    # ------------------------------------------------------------------

    @property
    def total_count(self) -> int:
        return len(self.errors)

    @property
    def window_node_hours(self) -> float:
        return self.window_hours * self.n_nodes

    def count(self, xid: int) -> int:
        return len(self._by_xid.get(int(xid), []))

    def counts(self) -> Dict[int, int]:
        return {xid: len(errs) for xid, errs in sorted(self._by_xid.items())}

    def mtbe_all_nodes_hours(self, xid: int | None = None) -> float:
        n = self.total_count if xid is None else self.count(xid)
        return self.window_hours / n if n else float("inf")

    def mtbe_per_node_hours(self, xid: int | None = None) -> float:
        return self.mtbe_all_nodes_hours(xid) * self.n_nodes

    def overall_mtbe_node_hours(self) -> float:
        """The paper's headline "67 node hours": per-node MTBE over all errors.

        Observation node-hours divided by total errors — the expected
        operating time of one node between (any) errors.
        """
        if not self.errors:
            return float("inf")
        return self.window_node_hours / self.total_count

    # ------------------------------------------------------------------

    def persistence_summary(self, xid: int) -> DurationSummary:
        return summarize_durations([e.persistence for e in self._by_xid.get(int(xid), [])])

    def combined_mtbe_per_node_hours(self, xids: Iterable[int]) -> float:
        total = sum(self.count(x) for x in xids)
        if total == 0:
            return float("inf")
        return self.window_node_hours / total

    def memory_vs_hardware_ratio(self) -> float:
        """The paper's "GPU memory is 30x more reliable" comparison.

        Memory side: DBE + RRE + RRF (uncontained errors excluded because
        >90% stem from a few defective GPUs — Section 4.2 (iii)).  Hardware
        side: GSP + PMU SPI + NVLink + Fallen-Off-the-Bus.
        """
        memory = self.combined_mtbe_per_node_hours(int(x) for x in MEMORY_MTBE_XIDS)
        hardware = self.combined_mtbe_per_node_hours(int(x) for x in HARDWARE_MTBE_XIDS)
        if not np.isfinite(memory) or not np.isfinite(hardware) or hardware == 0:
            return float("nan")
        return memory / hardware

    def category_share(self) -> Dict[XidCategory, float]:
        """Fraction of errors per taxonomy category."""
        shares: Dict[XidCategory, int] = {}
        for error in self.errors:
            if error.xid in _KNOWN_XIDS:
                category = XID_CATALOG[Xid(error.xid)].category
            else:
                category = XidCategory.UNKNOWN
            shares[category] = shares.get(category, 0) + 1
        total = self.total_count or 1
        return {cat: count / total for cat, count in shares.items()}

    # ------------------------------------------------------------------

    def per_gpu_counts(self, xid: int | None = None) -> Dict[Tuple[str, str], int]:
        """Error counts per GPU (outlier/offender identification)."""
        out: Dict[Tuple[str, str], int] = {}
        source = self.errors if xid is None else self._by_xid.get(int(xid), [])
        for error in source:
            out[error.gpu_key] = out.get(error.gpu_key, 0) + 1
        return out

    def top_offenders(self, xid: int, k: int = 1) -> List[Tuple[Tuple[str, str], int]]:
        counts = self.per_gpu_counts(xid)
        return sorted(counts.items(), key=lambda kv: kv[1], reverse=True)[:k]

    def offender_share(self, xid: int, k: int = 1) -> float:
        """Fraction of a code's errors from its top-k GPUs."""
        total = self.count(xid)
        if total == 0:
            return 0.0
        return sum(count for _, count in self.top_offenders(xid, k)) / total

    # ------------------------------------------------------------------

    def table1_rows(self) -> List[XidStatistics]:
        """The measured Table 1, one row per observed XID, sorted by code."""
        rows = []
        for xid in sorted(self._by_xid):
            rows.append(
                XidStatistics(
                    xid=xid,
                    count=self.count(xid),
                    mtbe_all_nodes_hours=self.mtbe_all_nodes_hours(xid),
                    mtbe_per_node_hours=self.mtbe_per_node_hours(xid),
                    persistence=self.persistence_summary(xid),
                )
            )
        return rows

    def restricted(
        self,
        *,
        exclude_gpus: Iterable[Tuple[str, str]] = (),
        exclude_xids: Iterable[int] = (),
    ) -> "ErrorStatistics":
        """A copy with given GPUs and/or codes removed (counterfactuals)."""
        gpus = set(exclude_gpus)
        xids = {int(x) for x in exclude_xids}
        kept = [
            e for e in self.errors if e.gpu_key not in gpus and e.xid not in xids
        ]
        return ErrorStatistics(kept, self.window_hours, self.n_nodes)
