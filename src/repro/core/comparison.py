"""Cross-generation resilience comparison.

The paper positions Delta against the pre-Ampere systems of the prior
literature — Blue Waters (Kepler, [9]), Titan (K20X, [52, 53]), Summit
(V100, [36]) — and argues the Ampere recovery mechanisms changed the DBE
story: "this is not achievable on previous generation GPUs ... as a DBE
immediately causes user job interruption and GPU failure".

:class:`GenerationComparison` encodes the published prior-generation
behaviour as constants and lines our measured Ampere/Hopper results up
against them, producing the generational table the paper's Section 7
narrates in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.mtbe import ErrorStatistics
from repro.core.propagation import PropagationAnalyzer
from repro.faults.xid import Xid


@dataclass(frozen=True)
class GenerationProfile:
    """Published resilience characteristics of one GPU generation."""

    name: str
    system: str
    #: P(job interruption | DBE): 1.0 before containment existed.
    dbe_job_interruption_prob: float
    #: Whether the part can remap rows without replacement.
    has_row_remapping: bool
    has_error_containment: bool
    has_gsp: bool
    #: Page-retirement budget (64 pre-Ampere, 512 row remaps after).
    retirement_budget: int
    note: str = ""


#: Literature constants (paper citations [9], [36], [52], [53]).
PRIOR_GENERATIONS: Dict[str, GenerationProfile] = {
    "kepler": GenerationProfile(
        name="Kepler K20X",
        system="Blue Waters / Titan",
        dbe_job_interruption_prob=1.0,
        has_row_remapping=False,
        has_error_containment=False,
        has_gsp=False,
        retirement_budget=64,
        note="DBE => immediate job interruption + GPU reset (paper Sec. 4.4.3)",
    ),
    "volta": GenerationProfile(
        name="Volta V100",
        system="Summit",
        dbe_job_interruption_prob=1.0,
        has_row_remapping=False,
        has_error_containment=False,
        has_gsp=False,
        retirement_budget=64,
        note="page retirement only; no dynamic containment",
    ),
}


@dataclass(frozen=True)
class GenerationRow:
    name: str
    system: str
    dbe_job_interruption_prob: float
    has_row_remapping: bool
    has_error_containment: bool
    has_gsp: bool
    retirement_budget: int
    measured: bool
    note: str = ""


class GenerationComparison:
    """Line measured Ampere results up against the prior-generation record."""

    def __init__(
        self,
        stats: ErrorStatistics,
        propagation: PropagationAnalyzer,
    ) -> None:
        self.stats = stats
        self.propagation = propagation

    def measured_dbe_interruption_prob(self) -> float:
        """1 - (measured DBE alleviation): the Ampere counterpart of the
        pre-Ampere certainty of interruption."""
        paths = self.propagation.memory_recovery_paths()
        return max(0.0, 1.0 - paths["dbe_alleviated"])

    def rows(self) -> List[GenerationRow]:
        out = [
            GenerationRow(
                name=profile.name,
                system=profile.system,
                dbe_job_interruption_prob=profile.dbe_job_interruption_prob,
                has_row_remapping=profile.has_row_remapping,
                has_error_containment=profile.has_error_containment,
                has_gsp=profile.has_gsp,
                retirement_budget=profile.retirement_budget,
                measured=False,
                note=profile.note,
            )
            for profile in PRIOR_GENERATIONS.values()
        ]
        out.append(
            GenerationRow(
                name="Ampere A100/A40",
                system="Delta (this reproduction)",
                dbe_job_interruption_prob=self.measured_dbe_interruption_prob(),
                has_row_remapping=True,
                has_error_containment=True,
                has_gsp=True,
                retirement_budget=512,
                measured=True,
                note="row remapping + containment alleviate ~70% of DBEs; "
                "GSP is the new single point of failure",
            )
        )
        return out

    def generational_improvement(self) -> float:
        """How much likelier a DBE was to interrupt work pre-Ampere."""
        measured = self.measured_dbe_interruption_prob()
        if measured <= 0:
            return float("inf")
        return 1.0 / measured

    def new_failure_modes(self) -> List[str]:
        """What Ampere *added* to the threat model (the paper's flip side)."""
        modes = []
        if self.stats.count(int(Xid.GSP)) > 0:
            modes.append("GSP RPC timeouts (XID 119): new single point of failure")
        if self.stats.count(int(Xid.UNCONTAINED)) > 0:
            modes.append(
                "uncontained memory errors (XID 95): containment failures are "
                "bursty and persistent"
            )
        if self.stats.count(int(Xid.PMU_SPI)) > 0:
            modes.append("PMU SPI communication failures (XID 122) cascading to MMU")
        return modes
