"""Paper-style report rendering.

Each ``render_*`` function returns a monospace-text reproduction of one of
the paper's tables or figures, with a "paper" column next to the measured
values wherever the paper published a number, so benchmark output doubles as
the EXPERIMENTS.md comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.availability import AvailabilityAnalyzer, AvailabilityReport
from repro.core.counterfactual import CounterfactualReport
from repro.core.jobimpact import JobImpactAnalyzer, Table2Row, Table3Row
from repro.core.mtbe import ErrorStatistics
from repro.core.persistence import PersistenceAnalyzer
from repro.core.propagation import NVLinkInvolvement, PropagationAnalyzer
from repro.faults.calibration import (
    CalibrationProfile,
    PAPER_TABLE2,
    PAPER_TOTAL_ERRORS,
    PAPER_OVERALL_MTBE_NODE_HOURS,
)
from repro.faults.xid import XID_CATALOG, Xid
from repro.slurm.workload import SIZE_BUCKETS
from repro.util.tables import Table


def _abbrev(xid: int) -> str:
    try:
        return XID_CATALOG[Xid(xid)].abbreviation
    except (ValueError, KeyError):
        return f"XID {xid}"


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def render_table1(
    stats: ErrorStatistics,
    profile: Optional[CalibrationProfile] = None,
    scale: float = 1.0,
) -> str:
    """Measured Table 1 with the paper's values alongside (count column
    scaled by the dataset's window scale)."""
    table = Table(
        "Table 1 - GPU resilience statistics (measured vs paper)",
        [
            "XID", "Event", "Count", "Count(paper*)",
            "MTBE all (h)", "MTBE/node (h)", "MTBE/node paper",
            "Pers. mean", "P50", "P95", "mean paper", "P50 paper", "P95 paper",
        ],
    )
    for row in stats.table1_rows():
        cal = profile.xids.get(Xid(row.xid)) if profile and row.xid in {
            int(x) for x in Xid} else None
        table.add_row(
            row.xid,
            _abbrev(row.xid),
            row.count,
            round(cal.count * scale) if cal else "-",
            row.mtbe_all_nodes_hours,
            row.mtbe_per_node_hours,
            cal.paper_mtbe_per_node_hours if cal else "-",
            row.persistence.mean,
            row.persistence.p50,
            row.persistence.p95,
            cal.paper_persistence_mean if cal else "-",
            cal.paper_persistence_p50 if cal else "-",
            cal.paper_persistence_p95 if cal else "-",
        )
    footer = (
        f"\nTotal errors: {stats.total_count:,} (paper {PAPER_TOTAL_ERRORS:,} x scale)"
        f"\nOverall per-node MTBE: {stats.overall_mtbe_node_hours():.1f} node-hours "
        f"(paper {PAPER_OVERALL_MTBE_NODE_HOURS:.0f})"
        f"\nMemory vs hardware MTBE ratio: {stats.memory_vs_hardware_ratio():.1f}x "
        "(paper: >30x)"
        f"\nExcluded user-induced records (XID 13/43): {stats.excluded_count:,}"
    )
    return table.render() + footer


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


def render_table2(impact: JobImpactAnalyzer) -> str:
    table = Table(
        "Table 2 - job failure probability given an XID (measured vs paper)",
        ["XID", "GPU Error", "#GPU-failed", "#Encountering",
         "P(fail|XID) %", "paper %"],
    )
    for row in impact.table2():
        paper = PAPER_TABLE2.get(Xid(row.xid)) if row.xid in {int(x) for x in Xid} else None
        table.add_row(
            row.xid,
            _abbrev(row.xid),
            row.gpu_failed_jobs,
            row.jobs_encountering,
            row.failure_probability * 100.0,
            paper[2] if paper else "-",
        )
    footer = (
        f"\nTotal GPU-failed jobs: {impact.total_gpu_failed():,} (paper 4,322 x scale)"
        f"\nJob success rate: {impact.success_rate()*100:.2f}% (paper 74.68%)"
    )
    return table.render() + footer


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


def render_table3(impact: JobImpactAnalyzer) -> str:
    table = Table(
        "Table 3 - job distribution and elapsed statistics (measured vs paper)",
        ["GPUs", "Count", "Share %", "paper %", "Mean (min)", "paper",
         "P50", "paper", "P99", "paper", "ML kGPUh", "non-ML kGPUh"],
    )
    paper = {b.label: b for b in SIZE_BUCKETS}
    for row in impact.table3():
        ref = paper.get(row.label)
        table.add_row(
            row.label,
            row.count,
            row.share * 100.0,
            ref.count_share * 100.0 if ref else "-",
            row.mean_minutes,
            ref.mean_minutes if ref else "-",
            row.p50_minutes,
            ref.p50_minutes if ref else "-",
            row.p99_minutes,
            ref.p99_minutes if ref else "-",
            row.ml_gpu_hours / 1000.0,
            row.non_ml_gpu_hours / 1000.0,
        )
    return table.render()


# ---------------------------------------------------------------------------
# Figures 5-7 (propagation)
# ---------------------------------------------------------------------------


def render_figure5(propagation: PropagationAnalyzer) -> str:
    """Intra-GPU hardware propagation (paper Figure 5)."""
    h = propagation.hardware_paths()
    lines = [
        "Figure 5 - intra-GPU hardware error propagation (measured vs paper)",
        f"  GSP -> self/inoperable : {h['p_gsp_self_or_terminal']:.2f}   (paper 0.99)",
        f"  GSP -> PMU SPI         : {h['p_gsp_to_pmu']:.3f}  (paper 0.01)",
        f"  GSP isolated (no pred) : {h['p_gsp_isolated']:.2f}   (paper 0.99)",
        f"  PMU SPI -> MMU         : {h['p_pmu_to_mmu']:.2f}   (paper 0.82)"
        f"  [mean {h['t_pmu_to_mmu']:.1f}s]",
        f"  PMU SPI -> PMU SPI     : {h['p_pmu_self']:.2f}   (paper 0.18)",
    ]
    return "\n".join(lines)


def render_figure6(propagation: PropagationAnalyzer) -> str:
    """NVLink intra/inter-GPU propagation (paper Figure 6)."""
    h = propagation.hardware_paths()
    involvement = propagation.nvlink_involvement()
    error_state = max(0.0, h["p_nvlink_terminal"] - h["p_nvlink_inter"])
    lines = [
        "Figure 6 - NVLink error propagation (measured vs paper)",
        f"  NVLink -> NVLink (same GPU) : {h['p_nvlink_self']:.2f}  (paper 0.66)",
        f"  NVLink -> peer GPU          : {h['p_nvlink_inter']:.2f}  (paper 0.14)",
        f"  NVLink -> GPU error state   : {error_state:.2f}  (paper 0.20)",
        f"  errors in single-GPU incidents : {involvement.single_gpu_fraction*100:.0f}%"
        "  (paper 84-86%)",
        f"  errors in >=2-GPU incidents    : {involvement.multi_gpu_fraction*100:.0f}%"
        "  (paper 14-16%)",
        f"  errors in >=4-GPU incidents    : "
        f"{(involvement.errors_in_4plus_gpu_incidents / involvement.total_errors * 100) if involvement.total_errors else 0:.0f}%"
        "  (paper ~5%)",
        f"  errors in all-8-GPU incidents  : {involvement.errors_in_all8_incidents}"
        "  (paper 35)",
    ]
    return "\n".join(lines)


def render_figure7(propagation: PropagationAnalyzer) -> str:
    """DBE recovery tree (paper Figure 7)."""
    m = propagation.memory_recovery_paths()
    lines = [
        "Figure 7 - intra-GPU uncorrectable memory error recovery (measured vs paper)",
        f"  DBE -> RRE (remap ok)     : {m['p_dbe_to_rre']:.2f}  (paper 0.50)",
        f"  DBE -> RRF (remap failed) : {m['p_dbe_to_rrf']:.2f}  (paper ~0.47)",
        f"  RRF -> Contained          : {m['p_rrf_to_contained']:.2f}  (paper 0.43)",
        f"  RRF -> Uncontained        : {m['p_rrf_to_uncontained']:.2f}  (paper ~0.11)",
        f"  RRF -> inoperable (term.) : {m['p_rrf_terminal']:.2f}  (paper 0.46)",
        f"  DBE impact alleviated     : {m['dbe_alleviated']*100:.1f}%  (paper 70.6%)",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 9 + availability
# ---------------------------------------------------------------------------


def render_figure9(
    impact: JobImpactAnalyzer, availability: AvailabilityAnalyzer
) -> str:
    histogram = impact.elapsed_histogram()
    lines = ["Figure 9a - jobs vs elapsed time (completed / GPU-failed)"]
    for i in range(len(histogram.completed)):
        lo, hi = histogram.edges_minutes[i], histogram.edges_minutes[i + 1]
        lines.append(
            f"  {lo:>6.0f}-{hi:<6.0f} min : {histogram.completed[i]:>9,} completed"
            f"   {histogram.gpu_failed[i]:>6,} gpu-failed"
        )
    lines.append(
        f"  node-hours lost in GPU-failed jobs: {impact.lost_node_hours():,.0f}"
        "  (paper ~7,500 x scale)"
    )

    lines.append("Figure 9b - mean GPU errors encountered vs job duration")
    series = impact.errors_vs_duration()
    for (mid_c, mean_c), (_, mean_f) in zip(series["completed"], series["gpu_failed"]):
        lines.append(
            f"  ~{mid_c:>7.0f} min : completed {mean_c:6.2f}   gpu-failed {mean_f:6.2f}"
        )

    report = availability.report()
    dist = availability.unavailability_distribution()
    lines.extend(
        [
            "Figure 9c - node unavailability after GPU failures",
            f"  incidents: {report.n_incidents:,}   mean: {dist['mean_hours']:.2f} h"
            "  (paper 0.3 h)",
            f"  P50 {dist['p50_hours']:.2f} h   P95 {dist['p95_hours']:.2f} h"
            f"   P99 {dist['p99_hours']:.2f} h   max {dist['max_hours']:.1f} h",
            f"  total downtime: {report.total_downtime_node_hours:,.0f} node-hours"
            "  (paper ~5,700 x scale)",
            f"  MTTF {report.mttf_hours:.1f} h, MTTR {report.mttr_hours:.2f} h"
            f" -> availability {report.availability*100:.2f}%  (paper 99.5%)",
            f"  downtime per node-day: {report.downtime_minutes_per_day:.1f} min"
            "  (paper ~7 min)",
        ]
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Section 5.4 / 5.5
# ---------------------------------------------------------------------------


def render_overprovision(results: Mapping[Tuple[float, float], float]) -> str:
    table = Table(
        "Section 5.4 - required overprovisioning (800-GPU, 1-month job)",
        ["Recovery (min)", "Availability %", "Overprovision %", "paper"],
    )
    anchors = {(40.0, 0.995): "20%", (5.0, 0.995): "5%"}
    for (recovery, availability), fraction in sorted(results.items()):
        table.add_row(
            recovery,
            availability * 100.0,
            fraction * 100.0,
            anchors.get((recovery, availability), "-"),
        )
    return table.render()


def render_generations(comparison) -> str:
    """The Section-7 generational contrast as a table."""
    table = Table(
        "Generational resilience comparison (prior-literature constants vs measured)",
        ["Generation", "System", "P(interrupt|DBE)", "Remap", "Containment",
         "GSP", "Budget", "Measured"],
    )
    for row in comparison.rows():
        table.add_row(
            row.name,
            row.system,
            row.dbe_job_interruption_prob,
            row.has_row_remapping,
            row.has_error_containment,
            row.has_gsp,
            row.retirement_budget,
            row.measured,
        )
    modes = "\n".join(f"  - {mode}" for mode in comparison.new_failure_modes())
    return table.render() + "\nNew Ampere-era failure modes:\n" + modes


def render_spatial(analyzer, xids: Sequence[int] = (95, 31, 74, 119)) -> str:
    """Section 4.2 (iii)'s concentration story, quantified."""
    table = Table(
        "Spatial error concentration (Gini over the GPU population)",
        ["XID", "Gini", "Top-1 share", "Top-4 share", "GPUs affected %",
         "Offenders (Poisson surprise)"],
    )
    for xid in xids:
        offenders = analyzer.offenders(xid)
        table.add_row(
            xid,
            analyzer.gini(xid),
            analyzer.top_share(xid, 1),
            analyzer.top_share(xid, 4),
            analyzer.affected_gpu_fraction(xid) * 100.0,
            len(offenders),
        )
    return table.render()


def render_counterfactual(report: CounterfactualReport) -> str:
    lines = [
        "Section 5.5 - counterfactual resilience improvements",
        f"  baseline MTBE             : {report.baseline_mtbe_node_hours:.1f} node-h"
        "  (paper 67)",
        f"  without top offenders     : {report.without_offenders_mtbe_node_hours:.1f}"
        f" node-h ({report.offender_improvement:.1f}x)  (paper 190, 3x)",
        f"  also w/o GSP/PMU/NVLink   : "
        f"{report.without_offenders_and_hw_mtbe_node_hours:.1f} node-h"
        f" (+{(report.hardware_additional_improvement-1)*100:.0f}%)  (paper 223, +16%)",
        f"  availability              : {report.baseline_availability*100:.2f}% ->"
        f" {report.improved_availability*100:.2f}%  (paper 99.5% -> 99.9%)",
        f"  offender GPUs removed     : {len(report.removed_gpus)}",
    ]
    return "\n".join(lines)
