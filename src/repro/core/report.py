"""Paper-style result builders and report rendering.

Each ``*_result`` function turns one analyzer's output into a structured
:class:`~repro.results.artifact.ExperimentResult` — named metrics (with
the paper's expected values and tolerance bands attached where the paper
published a number), typed tables, and per-metric support counts.  The
``render_*`` functions are thin wrappers that derive the historical
monospace-text reports from those artifacts; their output is byte-for-byte
identical to the pre-refactor strings (golden-tested), so benchmark output
still doubles as the EXPERIMENTS.md comparison.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.availability import AvailabilityAnalyzer
from repro.core.counterfactual import CounterfactualReport
from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.mtbe import ErrorStatistics
from repro.core.propagation import PropagationAnalyzer
from repro.faults.calibration import (
    CalibrationProfile,
    PAPER_TABLE2,
    expectation_for,
)
from repro.faults.xid import MEMORY_MTBE_XIDS, XID_CATALOG, Xid
from repro.results.artifact import ExperimentResult, Metric, ResultTable
from repro.results.render import render_text
from repro.slurm.workload import SIZE_BUCKETS


def _abbrev(xid: int) -> str:
    try:
        return XID_CATALOG[Xid(xid)].abbreviation
    except (ValueError, KeyError):
        return f"XID {xid}"


def _metric(
    name: str,
    value,
    key: Optional[str] = None,
    *,
    scale: Optional[float] = None,
    unit: str = "",
    support: Optional[int] = None,
) -> Metric:
    """A metric, with its paper expectation attached when registered."""
    expectation = expectation_for(key, scale=scale) if key else None
    return Metric(name=name, value=value, unit=unit,
                  expectation=expectation, support=support)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def table1_result(
    stats: ErrorStatistics,
    profile: Optional[CalibrationProfile] = None,
    scale: float = 1.0,
) -> ExperimentResult:
    """Measured Table 1 with the paper's values alongside (count column
    scaled by the dataset's window scale)."""
    rows = []
    for row in stats.table1_rows():
        cal = profile.xids.get(Xid(row.xid)) if profile and row.xid in {
            int(x) for x in Xid} else None
        rows.append((
            int(row.xid),
            _abbrev(row.xid),
            int(row.count),
            round(cal.count * scale) if cal else "-",
            float(row.mtbe_all_nodes_hours),
            float(row.mtbe_per_node_hours),
            float(cal.paper_mtbe_per_node_hours) if cal else "-",
            float(row.persistence.mean),
            float(row.persistence.p50),
            float(row.persistence.p95),
            float(cal.paper_persistence_mean) if cal else "-",
            float(cal.paper_persistence_p50) if cal else "-",
            float(cal.paper_persistence_p95) if cal else "-",
        ))
    table = ResultTable(
        title="Table 1 - GPU resilience statistics (measured vs paper)",
        headers=(
            "XID", "Event", "Count", "Count(paper*)",
            "MTBE all (h)", "MTBE/node (h)", "MTBE/node paper",
            "Pers. mean", "P50", "P95", "mean paper", "P50 paper", "P95 paper",
        ),
        rows=tuple(rows),
    )
    memory_support = sum(stats.count(int(x)) for x in MEMORY_MTBE_XIDS)
    metrics = (
        _metric("total_errors", int(stats.total_count),
                "table1.total_errors", scale=scale),
        _metric("overall_mtbe_node_hours",
                float(stats.overall_mtbe_node_hours()),
                "table1.overall_mtbe_node_hours", unit="node-hours"),
        _metric("memory_vs_hardware_ratio",
                float(stats.memory_vs_hardware_ratio()),
                "table1.memory_vs_hardware_ratio", support=memory_support),
        _metric("excluded_count", int(stats.excluded_count)),
    )
    return ExperimentResult(
        experiment_id="table1",
        paper_artifact="Table 1",
        title=table.title,
        renderer="table1",
        metrics=metrics,
        tables=(table,),
    )


def render_table1(
    stats: ErrorStatistics,
    profile: Optional[CalibrationProfile] = None,
    scale: float = 1.0,
) -> str:
    return render_text(table1_result(stats, profile, scale))


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


def table2_result(impact: JobImpactAnalyzer, scale: float = 1.0) -> ExperimentResult:
    rows = []
    measured: Dict[int, Tuple[float, int]] = {}
    for row in impact.table2():
        paper = PAPER_TABLE2.get(Xid(row.xid)) if row.xid in {
            int(x) for x in Xid} else None
        probability = float(row.failure_probability * 100.0)
        measured[int(row.xid)] = (probability, int(row.jobs_encountering))
        rows.append((
            int(row.xid),
            _abbrev(row.xid),
            int(row.gpu_failed_jobs),
            int(row.jobs_encountering),
            probability,
            float(paper.failure_pct) if paper else "-",
        ))
    table = ResultTable(
        title="Table 2 - job failure probability given an XID (measured vs paper)",
        headers=("XID", "GPU Error", "#GPU-failed", "#Encountering",
                 "P(fail|XID) %", "paper %"),
        rows=tuple(rows),
    )
    mmu = measured.get(int(Xid.MMU), (float("nan"), 0))
    uncontained = measured.get(int(Xid.UNCONTAINED), (float("nan"), 0))
    metrics = (
        _metric("total_gpu_failed", int(impact.total_gpu_failed()),
                "table2.total_gpu_failed", scale=scale),
        _metric("success_rate_pct", float(impact.success_rate() * 100.0),
                "table2.success_rate_pct", unit="%"),
        _metric("p_fail_mmu_pct", mmu[0], "table2.p_fail_mmu_pct",
                unit="%", support=mmu[1]),
        _metric("p_fail_uncontained_pct", uncontained[0],
                "table2.p_fail_uncontained_pct", unit="%",
                support=uncontained[1]),
    )
    return ExperimentResult(
        experiment_id="table2",
        paper_artifact="Table 2",
        title=table.title,
        renderer="table2",
        metrics=metrics,
        tables=(table,),
    )


def render_table2(impact: JobImpactAnalyzer, scale: float = 1.0) -> str:
    return render_text(table2_result(impact, scale))


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


def table3_result(impact: JobImpactAnalyzer) -> ExperimentResult:
    paper = {b.label: b for b in SIZE_BUCKETS}
    rows = []
    single_share = float("nan")
    total_jobs = 0
    for row in impact.table3():
        ref = paper.get(row.label)
        total_jobs += int(row.count)
        if row.label == "1":
            single_share = float(row.share * 100.0)
        rows.append((
            str(row.label),
            int(row.count),
            float(row.share * 100.0),
            float(ref.count_share * 100.0) if ref else "-",
            float(row.mean_minutes),
            float(ref.mean_minutes) if ref else "-",
            float(row.p50_minutes),
            float(ref.p50_minutes) if ref else "-",
            float(row.p99_minutes),
            float(ref.p99_minutes) if ref else "-",
            float(row.ml_gpu_hours / 1000.0),
            float(row.non_ml_gpu_hours / 1000.0),
        ))
    table = ResultTable(
        title="Table 3 - job distribution and elapsed statistics (measured vs paper)",
        headers=("GPUs", "Count", "Share %", "paper %", "Mean (min)", "paper",
                 "P50", "paper", "P99", "paper", "ML kGPUh", "non-ML kGPUh"),
        rows=tuple(rows),
    )
    metrics = (
        _metric("single_gpu_share_pct", single_share,
                "table3.single_gpu_share_pct", unit="%", support=total_jobs),
        _metric("n_jobs", total_jobs),
    )
    return ExperimentResult(
        experiment_id="table3",
        paper_artifact="Table 3",
        title=table.title,
        renderer="table3",
        metrics=metrics,
        tables=(table,),
    )


def render_table3(impact: JobImpactAnalyzer) -> str:
    return render_text(table3_result(impact))


# ---------------------------------------------------------------------------
# Figures 5-7 (propagation)
# ---------------------------------------------------------------------------


def _xid_counts(propagation: PropagationAnalyzer) -> Counter:
    return Counter(e.xid for e in propagation.errors)


def figure5_result(propagation: PropagationAnalyzer) -> ExperimentResult:
    """Intra-GPU hardware propagation (paper Figure 5)."""
    h = propagation.hardware_paths()
    counts = _xid_counts(propagation)
    gsp = counts.get(int(Xid.GSP), 0)
    pmu = counts.get(int(Xid.PMU_SPI), 0)
    metrics = (
        _metric("p_gsp_self_or_terminal", float(h["p_gsp_self_or_terminal"]),
                "fig5.p_gsp_self_or_terminal", support=gsp),
        _metric("p_gsp_to_pmu", float(h["p_gsp_to_pmu"]),
                "fig5.p_gsp_to_pmu", support=gsp),
        _metric("p_gsp_isolated", float(h["p_gsp_isolated"]),
                "fig5.p_gsp_isolated", support=gsp),
        _metric("p_pmu_to_mmu", float(h["p_pmu_to_mmu"]),
                "fig5.p_pmu_to_mmu", support=pmu),
        _metric("t_pmu_to_mmu", float(h["t_pmu_to_mmu"]),
                unit="s", support=pmu),
        _metric("p_pmu_self", float(h["p_pmu_self"]),
                "fig5.p_pmu_self", support=pmu),
    )
    return ExperimentResult(
        experiment_id="fig5",
        paper_artifact="Figure 5",
        title="Figure 5 - intra-GPU hardware error propagation (measured vs paper)",
        renderer="fig5",
        metrics=metrics,
    )


def render_figure5(propagation: PropagationAnalyzer) -> str:
    return render_text(figure5_result(propagation))


def figure6_result(
    propagation: PropagationAnalyzer, scale: float = 1.0
) -> ExperimentResult:
    """NVLink intra/inter-GPU propagation (paper Figure 6)."""
    h = propagation.hardware_paths()
    involvement = propagation.nvlink_involvement()
    error_state = max(0.0, h["p_nvlink_terminal"] - h["p_nvlink_inter"])
    nvlink = _xid_counts(propagation).get(int(Xid.NVLINK), 0)
    incidents = len(involvement.incident_gpu_counts)
    four_plus_pct = (
        involvement.errors_in_4plus_gpu_incidents / involvement.total_errors * 100
        if involvement.total_errors else 0.0
    )
    metrics = (
        _metric("p_nvlink_self", float(h["p_nvlink_self"]),
                "fig6.p_nvlink_self", support=nvlink),
        _metric("p_nvlink_inter", float(h["p_nvlink_inter"]),
                "fig6.p_nvlink_inter", support=nvlink),
        _metric("p_nvlink_error_state", float(error_state),
                "fig6.p_nvlink_error_state", support=nvlink),
        _metric("single_gpu_pct",
                float(involvement.single_gpu_fraction * 100.0),
                "fig6.single_gpu_pct", unit="%", support=incidents),
        _metric("multi_gpu_pct",
                float(involvement.multi_gpu_fraction * 100.0),
                "fig6.multi_gpu_pct", unit="%", support=incidents),
        _metric("four_plus_gpu_pct", float(four_plus_pct),
                "fig6.four_plus_gpu_pct", unit="%", support=incidents),
        _metric("all8_errors", int(involvement.errors_in_all8_incidents),
                "fig6.all8_errors", scale=scale, support=incidents),
    )
    return ExperimentResult(
        experiment_id="fig6",
        paper_artifact="Figure 6",
        title="Figure 6 - NVLink error propagation (measured vs paper)",
        renderer="fig6",
        metrics=metrics,
    )


def render_figure6(propagation: PropagationAnalyzer) -> str:
    return render_text(figure6_result(propagation))


def figure7_result(propagation: PropagationAnalyzer) -> ExperimentResult:
    """DBE recovery tree (paper Figure 7)."""
    m = propagation.memory_recovery_paths()
    counts = _xid_counts(propagation)
    dbe = counts.get(int(Xid.DBE), 0)
    rrf = counts.get(int(Xid.RRF), 0)
    metrics = (
        _metric("p_dbe_to_rre", float(m["p_dbe_to_rre"]),
                "fig7.p_dbe_to_rre", support=dbe),
        _metric("p_dbe_to_rrf", float(m["p_dbe_to_rrf"]),
                "fig7.p_dbe_to_rrf", support=dbe),
        _metric("p_rrf_to_contained", float(m["p_rrf_to_contained"]),
                "fig7.p_rrf_to_contained", support=rrf),
        _metric("p_rrf_to_uncontained", float(m["p_rrf_to_uncontained"]),
                "fig7.p_rrf_to_uncontained", support=rrf),
        _metric("p_rrf_terminal", float(m["p_rrf_terminal"]),
                "fig7.p_rrf_terminal", support=rrf),
        _metric("dbe_alleviated_pct", float(m["dbe_alleviated"] * 100.0),
                "fig7.dbe_alleviated_pct", unit="%", support=dbe),
    )
    return ExperimentResult(
        experiment_id="fig7",
        paper_artifact="Figure 7",
        title="Figure 7 - intra-GPU uncorrectable memory error recovery "
              "(measured vs paper)",
        renderer="fig7",
        metrics=metrics,
    )


def render_figure7(propagation: PropagationAnalyzer) -> str:
    return render_text(figure7_result(propagation))


# ---------------------------------------------------------------------------
# Figure 9 + availability
# ---------------------------------------------------------------------------


def figure9_result(
    impact: JobImpactAnalyzer,
    availability: AvailabilityAnalyzer,
    scale: float = 1.0,
) -> ExperimentResult:
    histogram = impact.elapsed_histogram()
    histogram_rows = tuple(
        (
            float(histogram.edges_minutes[i]),
            float(histogram.edges_minutes[i + 1]),
            int(histogram.completed[i]),
            int(histogram.gpu_failed[i]),
        )
        for i in range(len(histogram.completed))
    )
    series = impact.errors_vs_duration()
    duration_rows = tuple(
        (float(mid_c), float(mean_c), float(mean_f))
        for (mid_c, mean_c), (_, mean_f) in zip(
            series["completed"], series["gpu_failed"]
        )
    )
    report = availability.report()
    dist = availability.unavailability_distribution()
    incidents = int(report.n_incidents)
    metrics = (
        _metric("lost_node_hours", float(impact.lost_node_hours()),
                "fig9.lost_node_hours", scale=scale, unit="node-hours"),
        _metric("n_incidents", incidents),
        _metric("mean_unavailability_hours", float(dist["mean_hours"]),
                "fig9.mean_unavailability_hours", unit="h", support=incidents),
        _metric("p50_unavailability_hours", float(dist["p50_hours"]), unit="h"),
        _metric("p95_unavailability_hours", float(dist["p95_hours"]), unit="h"),
        _metric("p99_unavailability_hours", float(dist["p99_hours"]), unit="h"),
        _metric("max_unavailability_hours", float(dist["max_hours"]), unit="h"),
        _metric("total_downtime_node_hours",
                float(report.total_downtime_node_hours),
                "fig9.total_downtime_node_hours", scale=scale,
                unit="node-hours"),
        _metric("mttf_hours", float(report.mttf_hours),
                "fig9.mttf_hours", unit="h"),
        _metric("mttr_hours", float(report.mttr_hours),
                "fig9.mttr_hours", unit="h", support=incidents),
        _metric("availability_pct", float(report.availability * 100.0),
                "fig9.availability_pct", unit="%"),
        _metric("downtime_minutes_per_day",
                float(report.downtime_minutes_per_day),
                "fig9.downtime_minutes_per_day", unit="min"),
    )
    tables = (
        ResultTable(
            title="Figure 9a - jobs vs elapsed time (completed / GPU-failed)",
            headers=("lo_minutes", "hi_minutes", "completed", "gpu_failed"),
            rows=histogram_rows,
        ),
        ResultTable(
            title="Figure 9b - mean GPU errors encountered vs job duration",
            headers=("mid_minutes", "completed_mean", "gpu_failed_mean"),
            rows=duration_rows,
        ),
    )
    return ExperimentResult(
        experiment_id="fig9",
        paper_artifact="Figure 9",
        title="Figure 9 - job impact, errors vs duration, node unavailability",
        renderer="fig9",
        metrics=metrics,
        tables=tables,
    )


def render_figure9(
    impact: JobImpactAnalyzer, availability: AvailabilityAnalyzer
) -> str:
    return render_text(figure9_result(impact, availability))


# ---------------------------------------------------------------------------
# Section 5.4 / 5.5
# ---------------------------------------------------------------------------


def overprovision_result(
    results: Mapping[Tuple[float, float], float]
) -> ExperimentResult:
    anchors = {(40.0, 0.995): "20%", (5.0, 0.995): "5%"}
    rows = []
    anchored: Dict[str, float] = {}
    for (recovery, availability), fraction in sorted(results.items()):
        anchor = anchors.get((recovery, availability), "-")
        if anchor != "-":
            anchored[anchor] = float(fraction * 100.0)
        rows.append((
            float(recovery),
            float(availability * 100.0),
            float(fraction * 100.0),
            anchor,
        ))
    table = ResultTable(
        title="Section 5.4 - required overprovisioning (800-GPU, 1-month job)",
        headers=("Recovery (min)", "Availability %", "Overprovision %", "paper"),
        rows=tuple(rows),
    )
    metrics = []
    if "20%" in anchored:
        metrics.append(_metric("overprovision_40min_pct", anchored["20%"],
                               "sec5.4.overprovision_40min_pct", unit="%"))
    if "5%" in anchored:
        metrics.append(_metric("overprovision_5min_pct", anchored["5%"],
                               "sec5.4.overprovision_5min_pct", unit="%"))
    return ExperimentResult(
        experiment_id="sec5.4",
        paper_artifact="Section 5.4",
        title=table.title,
        renderer="overprovision",
        metrics=tuple(metrics),
        tables=(table,),
    )


def render_overprovision(results: Mapping[Tuple[float, float], float]) -> str:
    return render_text(overprovision_result(results))


def generations_result(comparison) -> ExperimentResult:
    """The Section-7 generational contrast as a table."""
    rows = tuple(
        (
            str(row.name),
            str(row.system),
            float(row.dbe_job_interruption_prob),
            bool(row.has_row_remapping),
            bool(row.has_error_containment),
            bool(row.has_gsp),
            int(row.retirement_budget),
            bool(row.measured),
        )
        for row in comparison.rows()
    )
    tables = (
        ResultTable(
            title="Generational resilience comparison "
                  "(prior-literature constants vs measured)",
            headers=("Generation", "System", "P(interrupt|DBE)", "Remap",
                     "Containment", "GSP", "Budget", "Measured"),
            rows=rows,
        ),
        ResultTable(
            title="New Ampere-era failure modes",
            headers=("mode",),
            rows=tuple((str(mode),) for mode in comparison.new_failure_modes()),
        ),
    )
    metrics = (
        _metric("n_generations", len(rows)),
        _metric("n_new_failure_modes", len(tables[1].rows)),
    )
    return ExperimentResult(
        experiment_id="sec7",
        paper_artifact="Section 7",
        title=tables[0].title,
        renderer="generations",
        metrics=metrics,
        tables=tables,
    )


def render_generations(comparison) -> str:
    return render_text(generations_result(comparison))


def spatial_result(
    analyzer, xids: Sequence[int] = (95, 31, 74, 119)
) -> ExperimentResult:
    """Section 4.2 (iii)'s concentration story, quantified."""
    counts = Counter(e.xid for e in analyzer.errors)
    rows = []
    for xid in xids:
        offenders = analyzer.offenders(xid)
        rows.append((
            int(xid),
            float(analyzer.gini(xid)),
            float(analyzer.top_share(xid, 1)),
            float(analyzer.top_share(xid, 4)),
            float(analyzer.affected_gpu_fraction(xid) * 100.0),
            len(offenders),
        ))
    table = ResultTable(
        title="Spatial error concentration (Gini over the GPU population)",
        headers=("XID", "Gini", "Top-1 share", "Top-4 share",
                 "GPUs affected %", "Offenders (Poisson surprise)"),
        rows=tuple(rows),
    )
    uncontained = int(Xid.UNCONTAINED)
    metrics = (
        _metric("uncontained_top1_share",
                float(analyzer.top_share(uncontained, 1)),
                "sec4.2iii.uncontained_top1_share",
                support=counts.get(uncontained, 0)),
        _metric("n_gpus", int(analyzer.n_gpus)),
    )
    return ExperimentResult(
        experiment_id="sec4.2iii",
        paper_artifact="Section 4.2 (iii)",
        title=table.title,
        renderer="spatial",
        metrics=metrics,
        tables=(table,),
    )


def render_spatial(analyzer, xids: Sequence[int] = (95, 31, 74, 119)) -> str:
    return render_text(spatial_result(analyzer, xids))


def counterfactual_result(report: CounterfactualReport) -> ExperimentResult:
    metrics = (
        _metric("baseline_mtbe_node_hours",
                float(report.baseline_mtbe_node_hours),
                "sec5.5.baseline_mtbe_node_hours", unit="node-hours"),
        _metric("without_offenders_mtbe_node_hours",
                float(report.without_offenders_mtbe_node_hours),
                "sec5.5.without_offenders_mtbe_node_hours", unit="node-hours"),
        _metric("offender_improvement", float(report.offender_improvement),
                "sec5.5.offender_improvement", unit="x"),
        _metric("without_offenders_and_hw_mtbe_node_hours",
                float(report.without_offenders_and_hw_mtbe_node_hours),
                "sec5.5.without_offenders_and_hw_mtbe_node_hours",
                unit="node-hours"),
        _metric("hardware_additional_improvement_pct",
                float((report.hardware_additional_improvement - 1) * 100.0),
                "sec5.5.hardware_additional_improvement_pct", unit="%"),
        _metric("baseline_availability_pct",
                float(report.baseline_availability * 100.0),
                "sec5.5.baseline_availability_pct", unit="%"),
        _metric("improved_availability_pct",
                float(report.improved_availability * 100.0),
                "sec5.5.improved_availability_pct", unit="%"),
        _metric("removed_gpus", len(report.removed_gpus)),
    )
    return ExperimentResult(
        experiment_id="sec5.5",
        paper_artifact="Section 5.5",
        title="Section 5.5 - counterfactual resilience improvements",
        renderer="counterfactual",
        metrics=metrics,
    )


def render_counterfactual(report: CounterfactualReport) -> str:
    return render_text(counterfactual_result(report))
