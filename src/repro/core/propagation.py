"""Error-propagation analysis (paper Section 4.4, Figures 5-7).

From the coalesced error stream alone, estimate how errors propagate:

* **intra-GPU**: for each error, the next error on the *same* GPU within a
  window is its successor; ``P(e2 | e1) = #(e1 followed by e2) / #e1``.
* **inter-GPU**: successors on a *different* GPU of the same node (NVLink
  spread, Figure 6).
* **terminal probability**: errors with no successor within the window.

Average propagation times annotate each edge, as on the paper's figures.
The NVLink involvement analysis groups NVLink errors on one node into
incident clusters and counts distinct GPUs per cluster (the 84% / 16% /
all-eight breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coalesce import CoalescedError
from repro.faults.xid import Xid

#: Default propagation window.  Must exceed the 5-second coalescing window
#: (identical messages within that window were already merged) and cover the
#: same-code recurrence delays seen in the data.
DEFAULT_PROPAGATION_WINDOW = 60.0

Edge = Tuple[int, int]  # (source xid, target xid)


@dataclass
class EdgeStats:
    count: int = 0
    total_delay: float = 0.0

    @property
    def mean_delay(self) -> float:
        return self.total_delay / self.count if self.count else float("nan")


@dataclass
class PropagationGraph:
    """Estimated propagation structure over XID codes."""

    window: float
    source_counts: Dict[int, int] = field(default_factory=dict)
    intra_edges: Dict[Edge, EdgeStats] = field(default_factory=dict)
    inter_edges: Dict[Edge, EdgeStats] = field(default_factory=dict)
    #: Errors with no successor at all within the window.
    terminal_counts: Dict[int, int] = field(default_factory=dict)
    #: Errors with no predecessor within the window (isolation, e.g. the
    #: paper's "99% of GSP errors appeared in isolation").
    isolated_counts: Dict[int, int] = field(default_factory=dict)

    def probability(self, source: int, target: int, *, inter: bool = False) -> float:
        """``P(target | source)`` over intra- or inter-GPU edges."""
        n_source = self.source_counts.get(int(source), 0)
        if n_source == 0:
            return 0.0
        edges = self.inter_edges if inter else self.intra_edges
        stats = edges.get((int(source), int(target)))
        return stats.count / n_source if stats else 0.0

    def mean_delay(self, source: int, target: int, *, inter: bool = False) -> float:
        edges = self.inter_edges if inter else self.intra_edges
        stats = edges.get((int(source), int(target)))
        return stats.mean_delay if stats else float("nan")

    def terminal_probability(self, source: int) -> float:
        n_source = self.source_counts.get(int(source), 0)
        if n_source == 0:
            return 0.0
        return self.terminal_counts.get(int(source), 0) / n_source

    def isolation_probability(self, source: int) -> float:
        n_source = self.source_counts.get(int(source), 0)
        if n_source == 0:
            return 0.0
        return self.isolated_counts.get(int(source), 0) / n_source

    def successors(self, source: int) -> List[Tuple[int, float, float]]:
        """(target, probability, mean delay) intra-GPU edges out of a code."""
        out = []
        for (src, dst), stats in sorted(self.intra_edges.items()):
            if src == int(source):
                out.append((dst, self.probability(src, dst), stats.mean_delay))
        return out

    def to_networkx(self):
        """The intra-GPU propagation graph as a weighted DiGraph."""
        import networkx as nx

        graph = nx.DiGraph()
        for xid, count in self.source_counts.items():
            graph.add_node(xid, count=count)
        for (src, dst), stats in self.intra_edges.items():
            graph.add_edge(src, dst, probability=self.probability(src, dst),
                           mean_delay=stats.mean_delay, count=stats.count)
        return graph


@dataclass(frozen=True)
class NVLinkInvolvement:
    """Figure 6's multi-GPU involvement breakdown."""

    total_errors: int
    errors_in_multi_gpu_incidents: int
    errors_in_4plus_gpu_incidents: int
    errors_in_all8_incidents: int
    incident_gpu_counts: Tuple[int, ...]

    @property
    def single_gpu_fraction(self) -> float:
        if self.total_errors == 0:
            return 0.0
        return 1.0 - self.errors_in_multi_gpu_incidents / self.total_errors

    @property
    def multi_gpu_fraction(self) -> float:
        if self.total_errors == 0:
            return 0.0
        return self.errors_in_multi_gpu_incidents / self.total_errors


class PropagationAnalyzer:
    """Estimate propagation statistics from coalesced errors."""

    def __init__(
        self,
        errors: Sequence[CoalescedError],
        window: float = DEFAULT_PROPAGATION_WINDOW,
    ) -> None:
        if window <= 0:
            raise ValueError("propagation window must be positive")
        self.window = window
        self.errors = sorted(errors, key=lambda e: e.time)
        self._by_gpu: Dict[Tuple[str, str], List[CoalescedError]] = {}
        self._by_node: Dict[str, List[CoalescedError]] = {}
        for error in self.errors:
            self._by_gpu.setdefault(error.gpu_key, []).append(error)
            self._by_node.setdefault(error.node_id, []).append(error)

    # ------------------------------------------------------------------

    def analyze(self) -> PropagationGraph:
        graph = PropagationGraph(window=self.window)
        for error in self.errors:
            graph.source_counts[error.xid] = graph.source_counts.get(error.xid, 0) + 1

        for gpu_errors in self._by_gpu.values():
            times = np.array([e.time for e in gpu_errors])
            for i, error in enumerate(gpu_errors):
                # Successor: the next error on this GPU within the window,
                # measured from the end of this error's burst (the driver
                # cannot log a distinct follow-up while still repeating the
                # same message).
                if i + 1 < len(gpu_errors):
                    successor = gpu_errors[i + 1]
                    gap = successor.time - error.end_time
                    if 0.0 <= gap <= self.window or (
                        successor.time - error.time
                    ) <= self.window:
                        edge = (error.xid, successor.xid)
                        stats = graph.intra_edges.setdefault(edge, EdgeStats())
                        stats.count += 1
                        stats.total_delay += successor.time - error.time
                        continue
                graph.terminal_counts[error.xid] = (
                    graph.terminal_counts.get(error.xid, 0) + 1
                )
            # Isolation: no predecessor within the window.
            for i, error in enumerate(gpu_errors):
                if i == 0 or (error.time - gpu_errors[i - 1].end_time) > self.window:
                    graph.isolated_counts[error.xid] = (
                        graph.isolated_counts.get(error.xid, 0) + 1
                    )

        self._analyze_inter_gpu(graph)
        return graph

    def _analyze_inter_gpu(self, graph: PropagationGraph) -> None:
        """Nearest cross-GPU successor within the window, per node."""
        for node_errors in self._by_node.values():
            n = len(node_errors)
            for i, error in enumerate(node_errors):
                for j in range(i + 1, n):
                    other = node_errors[j]
                    if other.time - error.time > self.window:
                        break
                    if other.gpu_key == error.gpu_key:
                        continue
                    edge = (error.xid, other.xid)
                    stats = graph.inter_edges.setdefault(edge, EdgeStats())
                    stats.count += 1
                    stats.total_delay += other.time - error.time
                    break  # nearest cross-GPU successor only

    # ------------------------------------------------------------------

    def nvlink_involvement(self, incident_window: float | None = None) -> NVLinkInvolvement:
        """Cluster NVLink errors per node and count involved GPUs.

        Errors on one node whose inter-arrival gaps stay within the window
        form one incident; an incident's involvement is its number of
        distinct GPUs.
        """
        window = incident_window if incident_window is not None else self.window
        multi = 0
        four_plus = 0
        all8 = 0
        total = 0
        incident_sizes: List[int] = []
        for node_errors in self._by_node.values():
            nvlink = [e for e in node_errors if e.xid == int(Xid.NVLINK)]
            if not nvlink:
                continue
            cluster: List[CoalescedError] = []
            last_time: Optional[float] = None
            for error in nvlink + [None]:  # type: ignore[list-item]
                if error is not None and (
                    last_time is None or error.time - last_time <= window
                ):
                    cluster.append(error)
                    last_time = error.time
                    continue
                if cluster:
                    gpus = {e.gpu_key for e in cluster}
                    size = len(cluster)
                    total += size
                    incident_sizes.append(len(gpus))
                    if len(gpus) >= 2:
                        multi += size
                    if len(gpus) >= 4:
                        four_plus += size
                    if len(gpus) >= 8:
                        all8 += size
                if error is not None:
                    cluster = [error]
                    last_time = error.time
        return NVLinkInvolvement(
            total_errors=total,
            errors_in_multi_gpu_incidents=multi,
            errors_in_4plus_gpu_incidents=four_plus,
            errors_in_all8_incidents=all8,
            incident_gpu_counts=tuple(incident_sizes),
        )

    # ------------------------------------------------------------------

    def memory_recovery_paths(self, graph: PropagationGraph | None = None) -> Dict[str, float]:
        """Figure 7's DBE recovery tree, as measured.

        Returns the branch probabilities plus the overall DBE "alleviation"
        rate (RRE success + containment after RRF), the paper's 70.6%.
        """
        graph = graph or self.analyze()
        p_dbe_rre = graph.probability(Xid.DBE, Xid.RRE)
        p_dbe_rrf = graph.probability(Xid.DBE, Xid.RRF)
        p_rrf_contained = graph.probability(Xid.RRF, Xid.CONTAINED)
        p_rrf_uncontained = graph.probability(Xid.RRF, Xid.UNCONTAINED)
        alleviated = p_dbe_rre + p_dbe_rrf * p_rrf_contained
        return {
            "p_dbe_to_rre": p_dbe_rre,
            "p_dbe_to_rrf": p_dbe_rrf,
            "p_rrf_to_contained": p_rrf_contained,
            "p_rrf_to_uncontained": p_rrf_uncontained,
            "p_rrf_terminal": graph.terminal_probability(Xid.RRF),
            "dbe_alleviated": alleviated,
        }

    def hardware_paths(self, graph: PropagationGraph | None = None) -> Dict[str, float]:
        """Figure 5's headline hardware-propagation numbers, as measured."""
        graph = graph or self.analyze()
        return {
            "p_gsp_self_or_terminal": graph.probability(Xid.GSP, Xid.GSP)
            + graph.terminal_probability(Xid.GSP),
            "p_gsp_to_pmu": graph.probability(Xid.GSP, Xid.PMU_SPI),
            "p_gsp_isolated": graph.isolation_probability(Xid.GSP),
            "p_pmu_to_mmu": graph.probability(Xid.PMU_SPI, Xid.MMU),
            "p_pmu_self": graph.probability(Xid.PMU_SPI, Xid.PMU_SPI),
            "t_pmu_to_mmu": graph.mean_delay(Xid.PMU_SPI, Xid.MMU),
            "p_nvlink_self": graph.probability(Xid.NVLINK, Xid.NVLINK),
            "p_nvlink_inter": graph.probability(Xid.NVLINK, Xid.NVLINK, inter=True),
            "p_nvlink_terminal": graph.terminal_probability(Xid.NVLINK),
        }
