"""Counterfactual resilience analysis (paper Section 5.5).

Two what-if scenarios over the measured error set:

1. **Remove top-offending GPUs** per error code (comprehensive burn-in
   testing and monitoring would have culled the defective parts): the paper
   reports MTBE improving 67 -> 190 node-hours (3x).
2. **Additionally remove GSP, PMU SPI, and NVLink errors** (more resilient
   peripheral hardware): a further 16% improvement to 223 node-hours.

The improved MTBE feeds back into the availability estimate
(99.5% -> 99.9%) and, through :mod:`repro.core.overprovision`, into the 4x
overprovisioning reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.mtbe import ErrorStatistics
from repro.faults.xid import Xid


@dataclass(frozen=True)
class CounterfactualReport:
    baseline_mtbe_node_hours: float
    without_offenders_mtbe_node_hours: float
    without_offenders_and_hw_mtbe_node_hours: float
    removed_gpus: Tuple[Tuple[str, str], ...]
    mttr_hours: float

    @property
    def offender_improvement(self) -> float:
        return self.without_offenders_mtbe_node_hours / self.baseline_mtbe_node_hours

    @property
    def hardware_additional_improvement(self) -> float:
        return (
            self.without_offenders_and_hw_mtbe_node_hours
            / self.without_offenders_mtbe_node_hours
        )

    def availability(self, mtbe_node_hours: float | None = None) -> float:
        mttf = (
            mtbe_node_hours
            if mtbe_node_hours is not None
            else self.without_offenders_and_hw_mtbe_node_hours
        )
        return mttf / (mttf + self.mttr_hours)

    @property
    def baseline_availability(self) -> float:
        return self.availability(self.baseline_mtbe_node_hours)

    @property
    def improved_availability(self) -> float:
        return self.availability()


#: Peripheral-hardware codes excluded in the second scenario.
HARDWARE_EXCLUSION = (Xid.GSP, Xid.PMU_SPI, Xid.NVLINK)


class CounterfactualAnalyzer:
    """What-if MTBE/availability under offender and hardware exclusions."""

    def __init__(
        self,
        stats: ErrorStatistics,
        mttr_hours: float,
        *,
        offender_share_threshold: float = 0.02,
        max_offenders_per_xid: int = 8,
    ) -> None:
        self.stats = stats
        self.mttr_hours = mttr_hours
        self.offender_share_threshold = offender_share_threshold
        self.max_offenders_per_xid = max_offenders_per_xid

    # ------------------------------------------------------------------

    def offender_gpus(self) -> List[Tuple[str, str]]:
        """GPUs contributing an outsized share of any single code's errors.

        For each code, GPUs are taken in decreasing contribution order while
        each still holds more than ``offender_share_threshold`` of that
        code's total, up to ``max_offenders_per_xid`` — the paper's
        "top-offending GPUs for each GPU error".
        """
        offenders: List[Tuple[str, str]] = []
        for xid in self.stats.counts():
            total = self.stats.count(xid)
            if total == 0:
                continue
            for gpu, count in self.stats.top_offenders(xid, self.max_offenders_per_xid):
                if count / total > self.offender_share_threshold and count > 1:
                    offenders.append(gpu)
        return sorted(set(offenders))

    def analyze(self) -> CounterfactualReport:
        baseline = self.stats.overall_mtbe_node_hours()
        offenders = self.offender_gpus()
        without_offenders = self.stats.restricted(exclude_gpus=offenders)
        scenario1 = without_offenders.overall_mtbe_node_hours()
        without_hw = without_offenders.restricted(
            exclude_xids=[int(x) for x in HARDWARE_EXCLUSION]
        )
        scenario2 = without_hw.overall_mtbe_node_hours()
        return CounterfactualReport(
            baseline_mtbe_node_hours=baseline,
            without_offenders_mtbe_node_hours=scenario1,
            without_offenders_and_hw_mtbe_node_hours=scenario2,
            removed_gpus=tuple(offenders),
            mttr_hours=self.mttr_hours,
        )
