"""Job-impact analysis (paper Section 5, Tables 2-3, Figures 9a-9b).

Joins the Slurm accounting database against coalesced GPU errors:

* **encounters** — a job encounters an XID if an error of that code occurs
  on one of its allocated GPUs during its runtime;
* **GPU-failed classification** — a job is *GPU-failed* if it did not
  complete and a GPU error occurred on its allocation within the 20-second
  window before its end time; every code in that window is considered
  responsible (paper Section 5.3);
* **Table 2** — per-XID job-failure probability;
* **Table 3** — job-size buckets with elapsed statistics and ML/non-ML
  GPU-hours (ML-ness inferred from the submission name, as in the paper);
* **Figures 9a/9b** — elapsed-time histograms of completed vs GPU-failed
  jobs, and error-encounter counts vs duration.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.coalesce import CoalescedError
from repro.faults.xid import XID_CATALOG, Xid
from repro.slurm.accounting import SlurmDatabase
from repro.slurm.job import GpuKey, JobRecord
from repro.slurm.workload import SIZE_BUCKETS, classify_ml

#: The paper's attribution window: an error within this many seconds before
#: a job's failure is considered responsible.
ATTRIBUTION_WINDOW = 20.0

_KNOWN = {int(x) for x in Xid}


def _studied(xid: int) -> bool:
    return xid in _KNOWN and XID_CATALOG[Xid(xid)].studied


@dataclass(frozen=True)
class Table2Row:
    xid: int
    gpu_failed_jobs: int
    jobs_encountering: int

    @property
    def failure_probability(self) -> float:
        if self.jobs_encountering == 0:
            return float("nan")
        return self.gpu_failed_jobs / self.jobs_encountering


@dataclass(frozen=True)
class Table3Row:
    label: str
    count: int
    share: float
    mean_minutes: float
    p50_minutes: float
    p99_minutes: float
    ml_gpu_hours: float
    non_ml_gpu_hours: float


@dataclass(frozen=True)
class ElapsedHistogram:
    """Figure 9a: completed vs GPU-failed job counts per elapsed-time bin."""

    edges_minutes: Tuple[float, ...]
    completed: Tuple[int, ...]
    gpu_failed: Tuple[int, ...]


class JobImpactAnalyzer:
    """Correlate GPU errors with user jobs."""

    def __init__(
        self,
        database: SlurmDatabase,
        errors: Sequence[CoalescedError],
        attribution_window: float = ATTRIBUTION_WINDOW,
    ) -> None:
        self.database = database
        self.attribution_window = attribution_window
        self.errors = [e for e in errors if _studied(e.xid)]
        # Per-GPU time index over errors for range queries.
        self._gpu_times: Dict[GpuKey, np.ndarray] = {}
        self._gpu_xids: Dict[GpuKey, np.ndarray] = {}
        per_gpu: Dict[GpuKey, List[Tuple[float, int]]] = {}
        for error in self.errors:
            per_gpu.setdefault(error.gpu_key, []).append((error.time, error.xid))
        for gpu, pairs in per_gpu.items():
            pairs.sort()
            self._gpu_times[gpu] = np.array([t for t, _ in pairs])
            self._gpu_xids[gpu] = np.array([x for _, x in pairs], dtype=np.int64)
        self._classified: Optional[Dict[int, Tuple[bool, Tuple[int, ...]]]] = None

    # ------------------------------------------------------------------
    # Core joins
    # ------------------------------------------------------------------

    def errors_on_job(
        self, job: JobRecord, start: float | None = None, end: float | None = None
    ) -> List[int]:
        """XIDs of errors on the job's allocation within [start, end]."""
        lo = job.start_time if start is None else start
        hi = job.end_time if end is None else end
        found: List[int] = []
        for gpu in job.gpus:
            times = self._gpu_times.get(gpu)
            if times is None:
                continue
            left = int(np.searchsorted(times, lo, side="left"))
            right = int(np.searchsorted(times, hi, side="right"))
            found.extend(int(x) for x in self._gpu_xids[gpu][left:right])
        return found

    def classify_jobs(self) -> Dict[int, Tuple[bool, Tuple[int, ...]]]:
        """Per job: (is GPU-failed, responsible XIDs).

        A job is GPU-failed when it did not succeed and at least one studied
        error hit its allocation within the attribution window before its
        end; the responsible set is every code in that window.
        """
        if self._classified is not None:
            return self._classified
        out: Dict[int, Tuple[bool, Tuple[int, ...]]] = {}
        for job in self.database.jobs:
            if job.succeeded:
                out[job.job_id] = (False, ())
                continue
            responsible = self.errors_on_job(
                job, start=job.end_time - self.attribution_window, end=job.end_time
            )
            out[job.job_id] = (bool(responsible), tuple(sorted(set(responsible))))
        self._classified = out
        return out

    def gpu_failed_jobs(self) -> List[JobRecord]:
        classified = self.classify_jobs()
        return [j for j in self.database.jobs if classified[j.job_id][0]]

    # ------------------------------------------------------------------
    # Table 2
    # ------------------------------------------------------------------

    def table2(self) -> List[Table2Row]:
        classified = self.classify_jobs()
        encountering: Dict[int, Set[int]] = {}
        failed: Dict[int, Set[int]] = {}
        for job in self.database.jobs:
            xids_seen = set(self.errors_on_job(job))
            for xid in xids_seen:
                encountering.setdefault(xid, set()).add(job.job_id)
            is_failed, responsible = classified[job.job_id]
            if is_failed:
                for xid in responsible:
                    failed.setdefault(xid, set()).add(job.job_id)
                    # A job can fail on an error arriving in its final
                    # seconds that the runtime join above also counts; make
                    # sure the denominator includes every failing job.
                    encountering.setdefault(xid, set()).add(job.job_id)
        rows = [
            Table2Row(
                xid=xid,
                gpu_failed_jobs=len(failed.get(xid, set())),
                jobs_encountering=len(jobs),
            )
            for xid, jobs in encountering.items()
        ]
        rows.sort(key=lambda r: r.gpu_failed_jobs, reverse=True)
        return rows

    def total_gpu_failed(self) -> int:
        return len(self.gpu_failed_jobs())

    # ------------------------------------------------------------------
    # Table 3
    # ------------------------------------------------------------------

    def table3(self) -> List[Table3Row]:
        total = len(self.database.jobs) or 1
        rows: List[Table3Row] = []
        for bucket in SIZE_BUCKETS:
            jobs = [
                j
                for j in self.database.jobs
                if bucket.min_gpus <= j.n_gpus <= bucket.max_gpus
            ]
            if not jobs:
                rows.append(Table3Row(bucket.label, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0))
                continue
            elapsed = np.array([j.elapsed_minutes for j in jobs])
            ml_hours = sum(j.gpu_hours for j in jobs if classify_ml(j.name))
            non_ml_hours = sum(j.gpu_hours for j in jobs if not classify_ml(j.name))
            rows.append(
                Table3Row(
                    label=bucket.label,
                    count=len(jobs),
                    share=len(jobs) / total,
                    mean_minutes=float(elapsed.mean()),
                    p50_minutes=float(np.percentile(elapsed, 50)),
                    p99_minutes=float(np.percentile(elapsed, 99)),
                    ml_gpu_hours=ml_hours,
                    non_ml_gpu_hours=non_ml_hours,
                )
            )
        return rows

    def success_rate(self) -> float:
        return self.database.success_rate()

    # ------------------------------------------------------------------
    # Figures 9a / 9b
    # ------------------------------------------------------------------

    def elapsed_histogram(
        self, edges_minutes: Sequence[float] = (0, 10, 60, 240, 1000, 2000, 4000, 8000)
    ) -> ElapsedHistogram:
        classified = self.classify_jobs()
        completed_elapsed = [
            j.elapsed_minutes for j in self.database.jobs if j.succeeded
        ]
        failed_elapsed = [
            j.elapsed_minutes
            for j in self.database.jobs
            if classified[j.job_id][0]
        ]
        edges = np.asarray(edges_minutes, dtype=float)
        completed, _ = np.histogram(completed_elapsed, bins=edges)
        failed, _ = np.histogram(failed_elapsed, bins=edges)
        return ElapsedHistogram(
            edges_minutes=tuple(edges),
            completed=tuple(int(c) for c in completed),
            gpu_failed=tuple(int(c) for c in failed),
        )

    def lost_node_hours(self) -> float:
        """Node-hours of work wasted in GPU-failed jobs (paper: ~7,500)."""
        return sum(j.node_hours for j in self.gpu_failed_jobs())

    def errors_vs_duration(
        self, edges_minutes: Sequence[float] = (0, 60, 500, 1000, 2000, 4000, 90000)
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Figure 9b: mean errors encountered per duration bin, for
        completed and GPU-failed jobs."""
        classified = self.classify_jobs()
        edges = list(edges_minutes)
        sums = {"completed": [0.0] * (len(edges) - 1), "gpu_failed": [0.0] * (len(edges) - 1)}
        counts = {"completed": [0] * (len(edges) - 1), "gpu_failed": [0] * (len(edges) - 1)}
        for job in self.database.jobs:
            is_failed = classified[job.job_id][0]
            if not is_failed and not job.succeeded:
                continue  # non-GPU failures are out of scope for this figure
            key = "gpu_failed" if is_failed else "completed"
            n_errors = len(self.errors_on_job(job))
            b = bisect_right(edges, job.elapsed_minutes) - 1
            if 0 <= b < len(edges) - 1:
                sums[key][b] += n_errors
                counts[key][b] += 1
        out: Dict[str, List[Tuple[float, float]]] = {}
        for key in ("completed", "gpu_failed"):
            series = []
            for b in range(len(edges) - 1):
                mid = (edges[b] + edges[b + 1]) / 2.0
                mean = sums[key][b] / counts[key][b] if counts[key][b] else 0.0
                series.append((mid, mean))
            out[key] = series
        return out
