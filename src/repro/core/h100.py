"""H100 early-deployment analysis (paper Section 6).

The GH200/H100 partition entered service later and runs at low utilization;
the paper reports per-code counts, an MTBE of 4,114 node-hours, the unusual
DBE/RRF-without-RRE pattern, and the dominance of the undocumented XID 136.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.coalesce import CoalescedError
from repro.core.mtbe import ErrorStatistics
from repro.core.propagation import PropagationAnalyzer
from repro.faults.xid import Xid


@dataclass(frozen=True)
class H100Report:
    counts: Dict[int, int]
    mtbe_node_hours: float
    #: Section 6's anomaly: RRFs without preceding RREs.
    rre_count: int
    dbe_count: int
    rrf_count: int
    xid136_count: int
    xid136_share: float

    @property
    def has_remap_anomaly(self) -> bool:
        """DBE/RRF present while RREs are absent — the paper's "unusual"
        signature of exhausted remappable rows."""
        return (self.dbe_count > 0 or self.rrf_count > 0) and self.rre_count == 0


class H100Analyzer:
    """Summarize the Hopper partition's early error behaviour."""

    def __init__(self, stats: ErrorStatistics) -> None:
        self.stats = stats

    def report(self) -> H100Report:
        counts = self.stats.counts()
        total = self.stats.total_count or 1
        return H100Report(
            counts=counts,
            mtbe_node_hours=self.stats.overall_mtbe_node_hours(),
            rre_count=counts.get(int(Xid.RRE), 0),
            dbe_count=counts.get(int(Xid.DBE), 0),
            rrf_count=counts.get(int(Xid.RRF), 0),
            xid136_count=counts.get(int(Xid.XID_136), 0),
            xid136_share=counts.get(int(Xid.XID_136), 0) / total,
        )

    def dbe_successors(self, errors: Sequence[CoalescedError]) -> Dict[int, float]:
        """P(successor | DBE) on the Hopper data: the paper expects RRF, not
        RRE, to follow DBEs here."""
        graph = PropagationAnalyzer(errors).analyze()
        return {
            int(Xid.RRE): graph.probability(Xid.DBE, Xid.RRE),
            int(Xid.RRF): graph.probability(Xid.DBE, Xid.RRF),
        }
