"""Overprovisioning projection for large long-running jobs (paper Sec. 5.4).

The paper built a discrete-event "emulation" of a gang-scheduled training
job that needs all ``N`` nodes to progress: nodes fail, each failure costs a
checkpoint-recovery stall, and the failed node is unavailable while it
drains/reboots; spare nodes absorb failures so the job is not blocked.  The
published anchor points are:

* 800 GPUs, 1-month job, 1% single-GPU failure chance per hour,
  40-minute recovery  -> **20%** overprovisioning (160 spares);
* recovery reduced to 5 minutes -> **5%**;
* availability improved from 99.5% to 99.9% -> ~**4x** less overprovisioning.

The paper does not specify its node-unavailability model, so we use an
explicit one (documented in DESIGN.md): a failed node is held out of the
pool for an exponentially-distributed time whose mean is *affine in the
recovery time*,

    E[T_hold] = HOLD_BASE_HOURS + HOLD_PER_RECOVERY_HOUR * recovery_hours,

capturing that slower per-failure recovery pipelines (checkpoint restore,
validation, reintegration) hold nodes longer.  The two constants are
calibrated once from the paper's two anchor points and then *everything
else* — the sweep shape, the availability projection — follows from the
model.  Required overprovisioning is the smallest spare fraction that keeps
the job's blocked-time fraction under a threshold.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import check_positive, check_probability

#: Calibrated from the paper's anchors (see module docstring / DESIGN.md):
#: solving  q997(8h * (a + b*40min)) = 160  and  q997(8h * (a + b*5min)) = 40.
HOLD_BASE_HOURS = 1.25
HOLD_PER_RECOVERY_HOUR = 21.8

#: The availability level the base failure rate corresponds to (paper: each
#: GPU node has two nines; measured 99.5%).
BASE_AVAILABILITY = 0.995


def _hold_mean_hours(recovery_minutes: float) -> float:
    return HOLD_BASE_HOURS + HOLD_PER_RECOVERY_HOUR * recovery_minutes / 60.0


def _rate_scale_for_availability(availability: float) -> float:
    """Failure-rate multiplier for a target availability vs the base.

    Availability = MTTF/(MTTF+MTTR) with MTTR fixed, so the failure rate
    scales with (1-A)/A relative to the base level.
    """
    check_probability("availability", availability)
    base_odds = (1.0 - BASE_AVAILABILITY) / BASE_AVAILABILITY
    odds = (1.0 - availability) / availability
    return odds / base_odds


@dataclass(frozen=True)
class OverprovisionConfig:
    """Scenario parameters (defaults = the paper's headline scenario)."""

    n_nodes: int = 800
    duration_days: float = 30.0
    #: Per-GPU(-node) failure probability per hour at the base availability.
    failure_prob_per_hour: float = 0.01
    recovery_minutes: float = 40.0
    availability: float = BASE_AVAILABILITY
    #: Job counts as blocked when fewer than n_nodes are operational.
    max_blocked_fraction: float = 0.005
    n_trials: int = 5
    seed: int = 7

    def __post_init__(self) -> None:
        check_positive("n_nodes", self.n_nodes)
        check_positive("duration_days", self.duration_days)
        check_probability("failure_prob_per_hour", self.failure_prob_per_hour)
        check_positive("recovery_minutes", self.recovery_minutes)

    @property
    def effective_failure_rate_per_hour(self) -> float:
        """Cluster-wide failure arrival rate (failures/hour)."""
        return (
            self.n_nodes
            * self.failure_prob_per_hour
            * _rate_scale_for_availability(self.availability)
        )

    @property
    def hold_mean_hours(self) -> float:
        return _hold_mean_hours(self.recovery_minutes)


@dataclass(frozen=True)
class TrialResult:
    blocked_fraction: float
    stall_fraction: float
    peak_down: int
    n_failures: int

    @property
    def goodput(self) -> float:
        return max(0.0, 1.0 - self.blocked_fraction - self.stall_fraction)


def required_overprovision_analytic(
    config: OverprovisionConfig, confidence: float = 0.995
) -> float:
    """Closed-form estimate: spares = Poisson quantile of concurrent holds.

    Concurrently-held nodes form an M/G/inf queue with offered load
    ``m = rate * E[T_hold]``; the required spare count is the Poisson(m)
    quantile at the confidence level (normal approximation).
    """
    m = config.effective_failure_rate_per_hour * config.hold_mean_hours
    if m <= 0:
        return 0.0
    z = {0.99: 2.326, 0.995: 2.576, 0.999: 3.090}.get(round(confidence, 3))
    if z is None:
        # Inverse-normal via Newton on the error function; good enough for
        # the confidence range this model is used with.
        from scipy.stats import norm  # optional dependency; available here

        z = float(norm.ppf(confidence))
    spares = m + z * math.sqrt(m)
    return spares / config.n_nodes


class OverprovisionSimulator:
    """Discrete-event simulation of the spare-pool scenario."""

    def __init__(self, config: OverprovisionConfig | None = None) -> None:
        self.config = config or OverprovisionConfig()

    # ------------------------------------------------------------------

    def run_trial(self, spares: int, trial: int = 0) -> TrialResult:
        """One simulated job execution with a fixed spare count."""
        config = self.config
        rng = spawn_rng(config.seed, "overprovision", str(trial), str(spares))
        horizon = config.duration_days * 24.0
        rate = config.effective_failure_rate_per_hour
        hold_mean = config.hold_mean_hours
        recovery_hours = config.recovery_minutes / 60.0

        t = 0.0
        down: List[float] = []  # heap of repair-completion times
        blocked_time = 0.0
        blocked_until = 0.0  # high-water mark so overlapping blocks don't double-count
        stall_time = 0.0
        peak_down = 0
        n_failures = 0
        while True:
            step = rng.exponential(1.0 / rate) if rate > 0 else horizon
            t_next = t + step
            if t_next >= horizon:
                break
            # Advance: clear any repairs completing before the failure.
            while down and down[0] <= t_next:
                heapq.heappop(down)
            t = t_next
            n_failures += 1
            heapq.heappush(down, t + rng.exponential(hold_mean))
            n_down = len(down)
            peak_down = max(peak_down, n_down)
            # The job stalls for the checkpoint-recovery time on every
            # failure (overlapping stalls coalesce is ignored: stalls are
            # short relative to failure interarrivals in the calibrated
            # regime, and the paper's metric is capacity, not goodput).
            stall_time += recovery_hours
            if n_down > spares:
                # Not enough spares: blocked until the down count falls back
                # to the spare level; overlapping block intervals merge via
                # the high-water mark.
                deficit_until = min(sorted(down)[n_down - spares - 1], horizon)
                start = max(t, blocked_until)
                if deficit_until > start:
                    blocked_time += deficit_until - start
                    blocked_until = deficit_until
        return TrialResult(
            blocked_fraction=min(1.0, blocked_time / horizon),
            stall_fraction=min(1.0, stall_time / horizon),
            peak_down=peak_down,
            n_failures=n_failures,
        )

    def blocked_fraction(self, spares: int) -> float:
        """Mean blocked fraction over the configured trials."""
        results = [self.run_trial(spares, trial) for trial in range(self.config.n_trials)]
        return float(np.mean([r.blocked_fraction for r in results]))

    # ------------------------------------------------------------------

    def required_overprovision(self) -> float:
        """Smallest spare fraction keeping blocked time under the threshold.

        Binary search over the spare count, seeded by the analytic estimate.
        """
        config = self.config
        guess = int(math.ceil(required_overprovision_analytic(config) * config.n_nodes))
        hi = max(4, guess * 2)
        while self.blocked_fraction(hi) > config.max_blocked_fraction:
            hi *= 2
            if hi > config.n_nodes * 2:
                break
        lo = 0
        while lo < hi:
            mid = (lo + hi) // 2
            if self.blocked_fraction(mid) <= config.max_blocked_fraction:
                hi = mid
            else:
                lo = mid + 1
        return hi / config.n_nodes

    def sweep(
        self,
        recovery_minutes: Sequence[float] = (5.0, 10.0, 20.0, 40.0),
        availabilities: Sequence[float] = (BASE_AVAILABILITY,),
    ) -> Dict[Tuple[float, float], float]:
        """Required overprovision over a (recovery, availability) grid."""
        out: Dict[Tuple[float, float], float] = {}
        for availability in availabilities:
            for recovery in recovery_minutes:
                config = replace(
                    self.config, recovery_minutes=recovery, availability=availability
                )
                out[(recovery, availability)] = OverprovisionSimulator(
                    config
                ).required_overprovision()
        return out
