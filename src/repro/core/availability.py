"""Node availability analysis (paper Section 5.4, Figure 9c).

Availability is estimated as ``MTTF / (MTTF + MTTR)`` where the node MTTF is
derived from the overall error MTBE (the paper conservatively assumes every
GPU error interrupts its node) and the MTTR is the mean node-unavailability
duration from the drain/reboot events recorded in the scheduler database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.mtbe import ErrorStatistics
from repro.slurm.accounting import NodeEvent


@dataclass(frozen=True)
class AvailabilityReport:
    mttf_hours: float
    mttr_hours: float
    availability: float
    total_downtime_node_hours: float
    n_incidents: int

    @property
    def downtime_minutes_per_day(self) -> float:
        return (1.0 - self.availability) * 24.0 * 60.0


class AvailabilityAnalyzer:
    """Availability and repair-time distribution from node events."""

    def __init__(
        self,
        node_events: Sequence[NodeEvent],
        error_statistics: ErrorStatistics,
    ) -> None:
        self.node_events = list(node_events)
        self.stats = error_statistics
        self._durations = np.array([e.duration_hours for e in self.node_events])

    # ------------------------------------------------------------------

    def mttf_hours(self) -> float:
        """Node MTTF: per-node error MTBE, conservatively treating every
        error as a node interruption (paper footnote 10)."""
        return self.stats.overall_mtbe_node_hours()

    def mttr_hours(self) -> float:
        if self._durations.size == 0:
            return 0.0
        return float(self._durations.mean())

    def availability(self) -> float:
        mttf = self.mttf_hours()
        mttr = self.mttr_hours()
        if not np.isfinite(mttf):
            return 1.0
        return mttf / (mttf + mttr)

    def report(self) -> AvailabilityReport:
        return AvailabilityReport(
            mttf_hours=self.mttf_hours(),
            mttr_hours=self.mttr_hours(),
            availability=self.availability(),
            total_downtime_node_hours=float(self._durations.sum()),
            n_incidents=len(self.node_events),
        )

    # ------------------------------------------------------------------
    # Figure 9c
    # ------------------------------------------------------------------

    def unavailability_distribution(
        self, percentiles: Sequence[float] = (50, 90, 95, 99)
    ) -> Dict[str, float]:
        """Summary of the node-unavailability duration distribution."""
        if self._durations.size == 0:
            return {"mean_hours": 0.0, "max_hours": 0.0} | {
                f"p{int(p)}_hours": 0.0 for p in percentiles
            }
        out = {
            "mean_hours": float(self._durations.mean()),
            "max_hours": float(self._durations.max()),
        }
        for p in percentiles:
            out[f"p{int(p)}_hours"] = float(np.percentile(self._durations, p))
        return out

    def unavailability_histogram(
        self, edges_hours: Sequence[float] = (0, 0.1, 0.25, 0.5, 1, 2, 4, 8, 24, 48)
    ) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
        counts, out_edges = np.histogram(self._durations, bins=np.asarray(edges_hours))
        return tuple(float(e) for e in out_edges), tuple(int(c) for c in counts)
