"""System-wide outage (SWO) tracking (paper Section 4, "GPU resiliency in
the context of SWOs").

Eight SWOs occurred over the study window — tornado-induced power
fluctuation, two filesystem, three network, two maintenance — and the
paper's key observation is that **none were caused by GPU errors**.  This
module records SWOs alongside the GPU error stream and checks that
attribution claim mechanically: an SWO is GPU-attributable only if a burst
of GPU errors immediately precedes it cluster-wide.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.coalesce import CoalescedError


class SwoCause(enum.Enum):
    POWER = "power"
    FILESYSTEM = "filesystem"
    NETWORK = "network"
    MAINTENANCE = "maintenance"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SystemWideOutage:
    start_time: float
    duration_hours: float
    cause: SwoCause
    note: str = ""

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_hours * 3600.0


#: The paper's eight outages, spread over the window with the stated mix.
def delta_swos(window_seconds: float) -> List[SystemWideOutage]:
    anchors = [
        (0.08, SwoCause.MAINTENANCE, "scheduled maintenance + driver updates"),
        (0.19, SwoCause.NETWORK, "Slingshot fabric congestion"),
        (0.31, SwoCause.FILESYSTEM, "Lustre MDS failure"),
        (0.42, SwoCause.POWER, "tornado-induced power fluctuation"),
        (0.55, SwoCause.NETWORK, "fabric switch firmware fault"),
        (0.68, SwoCause.FILESYSTEM, "Lustre OST rebuild"),
        (0.81, SwoCause.NETWORK, "core router outage"),
        (0.93, SwoCause.MAINTENANCE, "urgent GPU driver security update"),
    ]
    return [
        SystemWideOutage(
            start_time=fraction * window_seconds,
            duration_hours=6.0,
            cause=cause,
            note=note,
        )
        for fraction, cause, note in anchors
    ]


@dataclass(frozen=True)
class SwoAttribution:
    outage: SystemWideOutage
    preceding_gpu_errors: int
    nodes_involved: int
    gpu_attributable: bool


class SwoAnalyzer:
    """Check whether any SWO is attributable to a GPU-error storm.

    Attribution rule: within ``lookback_seconds`` before the outage, GPU
    errors must appear on at least ``min_nodes`` distinct nodes and total at
    least ``min_errors`` — a cluster-wide storm, not one sick GPU.
    """

    def __init__(
        self,
        errors: Sequence[CoalescedError],
        *,
        lookback_seconds: float = 1_800.0,
        min_nodes: int = 10,
        min_errors: int = 50,
    ) -> None:
        self.errors = sorted(errors, key=lambda e: e.time)
        self.lookback_seconds = lookback_seconds
        self.min_nodes = min_nodes
        self.min_errors = min_errors

    def attribute(self, outages: Sequence[SystemWideOutage]) -> List[SwoAttribution]:
        times = [e.time for e in self.errors]
        out: List[SwoAttribution] = []
        from bisect import bisect_left, bisect_right

        for outage in outages:
            lo = bisect_left(times, outage.start_time - self.lookback_seconds)
            hi = bisect_right(times, outage.start_time)
            window = self.errors[lo:hi]
            nodes = {e.node_id for e in window}
            attributable = (
                len(window) >= self.min_errors and len(nodes) >= self.min_nodes
            )
            out.append(
                SwoAttribution(
                    outage=outage,
                    preceding_gpu_errors=len(window),
                    nodes_involved=len(nodes),
                    gpu_attributable=attributable,
                )
            )
        return out

    def none_gpu_caused(self, outages: Sequence[SystemWideOutage]) -> bool:
        """The paper's claim: no SWO resulted from a GPU error."""
        return not any(a.gpu_attributable for a in self.attribute(outages))
