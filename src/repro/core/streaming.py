"""Online (streaming) error coalescing and persistence alarms.

Section 4.3's operational recommendation: "SREs should continuously monitor
the errors at the tail of the GPU error persistence distribution ... to
mitigate the error as soon as possible" — the 17-day uncontained saga went
unnoticed because nothing watched persistence *live*.

:class:`StreamingCoalescer` is an incremental Algorithm 1: feed it raw XID
records in arrival order and it maintains open runs per (GPU, XID, message),
emitting a :class:`CoalescedError` when a run closes (gap beyond the window
or cut-off reached) and raising a :class:`PersistenceAlarm` the moment an
*open* run exceeds the alarm threshold — without waiting for it to end,
which is the whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.coalesce import (
    DEFAULT_MAX_PERSISTENCE,
    DEFAULT_WINDOW_SECONDS,
    CoalescedError,
)
from repro.core.parsing import RawXidRecord

GroupKey = Tuple[str, str, int, str]


@dataclass(frozen=True)
class PersistenceAlarm:
    """Raised once per run when its open persistence crosses the threshold."""

    node_id: str
    pci_bus: str
    xid: int
    start_time: float
    open_persistence: float
    n_raw: int


@dataclass
class _OpenRun:
    start: float
    latest: float
    n_raw: int
    alarmed: bool = False


class StreamingCoalescer:
    """Incremental Algorithm 1 with live persistence alarms.

    Records must arrive in non-decreasing time order per GPU (syslog order);
    global interleaving across GPUs is fine.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_persistence: float = DEFAULT_MAX_PERSISTENCE,
        alarm_after_seconds: float = 600.0,
    ) -> None:
        if window_seconds <= 0 or max_persistence <= 0 or alarm_after_seconds <= 0:
            raise ValueError("streaming coalescer thresholds must be positive")
        self.window_seconds = window_seconds
        self.max_persistence = max_persistence
        self.alarm_after_seconds = alarm_after_seconds
        self._open: Dict[GroupKey, _OpenRun] = {}
        self.alarms: List[PersistenceAlarm] = []
        self.closed: List[CoalescedError] = []

    # ------------------------------------------------------------------

    def feed(self, record: RawXidRecord) -> Optional[PersistenceAlarm]:
        """Ingest one record; returns an alarm if this record triggers one."""
        key = (record.node_id, record.pci_bus, record.xid, record.message)
        run = self._open.get(key)
        if run is not None:
            gap = record.time - run.latest
            if gap < 0:
                raise ValueError(
                    "streaming input must be time-ordered per GPU "
                    f"(got t={record.time} after t={run.latest})"
                )
            span = record.time - run.start
            if gap > self.window_seconds or span > self.max_persistence:
                self._close(key, run)
                run = None
        if run is None:
            self._open[key] = _OpenRun(record.time, record.time, 1)
            return None
        run.latest = record.time
        run.n_raw += 1
        if not run.alarmed and (run.latest - run.start) >= self.alarm_after_seconds:
            run.alarmed = True
            alarm = PersistenceAlarm(
                node_id=record.node_id,
                pci_bus=record.pci_bus,
                xid=record.xid,
                start_time=run.start,
                open_persistence=run.latest - run.start,
                n_raw=run.n_raw,
            )
            self.alarms.append(alarm)
            return alarm
        return None

    def feed_many(self, records: Iterable[RawXidRecord]) -> Iterator[PersistenceAlarm]:
        """Ingest a stream, yielding alarms as they fire."""
        for record in records:
            alarm = self.feed(record)
            if alarm is not None:
                yield alarm

    # ------------------------------------------------------------------

    def flush(self) -> List[CoalescedError]:
        """Close every open run (end of stream) and return all errors."""
        for key, run in sorted(self._open.items()):
            self._close(key, run)
        self._open.clear()
        self.closed.sort(key=lambda e: (e.time, e.node_id, e.pci_bus, e.xid))
        return list(self.closed)

    def open_runs(self) -> int:
        return len(self._open)

    def _close(self, key: GroupKey, run: _OpenRun) -> None:
        node_id, pci_bus, xid, message = key
        self.closed.append(
            CoalescedError(
                time=run.start,
                node_id=node_id,
                pci_bus=pci_bus,
                xid=xid,
                persistence=run.latest - run.start,
                n_raw=run.n_raw,
                message=message,
            )
        )
        if key in self._open:
            del self._open[key]
