"""Online (streaming) error coalescing and persistence alarms.

Section 4.3's operational recommendation: "SREs should continuously monitor
the errors at the tail of the GPU error persistence distribution ... to
mitigate the error as soon as possible" — the 17-day uncontained saga went
unnoticed because nothing watched persistence *live*.

:class:`StreamingCoalescer` is an incremental Algorithm 1: feed it raw XID
records in arrival order and it maintains open runs per (GPU, XID, message),
emitting a :class:`CoalescedError` when a run closes (gap beyond the window
or cut-off reached) and raising a :class:`PersistenceAlarm` the moment an
*open* run exceeds the alarm threshold — without waiting for it to end,
which is the whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.coalesce import (
    DEFAULT_MAX_PERSISTENCE,
    DEFAULT_WINDOW_SECONDS,
    CoalescedError,
)
from repro.core.parsing import RawXidRecord

GroupKey = Tuple[str, str, int, str]


@dataclass(frozen=True)
class PersistenceAlarm:
    """Raised once per run when its open persistence crosses the threshold."""

    node_id: str
    pci_bus: str
    xid: int
    start_time: float
    open_persistence: float
    n_raw: int


@dataclass
class _OpenRun:
    start: float
    latest: float
    n_raw: int
    alarmed: bool = False


class StreamingCoalescer:
    """Incremental Algorithm 1 with live persistence alarms.

    **Ordering contract.**  Records should arrive in non-decreasing time
    order per GPU (syslog order); global interleaving across GPUs is fine.
    Real collection pipelines deliver *slightly* late lines (a flushed
    buffer, a slow forwarder), so the contract is window-tolerant:

    * a record up to ``window_seconds`` older than its run's latest record
      is folded into the open run (it would have coalesced into the same
      error had it arrived on time; an early-enough late record may extend
      the run's start backward);
    * a record later than that raises :class:`ValueError` — such a record
      belongs to an already-determined portion of the stream and accepting
      it would silently diverge from batch Algorithm 1.  A long-lived
      service whose feed can legitimately jump backward in time (a host
      clock reset, a feed restarting behind warm-started history) passes
      ``time_regression="restart"`` instead: the stale run is closed and
      the record starts a fresh one on the new timeline, so one bad
      timestamp never kills a live ingest thread.

    **Live-path memory.**  By default every closed error is retained on
    ``self.closed`` (batch-equivalence workflows read it back via
    :meth:`flush`).  A long-running service should pass
    ``keep_closed=False`` and receive closed errors through the
    ``on_close`` callback instead, keeping memory O(open runs).

    ``on_open(record)`` fires when a record starts a new run;
    ``on_close(error)`` fires whenever a run closes (including during
    :meth:`flush`).
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_persistence: float = DEFAULT_MAX_PERSISTENCE,
        alarm_after_seconds: float = 600.0,
        *,
        keep_closed: bool = True,
        on_open: Optional[Callable[[RawXidRecord], None]] = None,
        on_close: Optional[Callable[[CoalescedError], None]] = None,
        time_regression: str = "raise",
    ) -> None:
        if window_seconds <= 0 or max_persistence <= 0 or alarm_after_seconds <= 0:
            raise ValueError("streaming coalescer thresholds must be positive")
        if time_regression not in ("raise", "restart"):
            raise ValueError('time_regression must be "raise" or "restart"')
        self.window_seconds = window_seconds
        self.max_persistence = max_persistence
        self.alarm_after_seconds = alarm_after_seconds
        self.keep_closed = keep_closed
        self.time_regression = time_regression
        self.on_open = on_open
        self.on_close = on_close
        self._open: Dict[GroupKey, _OpenRun] = {}
        self.alarms: List[PersistenceAlarm] = []
        self.closed: List[CoalescedError] = []

    # ------------------------------------------------------------------

    def feed(self, record: RawXidRecord) -> Optional[PersistenceAlarm]:
        """Ingest one record; returns an alarm if this record triggers one."""
        key = (record.node_id, record.pci_bus, record.xid, record.message)
        run = self._open.get(key)
        if run is not None:
            gap = record.time - run.latest
            if -self.window_seconds <= gap < 0:
                # Late arrival within the window: fold it into the open run.
                run.n_raw += 1
                if record.time < run.start:
                    run.start = record.time
                return self._maybe_alarm(key, run, record)
            if gap < 0:
                if self.time_regression == "raise":
                    raise ValueError(
                        "streaming input out of order beyond the coalescing "
                        f"window (got t={record.time} after t={run.latest})"
                    )
                # The feed jumped backward in time: the stale run is over;
                # this record begins a new one on the new timeline.
                self._close(key, run)
                run = None
            else:
                span = record.time - run.start
                if gap > self.window_seconds or span > self.max_persistence:
                    self._close(key, run)
                    run = None
        if run is None:
            self._open[key] = _OpenRun(record.time, record.time, 1)
            if self.on_open is not None:
                self.on_open(record)
            return None
        run.latest = record.time
        run.n_raw += 1
        return self._maybe_alarm(key, run, record)

    def _maybe_alarm(
        self, key: GroupKey, run: _OpenRun, record: RawXidRecord
    ) -> Optional[PersistenceAlarm]:
        if not run.alarmed and (run.latest - run.start) >= self.alarm_after_seconds:
            run.alarmed = True
            alarm = PersistenceAlarm(
                node_id=record.node_id,
                pci_bus=record.pci_bus,
                xid=record.xid,
                start_time=run.start,
                open_persistence=run.latest - run.start,
                n_raw=run.n_raw,
            )
            self.alarms.append(alarm)
            return alarm
        return None

    def feed_many(self, records: Iterable[RawXidRecord]) -> Iterator[PersistenceAlarm]:
        """Ingest a stream, yielding alarms as they fire."""
        for record in records:
            alarm = self.feed(record)
            if alarm is not None:
                yield alarm

    # ------------------------------------------------------------------

    def flush(self) -> List[CoalescedError]:
        """Close every open run (end of stream) and return all errors.

        With ``keep_closed=False`` the closed errors went to ``on_close``
        instead of accumulating, so the returned list is empty.
        """
        for key, run in sorted(self._open.items()):
            self._close(key, run)
        self._open.clear()
        self.closed.sort(key=lambda e: (e.time, e.node_id, e.pci_bus, e.xid))
        return list(self.closed)

    def open_runs(self) -> int:
        return len(self._open)

    def open_persistence(self, node_id: str, pci_bus: str, xid: int, message: str) -> Optional[float]:
        """Current open span for one run, or ``None`` if no run is open."""
        run = self._open.get((node_id, pci_bus, xid, message))
        if run is None:
            return None
        return run.latest - run.start

    def _close(self, key: GroupKey, run: _OpenRun) -> None:
        node_id, pci_bus, xid, message = key
        error = CoalescedError(
            time=run.start,
            node_id=node_id,
            pci_bus=pci_bus,
            xid=xid,
            persistence=run.latest - run.start,
            n_raw=run.n_raw,
            message=message,
        )
        if self.keep_closed:
            self.closed.append(error)
        if self.on_close is not None:
            self.on_close(error)
        if key in self._open:
            del self._open[key]
