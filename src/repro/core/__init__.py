"""The paper's contribution: the GPU resilience characterization pipeline.

Stage I   — :mod:`repro.core.parsing`: regex extraction of XID records from
            raw syslog text.
Stage II  — :mod:`repro.core.coalesce`: Algorithm-1 error coalescing and
            persistence measurement.
Stage III — statistics (:mod:`repro.core.mtbe`, :mod:`repro.core.persistence`),
            propagation graphs (:mod:`repro.core.propagation`), job impact
            (:mod:`repro.core.jobimpact`), availability
            (:mod:`repro.core.availability`), scale projection
            (:mod:`repro.core.overprovision`), counterfactuals
            (:mod:`repro.core.counterfactual`), and the H100 early view
            (:mod:`repro.core.h100`).

:mod:`repro.core.pipeline` chains the stages end-to-end;
:mod:`repro.core.report` renders paper-style tables and figures.
"""

from repro.core.parsing import RawXidRecord, parse_syslog, parse_line
from repro.core.coalesce import CoalescedError, coalesce_errors, CoalesceConfig
from repro.core.mtbe import ErrorStatistics
from repro.core.persistence import PersistenceAnalyzer
from repro.core.propagation import PropagationAnalyzer, PropagationGraph
from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.availability import AvailabilityAnalyzer
from repro.core.overprovision import (
    OverprovisionConfig,
    OverprovisionSimulator,
    required_overprovision_analytic,
)
from repro.core.counterfactual import CounterfactualAnalyzer
from repro.core.h100 import H100Analyzer
from repro.core.pipeline import DeltaStudy, StudyReport
from repro.core.comparison import GenerationComparison
from repro.core.prediction import PersistencePredictor, extract_runs
from repro.core.reliability import (
    fit_exponential,
    fit_weibull,
    mtbe_confidence_interval,
    trend_test,
)
from repro.core.spatial import SpatialAnalyzer, gini_coefficient
from repro.core.streaming import PersistenceAlarm, StreamingCoalescer
from repro.core.swo import SwoAnalyzer, SystemWideOutage, delta_swos

__all__ = [
    "RawXidRecord",
    "parse_syslog",
    "parse_line",
    "CoalescedError",
    "coalesce_errors",
    "CoalesceConfig",
    "ErrorStatistics",
    "PersistenceAnalyzer",
    "PropagationAnalyzer",
    "PropagationGraph",
    "JobImpactAnalyzer",
    "AvailabilityAnalyzer",
    "OverprovisionConfig",
    "OverprovisionSimulator",
    "required_overprovision_analytic",
    "CounterfactualAnalyzer",
    "H100Analyzer",
    "DeltaStudy",
    "StudyReport",
    "PersistencePredictor",
    "extract_runs",
    "PersistenceAlarm",
    "StreamingCoalescer",
    "SwoAnalyzer",
    "SystemWideOutage",
    "delta_swos",
    "GenerationComparison",
    "fit_exponential",
    "fit_weibull",
    "mtbe_confidence_interval",
    "trend_test",
    "SpatialAnalyzer",
    "gini_coefficient",
]
