"""Stage I: extract NVIDIA XID records from raw syslog text.

The paper built a set of regular expressions from NVIDIA's XID documentation
and ran them over 202 GB of mixed system logs.  This module is that
extraction stage: it recognizes ``NVRM: Xid`` lines, pulls out the timestamp,
host, PCI bus address, XID code, pid, and message, and ignores everything
else (including near-miss lines that merely mention GPUs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from repro.util.timeutil import parse_timestamp

#: The extraction pattern.  Anchored on the literal ``NVRM: Xid`` marker the
#: NVIDIA driver emits; tolerant of pid being a number or ``'<unknown>'``.
XID_LINE_PATTERN = re.compile(
    r"^(?P<ts>\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(?:\.\d+)?)\s+"
    r"(?P<host>\S+)\s+kernel:\s+"
    r"NVRM:\s+Xid\s+\(PCI:(?P<pci>[0-9A-Fa-f:]+)\):\s+"
    r"(?P<xid>\d+),\s+pid=(?P<pid>'[^']*'|\S+?),\s+"
    r"(?P<msg>.*)$"
)

#: Cheap pre-filter: lines without this marker can never match.
_MARKER = "NVRM: Xid"


@dataclass(frozen=True)
class RawXidRecord:
    """One extracted XID log line (pre-coalescing)."""

    time: float
    node_id: str
    pci_bus: str
    xid: int
    message: str
    pid: Optional[int] = None

    @property
    def gpu_key(self) -> tuple[str, str]:
        return (self.node_id, self.pci_bus)


def parse_line(line: str) -> Optional[RawXidRecord]:
    """Parse one syslog line; ``None`` if it is not an XID record."""
    if _MARKER not in line:
        return None
    match = XID_LINE_PATTERN.match(line)
    if match is None:
        return None
    pid_text = match["pid"]
    pid = int(pid_text) if pid_text.isdigit() else None
    return RawXidRecord(
        time=parse_timestamp(match["ts"]),
        node_id=match["host"],
        pci_bus=match["pci"],
        xid=int(match["xid"]),
        message=match["msg"],
        pid=pid,
    )


def iter_parse_syslog(lines: Iterable[str]) -> Iterator[RawXidRecord]:
    """The shared record-iterator: lines in, parsed XID records out.

    Every ingestion surface — the batch study, the monitor, the fleet
    tailers, the staged pipeline — reduces to this one loop over
    :func:`parse_line`.
    """
    for line in lines:
        record = parse_line(line)
        if record is not None:
            yield record


def iter_file_records(path: str | Path) -> Iterator[RawXidRecord]:
    """Stream parsed XID records from one log file (plain or ``.gz``).

    File-order iteration: per-GPU time order is preserved whenever the
    file itself is chronological (node-local syslog is).
    """
    from repro.syslog.reader import iter_log_lines

    return iter_parse_syslog(iter_log_lines(path))


def iter_directory_records(directory: str | Path) -> Iterator[RawXidRecord]:
    """Stream parsed XID records from every log file in a directory.

    Files are visited in sorted order and streamed line-by-line; nothing
    is materialized or sorted, so memory is O(1) in log volume.  Per-GPU
    time order is preserved because each GPU's records live in one node
    file that node-local syslog keeps chronological — exactly the
    ordering :class:`~repro.core.streaming.StreamingCoalescer` requires.
    """
    from repro.syslog.reader import list_log_files

    for path in list_log_files(directory):
        yield from iter_file_records(path)


def parse_syslog(lines: Iterable[str]) -> List[RawXidRecord]:
    """Extract every XID record from an iterable of syslog lines.

    Input ordering is irrelevant; downstream coalescing sorts.
    """
    return list(iter_parse_syslog(lines))
