"""Stage II: error coalescing and persistence analysis (paper Algorithm 1).

Raw XID records arrive in bursts: the driver re-logs the same message every
few seconds while an error condition persists.  Algorithm 1 merges identical
messages from the same GPU whose inter-arrival gaps stay within a window
``dt`` (default 5 s) into a single *coalesced error* whose *persistence* is
the span from the first to the last merged line.  A one-day cut-off bounds
any single error's persistence, as in the paper (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.parsing import RawXidRecord

#: Paper defaults: 5-second window (results insensitive in 5-20 s) and a
#: one-day persistence cut-off.
DEFAULT_WINDOW_SECONDS = 5.0
DEFAULT_MAX_PERSISTENCE = 86_400.0


@dataclass(frozen=True)
class CoalesceConfig:
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    max_persistence: float = DEFAULT_MAX_PERSISTENCE

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("coalescing window must be positive")
        if self.max_persistence <= 0:
            raise ValueError("persistence cut-off must be positive")


@dataclass(frozen=True)
class CoalescedError:
    """One coalesced error with its measured persistence."""

    time: float  # first occurrence
    node_id: str
    pci_bus: str
    xid: int
    persistence: float  # t_last - t_first over the merged run
    n_raw: int  # raw lines merged into this error
    message: str = ""

    @property
    def gpu_key(self) -> Tuple[str, str]:
        return (self.node_id, self.pci_bus)

    @property
    def end_time(self) -> float:
        return self.time + self.persistence


GroupKey = Tuple[str, str, int, str]


def coalesce_errors(
    records: Iterable[RawXidRecord],
    config: CoalesceConfig | None = None,
) -> List[CoalescedError]:
    """Apply Algorithm 1 to raw records.

    Records are grouped by (node, PCI bus, XID, message) — "identical error
    logs from the same GPU" — sorted by time, and merged greedily: a record
    extends the current run if its gap to the run's latest record is within
    the window *and* the run's total span stays within the cut-off.

    Returns coalesced errors sorted by (time, node, bus, xid).
    """
    config = config or CoalesceConfig()
    groups: Dict[GroupKey, List[float]] = {}
    for record in records:
        key = (record.node_id, record.pci_bus, record.xid, record.message)
        groups.setdefault(key, []).append(record.time)

    out: List[CoalescedError] = []
    for (node_id, pci_bus, xid, message), times in groups.items():
        arr = np.sort(np.asarray(times))
        for start_idx, end_idx in _runs(arr, config):
            start = float(arr[start_idx])
            last = float(arr[end_idx])
            out.append(
                CoalescedError(
                    time=start,
                    node_id=node_id,
                    pci_bus=pci_bus,
                    xid=xid,
                    persistence=last - start,
                    n_raw=end_idx - start_idx + 1,
                    message=message,
                )
            )
    out.sort(key=lambda e: (e.time, e.node_id, e.pci_bus, e.xid))
    return out


def _runs(times: np.ndarray, config: CoalesceConfig) -> Iterable[Tuple[int, int]]:
    """Yield (start_index, end_index) of each coalesced run in sorted times.

    The gap rule is vectorized; the (rare) cut-off rule re-splits any run
    whose span exceeds the one-day bound.
    """
    if times.size == 0:
        return
    gaps = np.diff(times)
    break_points = np.nonzero(gaps > config.window_seconds)[0]
    starts = np.concatenate(([0], break_points + 1))
    ends = np.concatenate((break_points, [times.size - 1]))
    for start, end in zip(starts, ends):
        span = times[end] - times[start]
        if span <= config.max_persistence:
            yield int(start), int(end)
            continue
        # Greedy re-split at the cut-off, matching Algorithm 1's inner loop.
        run_start = int(start)
        for i in range(int(start) + 1, int(end) + 1):
            if times[i] - times[run_start] > config.max_persistence:
                yield run_start, i - 1
                run_start = i
        yield run_start, int(end)


def to_arrays(errors: Sequence[CoalescedError]) -> Dict[str, np.ndarray]:
    """Columnar view of coalesced errors for vectorized analyzers."""
    return {
        "time": np.array([e.time for e in errors]),
        "xid": np.array([e.xid for e in errors], dtype=np.int64),
        "persistence": np.array([e.persistence for e in errors]),
        "n_raw": np.array([e.n_raw for e in errors], dtype=np.int64),
    }
