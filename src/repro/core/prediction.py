"""Predicting long-persisting errors from their first seconds.

The paper's forward-looking suggestion (Section 4.3): "A potential solution
would be to develop an ML model (e.g., a Bayesian model) to predict the
onset of these long persisting errors for preventive actions."

This module implements that model end-to-end on the reproduction's data:

* features are computed from the first ``observe_seconds`` of each error's
  duplicate-line run — information genuinely available online;
* the label is whether the run ultimately persists beyond a threshold;
* the classifier is a small logistic regression trained by gradient
  descent (NumPy only), with a Laplace-smoothed per-XID prior as one of
  the features (the "Bayesian" ingredient).

See ``benchmarks/test_bench_prediction.py`` for the precision/recall it
achieves on held-out data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.parsing import RawXidRecord

GroupKey = Tuple[str, str, int, str]


@dataclass(frozen=True)
class RunExample:
    """One error run: online features plus the (offline) label."""

    xid: int
    gpu_key: Tuple[str, str]
    start_time: float
    #: Lines observed within the observation window.
    early_lines: int
    #: Mean inter-line gap inside the observation window (seconds).
    early_mean_gap: float
    #: Span from the run's first line to its last line inside the window —
    #: a run still emitting at the window's edge is the strongest live
    #: signal that it will keep persisting.
    early_span: float
    #: Errors previously seen on the same GPU (any code) — repeat offenders
    #: keep offending.
    gpu_prior_runs: int
    #: Ground truth: final persistence in seconds.
    final_persistence: float


def extract_runs(
    records: Iterable[RawXidRecord],
    *,
    window_seconds: float = 5.0,
    observe_seconds: float = 300.0,
) -> List[RunExample]:
    """Group raw records into runs and compute online features per run."""
    per_group: Dict[GroupKey, List[float]] = {}
    for record in records:
        key = (record.node_id, record.pci_bus, record.xid, record.message)
        per_group.setdefault(key, []).append(record.time)

    # Split each group into runs with the coalescing gap rule.
    raw_runs: List[Tuple[GroupKey, np.ndarray]] = []
    for key, times in per_group.items():
        arr = np.sort(np.asarray(times))
        breaks = np.nonzero(np.diff(arr) > window_seconds)[0]
        start = 0
        for b in list(breaks) + [arr.size - 1]:
            raw_runs.append((key, arr[start : b + 1]))
            start = b + 1

    raw_runs.sort(key=lambda pair: pair[1][0])
    gpu_seen: Dict[Tuple[str, str], int] = {}
    examples: List[RunExample] = []
    for (node_id, pci_bus, xid, _msg), times in raw_runs:
        gpu = (node_id, pci_bus)
        early = times[times <= times[0] + observe_seconds]
        gaps = np.diff(early)
        examples.append(
            RunExample(
                xid=xid,
                gpu_key=gpu,
                start_time=float(times[0]),
                early_lines=int(early.size),
                early_mean_gap=float(gaps.mean()) if gaps.size else observe_seconds,
                early_span=float(early[-1] - early[0]),
                gpu_prior_runs=gpu_seen.get(gpu, 0),
                final_persistence=float(times[-1] - times[0]),
            )
        )
        gpu_seen[gpu] = gpu_seen.get(gpu, 0) + 1
    return examples


class PersistencePredictor:
    """Logistic regression over online run features."""

    def __init__(
        self,
        long_threshold_seconds: float = 600.0,
        learning_rate: float = 0.3,
        epochs: int = 400,
        l2: float = 1e-3,
    ) -> None:
        self.long_threshold_seconds = long_threshold_seconds
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights: np.ndarray | None = None
        self._xid_prior: Dict[int, float] = {}
        self._feature_mean: np.ndarray | None = None
        self._feature_std: np.ndarray | None = None

    # ------------------------------------------------------------------

    def labels(self, examples: Sequence[RunExample]) -> np.ndarray:
        return np.array(
            [e.final_persistence > self.long_threshold_seconds for e in examples],
            dtype=float,
        )

    def _fit_priors(self, examples: Sequence[RunExample], labels: np.ndarray) -> None:
        """Laplace-smoothed P(long | XID): the Bayesian prior feature."""
        totals: Dict[int, int] = {}
        longs: Dict[int, int] = {}
        for example, label in zip(examples, labels):
            totals[example.xid] = totals.get(example.xid, 0) + 1
            longs[example.xid] = longs.get(example.xid, 0) + int(label)
        self._xid_prior = {
            xid: (longs.get(xid, 0) + 1.0) / (count + 2.0)
            for xid, count in totals.items()
        }

    def _features(self, examples: Sequence[RunExample]) -> np.ndarray:
        rows = np.array(
            [
                [
                    1.0,  # bias
                    self._xid_prior.get(e.xid, 0.5),
                    np.log1p(e.early_lines),
                    e.early_mean_gap,
                    e.early_span,
                    np.log1p(e.gpu_prior_runs),
                ]
                for e in examples
            ]
        )
        return rows

    def fit(self, examples: Sequence[RunExample]) -> "PersistencePredictor":
        if not examples:
            raise ValueError("cannot fit on an empty example set")
        labels = self.labels(examples)
        self._fit_priors(examples, labels)
        features = self._features(examples)
        self._feature_mean = features.mean(axis=0)
        self._feature_std = features.std(axis=0) + 1e-9
        self._feature_mean[0] = 0.0  # keep the bias column as-is
        self._feature_std[0] = 1.0
        normalized = (features - self._feature_mean) / self._feature_std

        # Class-balanced sample weights: long-persisting runs are ~1-2% of
        # the stream (exactly the paper's tail), so unweighted training
        # would predict "short" everywhere.
        n_positive = max(labels.sum(), 1.0)
        n_negative = max((1.0 - labels).sum(), 1.0)
        sample_weight = np.where(
            labels > 0.5, n_negative / n_positive, 1.0
        )
        sample_weight = sample_weight / sample_weight.mean()

        weights = np.zeros(normalized.shape[1])
        n = normalized.shape[0]
        for _ in range(self.epochs):
            scores = normalized @ weights
            probabilities = 1.0 / (1.0 + np.exp(-scores))
            gradient = (
                normalized.T @ ((probabilities - labels) * sample_weight) / n
                + self.l2 * weights
            )
            weights -= self.learning_rate * gradient
        self.weights = weights
        return self

    # ------------------------------------------------------------------

    def predict_proba(self, examples: Sequence[RunExample]) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("predictor is not fitted")
        features = self._features(examples)
        normalized = (features - self._feature_mean) / self._feature_std
        return 1.0 / (1.0 + np.exp(-(normalized @ self.weights)))

    def score_online(
        self,
        *,
        xid: int,
        early_lines: int,
        early_mean_gap: float,
        early_span: float,
        gpu_prior_runs: int,
    ) -> float:
        """Score one *open* run from its online features alone.

        The serving-side adapter: callers with a live open-run view (the
        fleet registry, the replay engine) pass exactly the features
        available while the run is still emitting — no
        :class:`RunExample` with a placeholder label required.  Returns
        P(run persists beyond the long threshold).
        """
        example = RunExample(
            xid=xid,
            gpu_key=("", ""),
            start_time=0.0,
            early_lines=early_lines,
            early_mean_gap=early_mean_gap,
            early_span=early_span,
            gpu_prior_runs=gpu_prior_runs,
            final_persistence=float("nan"),  # never read by the feature map
        )
        return float(self.predict_proba([example])[0])

    def predict(self, examples: Sequence[RunExample], threshold: float = 0.5) -> np.ndarray:
        return self.predict_proba(examples) >= threshold

    def evaluate(
        self, examples: Sequence[RunExample], threshold: float = 0.5
    ) -> Dict[str, float]:
        """Precision / recall / accuracy on a labelled example set."""
        labels = self.labels(examples).astype(bool)
        predictions = self.predict(examples, threshold)
        tp = int(np.sum(predictions & labels))
        fp = int(np.sum(predictions & ~labels))
        fn = int(np.sum(~predictions & labels))
        precision = tp / (tp + fp) if tp + fp else float("nan")
        recall = tp / (tp + fn) if tp + fn else float("nan")
        accuracy = float(np.mean(predictions == labels))
        return {
            "precision": precision,
            "recall": recall,
            "accuracy": accuracy,
            "positives": int(labels.sum()),
            "predicted_positives": int(predictions.sum()),
        }


# ---------------------------------------------------------------------------
# Precision/recall curves (backtest scoring)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrPoint:
    """One operating point of a score threshold sweep."""

    threshold: float
    precision: float
    recall: float
    predicted_positives: int


def pr_curve(
    labels: Sequence[bool],
    scores: Sequence[float],
    thresholds: Sequence[float],
) -> List[PrPoint]:
    """Precision/recall at each threshold of a fixed, explicit grid.

    A fixed grid (rather than the scores' own unique values) keeps the
    curve's shape — and its serialized bytes — stable across runs that
    produce slightly different score sets, which is what a reproducible
    scorecard needs.  Precision at a threshold nobody crosses is NaN-free:
    it reports 1.0 with zero predicted positives, the conventional
    degenerate point.
    """
    label_arr = np.asarray(labels, dtype=bool)
    score_arr = np.asarray(scores, dtype=float)
    if label_arr.shape != score_arr.shape:
        raise ValueError("labels and scores must align")
    n_positive = int(label_arr.sum())
    points: List[PrPoint] = []
    for threshold in thresholds:
        predicted = score_arr >= threshold
        tp = int(np.sum(predicted & label_arr))
        n_predicted = int(predicted.sum())
        precision = tp / n_predicted if n_predicted else 1.0
        recall = tp / n_positive if n_positive else 0.0
        points.append(
            PrPoint(
                threshold=float(threshold),
                precision=float(precision),
                recall=float(recall),
                predicted_positives=n_predicted,
            )
        )
    return points


def average_precision(labels: Sequence[bool], scores: Sequence[float]) -> float:
    """Area under the precision/recall curve (step-wise AP).

    The standard ranking metric for heavily imbalanced labels — exactly
    the long-persisting-run regime.  Ties break by stable sort, so equal
    scores contribute deterministically.
    """
    label_arr = np.asarray(labels, dtype=bool)
    score_arr = np.asarray(scores, dtype=float)
    n_positive = int(label_arr.sum())
    if n_positive == 0:
        return 0.0
    order = np.argsort(-score_arr, kind="stable")
    ranked = label_arr[order]
    cum_tp = np.cumsum(ranked)
    ranks = np.arange(1, ranked.size + 1)
    precision_at_rank = cum_tp / ranks
    return float(np.sum(precision_at_rank[ranked]) / n_positive)
