"""Reliability statistics beyond point estimates.

The paper reports MTBE as a point value; for operational decisions (GPU
replacement, capacity planning) the *uncertainty* and the *shape* of the
inter-error process matter:

* :func:`mtbe_confidence_interval` — bootstrap CI on the mean time between
  errors;
* :func:`fit_exponential` / :func:`fit_weibull` — maximum-likelihood fits
  of inter-arrival times.  A Weibull shape < 1 means a *decreasing* hazard
  (bursty/infant-mortality errors — what defective offender GPUs produce);
  shape ≈ 1 means memoryless arrivals (random background faults);
* :func:`trend_test` — a Laplace trend test for reliability growth or
  decay over the observation window (did the burn-in replacements help?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.coalesce import CoalescedError
from repro.util.validation import check_probability


def interarrival_times(errors: Sequence[CoalescedError]) -> np.ndarray:
    """Sorted inter-arrival gaps (seconds) of an error stream."""
    times = np.sort(np.array([e.time for e in errors]))
    if times.size < 2:
        return np.zeros(0)
    return np.diff(times)


# ---------------------------------------------------------------------------
# Bootstrap MTBE confidence interval
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfidenceInterval:
    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def relative_width(self) -> float:
        return (self.high - self.low) / self.point if self.point else float("inf")


def mtbe_confidence_interval(
    errors: Sequence[CoalescedError],
    *,
    confidence: float = 0.95,
    n_bootstrap: int = 2_000,
    seed: int = 7,
) -> ConfidenceInterval:
    """Bootstrap CI on the mean inter-arrival time (in hours)."""
    check_probability("confidence", confidence)
    gaps = interarrival_times(errors)
    if gaps.size < 2:
        raise ValueError("need at least three errors for an interval")
    rng = np.random.default_rng(seed)
    samples = rng.choice(gaps, size=(n_bootstrap, gaps.size), replace=True)
    means = samples.mean(axis=1) / 3600.0
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(gaps.mean() / 3600.0),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


# ---------------------------------------------------------------------------
# Distribution fits
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExponentialFit:
    rate_per_hour: float
    log_likelihood: float

    @property
    def mean_hours(self) -> float:
        return 1.0 / self.rate_per_hour if self.rate_per_hour else float("inf")


def fit_exponential(gaps_seconds: np.ndarray) -> ExponentialFit:
    """MLE exponential fit of inter-arrival gaps."""
    gaps = np.asarray(gaps_seconds, dtype=float)
    gaps = gaps[gaps > 0]
    if gaps.size == 0:
        raise ValueError("no positive gaps to fit")
    hours = gaps / 3600.0
    rate = 1.0 / hours.mean()
    log_likelihood = float(np.sum(np.log(rate) - rate * hours))
    return ExponentialFit(rate_per_hour=float(rate), log_likelihood=log_likelihood)


@dataclass(frozen=True)
class WeibullFit:
    shape: float  # k < 1: bursty / decreasing hazard; k = 1: exponential
    scale_hours: float
    log_likelihood: float

    @property
    def is_bursty(self) -> bool:
        return self.shape < 0.95

    @property
    def is_memoryless(self) -> bool:
        return 0.95 <= self.shape <= 1.05


def fit_weibull(
    gaps_seconds: np.ndarray, *, iterations: int = 200
) -> WeibullFit:
    """MLE Weibull fit via Newton iteration on the shape parameter."""
    gaps = np.asarray(gaps_seconds, dtype=float)
    gaps = gaps[gaps > 0] / 3600.0
    if gaps.size < 3:
        raise ValueError("need at least three positive gaps")
    log_x = np.log(gaps)
    k = 1.0
    for _ in range(iterations):
        xk = gaps**k
        a = float(np.sum(xk * log_x) / np.sum(xk))
        b = float(log_x.mean())
        f = 1.0 / k - (a - b)
        # df/dk:
        d_a = (
            float(np.sum(xk * log_x**2) / np.sum(xk))
            - a**2
        )
        derivative = -1.0 / k**2 - d_a
        step = f / derivative
        k_next = k - step
        if not np.isfinite(k_next) or k_next <= 0:
            k_next = k / 2.0
        if abs(k_next - k) < 1e-10:
            k = k_next
            break
        k = k_next
    scale = float((gaps**k).mean() ** (1.0 / k))
    log_likelihood = float(
        np.sum(
            np.log(k / scale)
            + (k - 1) * np.log(gaps / scale)
            - (gaps / scale) ** k
        )
    )
    return WeibullFit(shape=float(k), scale_hours=scale, log_likelihood=log_likelihood)


# ---------------------------------------------------------------------------
# Rolling-window view
# ---------------------------------------------------------------------------


def rolling_mtbe(
    errors: Sequence[CoalescedError],
    window_seconds: float,
    *,
    bucket_days: float = 30.0,
    n_nodes: int = 1,
) -> list:
    """Per-bucket (e.g. monthly) per-node MTBE over the observation window.

    Returns ``[(bucket_midpoint_seconds, mtbe_node_hours), ...]``; empty
    buckets report infinity.  The fleet-health time series operators track.
    """
    if window_seconds <= 0 or bucket_days <= 0 or n_nodes <= 0:
        raise ValueError("window, bucket size, and node count must be positive")
    bucket_seconds = bucket_days * 86_400.0
    edges = np.arange(0.0, window_seconds + bucket_seconds, bucket_seconds)
    times = np.array([e.time for e in errors])
    counts, _ = np.histogram(times, bins=edges)
    bucket_node_hours = (bucket_seconds / 3600.0) * n_nodes
    out = []
    for i, count in enumerate(counts):
        midpoint = (edges[i] + edges[i + 1]) / 2.0
        mtbe = bucket_node_hours / count if count else float("inf")
        out.append((float(midpoint), float(mtbe)))
    return out


# ---------------------------------------------------------------------------
# Trend test
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrendResult:
    """Laplace trend statistic over the observation window.

    Negative values: arrivals concentrate early (reliability *growth* —
    e.g. burn-in replacements working).  Positive: decay.  |u| < 1.96 is
    consistent with a stationary Poisson process at 5% significance.
    """

    statistic: float
    n_events: int

    @property
    def improving(self) -> bool:
        return self.statistic < -1.96

    @property
    def degrading(self) -> bool:
        return self.statistic > 1.96

    @property
    def stationary(self) -> bool:
        return abs(self.statistic) <= 1.96


def trend_test(
    errors: Sequence[CoalescedError], window_seconds: float
) -> TrendResult:
    """The Laplace test: u = (mean(t)/T - 1/2) * sqrt(12 n)."""
    times = np.array([e.time for e in errors], dtype=float)
    n = times.size
    if n < 3:
        raise ValueError("need at least three errors for a trend test")
    if window_seconds <= 0:
        raise ValueError("window must be positive")
    u = (times.mean() / window_seconds - 0.5) * np.sqrt(12.0 * n)
    return TrendResult(statistic=float(u), n_events=int(n))
