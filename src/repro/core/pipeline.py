"""End-to-end study pipeline (paper Figure 4).

``DeltaStudy`` chains the stages — extraction, coalescing, statistics,
propagation, job impact, availability, counterfactuals — over one dataset's
observables (raw log lines + Slurm database).  It never touches generation
ground truth, so paper-vs-measured comparisons are genuine inferences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.availability import AvailabilityAnalyzer, AvailabilityReport
from repro.core.coalesce import CoalesceConfig, CoalescedError, coalesce_errors
from repro.core.counterfactual import CounterfactualAnalyzer, CounterfactualReport
from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.mtbe import ErrorStatistics
from repro.core.parsing import parse_syslog
from repro.core.persistence import PersistenceAnalyzer
from repro.core.propagation import PropagationAnalyzer, PropagationGraph
from repro.slurm.accounting import SlurmDatabase


@dataclass
class StudyReport:
    """Everything Stage III produces, bundled for report rendering."""

    statistics: ErrorStatistics
    persistence: PersistenceAnalyzer
    propagation_graph: PropagationGraph
    propagation: PropagationAnalyzer
    job_impact: Optional[JobImpactAnalyzer]
    availability: Optional[AvailabilityReport]
    counterfactual: Optional[CounterfactualReport]


class DeltaStudy:
    """Run the characterization pipeline over one dataset's observables."""

    def __init__(
        self,
        log_lines: Iterable[str],
        *,
        window_hours: float,
        n_nodes: int,
        slurm_db: SlurmDatabase | None = None,
        coalesce_config: CoalesceConfig | None = None,
        propagation_window: float = 60.0,
    ) -> None:
        self.window_hours = window_hours
        self.n_nodes = n_nodes
        self.slurm_db = slurm_db
        self.coalesce_config = coalesce_config or CoalesceConfig()
        self.propagation_window = propagation_window
        self._raw_lines = log_lines
        self._errors: Optional[List[CoalescedError]] = None

    @classmethod
    def from_dataset(cls, dataset, **kwargs) -> "DeltaStudy":
        """Build from a :class:`repro.datasets.DeltaDataset`."""
        return cls(
            dataset.log_lines(),
            window_hours=dataset.window_seconds / 3600.0,
            n_nodes=dataset.reference_node_count,
            slurm_db=dataset.slurm_db,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    @property
    def errors(self) -> List[CoalescedError]:
        """Stage I + II: parse then coalesce (cached)."""
        if self._errors is None:
            records = parse_syslog(self._raw_lines)
            self._errors = coalesce_errors(records, self.coalesce_config)
        return self._errors

    def error_statistics(self) -> ErrorStatistics:
        return ErrorStatistics(self.errors, self.window_hours, self.n_nodes)

    def persistence(self) -> PersistenceAnalyzer:
        stats = self.error_statistics()
        return PersistenceAnalyzer(stats.errors)

    def propagation(self) -> PropagationAnalyzer:
        stats = self.error_statistics()
        return PropagationAnalyzer(stats.errors, window=self.propagation_window)

    def job_impact(self) -> JobImpactAnalyzer:
        if self.slurm_db is None:
            raise ValueError("job impact analysis requires a Slurm database")
        return JobImpactAnalyzer(self.slurm_db, self.errors)

    def availability(self) -> AvailabilityAnalyzer:
        if self.slurm_db is None:
            raise ValueError("availability analysis requires node events")
        return AvailabilityAnalyzer(self.slurm_db.node_events, self.error_statistics())

    def counterfactual(self) -> CounterfactualAnalyzer:
        mttr = (
            self.availability().mttr_hours() if self.slurm_db is not None else 0.3
        )
        return CounterfactualAnalyzer(self.error_statistics(), mttr_hours=mttr)

    # ------------------------------------------------------------------

    def run(self) -> StudyReport:
        """Execute every stage and bundle the results."""
        propagation = self.propagation()
        return StudyReport(
            statistics=self.error_statistics(),
            persistence=self.persistence(),
            propagation=propagation,
            propagation_graph=propagation.analyze(),
            job_impact=self.job_impact() if self.slurm_db is not None else None,
            availability=(
                self.availability().report() if self.slurm_db is not None else None
            ),
            counterfactual=self.counterfactual().analyze(),
        )
