"""End-to-end study pipeline (paper Figure 4).

``DeltaStudy`` chains the stages — extraction, coalescing, statistics,
propagation, job impact, availability, counterfactuals — over one dataset's
observables (raw log lines + Slurm database).  It never touches generation
ground truth, so paper-vs-measured comparisons are genuine inferences.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Union

from repro.core.availability import AvailabilityAnalyzer, AvailabilityReport
from repro.core.coalesce import CoalesceConfig, CoalescedError
from repro.core.counterfactual import CounterfactualAnalyzer, CounterfactualReport
from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.mtbe import ErrorStatistics
from repro.core.parsing import RawXidRecord
from repro.core.persistence import PersistenceAnalyzer
from repro.core.propagation import PropagationAnalyzer, PropagationGraph
from repro.slurm.accounting import SlurmDatabase

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.sources import Source


@dataclass
class StudyReport:
    """Everything Stage III produces, bundled for report rendering."""

    statistics: ErrorStatistics
    persistence: PersistenceAnalyzer
    propagation_graph: PropagationGraph
    propagation: PropagationAnalyzer
    job_impact: Optional[JobImpactAnalyzer]
    availability: Optional[AvailabilityReport]
    counterfactual: Optional[CounterfactualReport]


class DeltaStudy:
    """Run the characterization pipeline over one dataset's observables.

    Stages I and II ride :mod:`repro.pipeline` — the staged ingestion
    pipeline shared with the monitor and the fleet health service.  The
    first argument accepts either an iterable of raw syslog lines (the
    historical in-memory shape) or any
    :class:`~repro.pipeline.sources.Source`; ``workers`` shards
    extraction across processes when the source supports it (file sets
    do, in-memory line streams do not), and ``engine`` selects the
    coalescing implementation — the vectorized batch fast path by
    default, or the streaming coalescer for ordered sources (both
    produce identical errors).
    """

    def __init__(
        self,
        log_lines: Union[Iterable[str], "Source"],
        *,
        window_hours: float,
        n_nodes: int,
        n_gpus: Optional[int] = None,
        slurm_db: SlurmDatabase | None = None,
        coalesce_config: CoalesceConfig | None = None,
        propagation_window: float = 60.0,
        workers: int = 1,
        engine: str = "vectorized",
    ) -> None:
        from repro.pipeline.sources import LinesSource, Source

        self.window_hours = window_hours
        self.n_nodes = n_nodes
        #: GPU population of the monitored partition (spatial analyses);
        #: ``None`` when the source does not describe its inventory.
        self.n_gpus = n_gpus
        self.slurm_db = slurm_db
        self.coalesce_config = coalesce_config or CoalesceConfig()
        self.propagation_window = propagation_window
        self.workers = workers
        self.engine = engine
        if isinstance(log_lines, Source):
            self.source: Source = log_lines
        else:
            self.source = LinesSource(log_lines)
        #: Provenance of a store-backed study (recorded in run manifests).
        self.store_hash: Optional[str] = None
        self.dataset_label: Optional[str] = None
        self._records: Optional[List[RawXidRecord]] = None
        self._errors: Optional[List[CoalescedError]] = None

    @classmethod
    def from_dataset(cls, dataset, **kwargs) -> "DeltaStudy":
        """Build from a :class:`repro.datasets.DeltaDataset`."""
        return cls(
            dataset.log_lines(),
            window_hours=dataset.window_seconds / 3600.0,
            n_nodes=dataset.reference_node_count,
            n_gpus=dataset.reference_gpu_count,
            slurm_db=dataset.slurm_db,
            **kwargs,
        )

    @classmethod
    def from_records(
        cls,
        records: Iterable[RawXidRecord],
        *,
        window_hours: float,
        n_nodes: int,
        **kwargs,
    ) -> "DeltaStudy":
        """Build over already-extracted records (Stage I pre-paid).

        The session layer ships a parent study's record list to worker
        processes this way: the list seeds the Stage-I cache directly,
        so the rebuilt study coalesces and analyzes the exact records
        the parent extracted — the identity behind parallel experiment
        execution.
        """
        from repro.pipeline.sources import RecordsSource

        records = list(records)
        study = cls(
            RecordsSource(records),
            window_hours=window_hours,
            n_nodes=n_nodes,
            **kwargs,
        )
        study._records = records
        return study

    @classmethod
    def from_log_directory(
        cls,
        directory: str | Path,
        *,
        window_hours: float,
        n_nodes: int,
        slurm_db: SlurmDatabase | None = None,
        workers: int = 1,
        **kwargs,
    ) -> "DeltaStudy":
        """Build over an on-disk dataset (one log file per node).

        This is the shape where ``workers > 1`` pays off: the files shard
        across a process pool and merge back into one ordered stream.
        """
        from repro.pipeline.sources import FileSetSource

        return cls(
            FileSetSource(directory),
            window_hours=window_hours,
            n_nodes=n_nodes,
            slurm_db=slurm_db,
            workers=workers,
            **kwargs,
        )

    @classmethod
    def from_store(
        cls,
        store,
        *,
        window_hours: Optional[float] = None,
        n_nodes: Optional[int] = None,
        slurm_db: SlurmDatabase | None = None,
        query=None,
        workers: int = 1,
        **kwargs,
    ) -> "DeltaStudy":
        """Build over a built :class:`~repro.store.store.EventStore`.

        ``store`` is an :class:`EventStore` or its directory.  Stage I
        becomes a columnar decode with zone-map pushdown (pass ``query``
        to slice); ``window_hours`` / ``n_nodes`` default from the
        metadata ``repro-delta store build`` records.  The study streams
        records instead of materializing them (store segments are
        re-iterable), and its run manifests carry the store content hash.
        """
        from repro.store import MATCH_ALL, EventStore, StoreSource

        if not isinstance(store, EventStore):
            store = EventStore.open(store)
        meta = store.meta
        if window_hours is None:
            if "window_hours" not in meta:
                raise ValueError(
                    "window_hours not given and not recorded in store meta"
                )
            window_hours = float(meta["window_hours"])  # type: ignore[arg-type]
        if n_nodes is None:
            if "n_nodes" not in meta:
                raise ValueError(
                    "n_nodes not given and not recorded in store meta"
                )
            n_nodes = int(meta["n_nodes"])  # type: ignore[arg-type]
        if "n_gpus" in meta:
            kwargs.setdefault("n_gpus", int(meta["n_gpus"]))  # type: ignore[arg-type]
        study = cls(
            StoreSource(store, query=query if query is not None else MATCH_ALL),
            window_hours=window_hours,
            n_nodes=n_nodes,
            slurm_db=slurm_db,
            workers=workers,
            **kwargs,
        )
        study.store_hash = store.content_hash()
        study.dataset_label = f"store:{store.directory}"
        return study

    def to_store(
        self,
        directory: str | Path,
        *,
        segment_records: Optional[int] = None,
        meta: Optional[dict] = None,
    ):
        """Persist this study's record stream into an event store.

        Creates (or appends to an empty) store at ``directory`` and
        returns the :class:`~repro.store.store.EventStore`.  The study's
        window/node parameters are recorded as store metadata so a later
        :meth:`from_store` needs only the directory.
        """
        from repro.store import DEFAULT_SEGMENT_RECORDS, EventStore

        store_meta = {
            "window_hours": float(self.window_hours),
            "n_nodes": int(self.n_nodes),
        }
        if self.n_gpus is not None:
            store_meta["n_gpus"] = int(self.n_gpus)
        if meta:
            store_meta.update(meta)
        store = EventStore.open_or_create(directory, meta=store_meta)
        if store.n_records:
            raise ValueError(
                f"store at {directory} already holds {store.n_records} records"
            )
        store.append(
            self.iter_records(),
            segment_records=segment_records or DEFAULT_SEGMENT_RECORDS,
        )
        return store

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def iter_records(self) -> Iterator[RawXidRecord]:
        """Stage I as a stream.

        Yields from the cache when :attr:`records` already materialized;
        otherwise streams straight off the source — without building the
        full list when the source is re-iterable (file sets, stores),
        which is what lets store-backed studies run in O(open state)
        memory instead of O(record count).
        """
        if self._records is not None:
            yield from self._records
            return
        if self.source.reiterable:
            from repro.pipeline.extract import iter_source_records

            yield from iter_source_records(self.source, workers=self.workers)
            return
        # One-shot sources (in-memory lines/records) must materialize, or
        # a second stage pass would find the iterable already consumed.
        yield from self.records

    @property
    def records(self) -> List[RawXidRecord]:
        """Stage I: the extracted record stream (cached)."""
        if self._records is None:
            from repro.pipeline.extract import extract_records

            self._records = extract_records(self.source, workers=self.workers)
        return self._records

    @property
    def errors(self) -> List[CoalescedError]:
        """Stage I + II: extract then coalesce (cached).

        Coalescing consumes :meth:`iter_records`, so re-iterable sources
        stream through Stage II without the raw stream ever being
        materialized; the coalesced errors are what stays resident.
        """
        if self._errors is None:
            from repro.pipeline.stages import make_stage

            stage = make_stage(self.engine, self.coalesce_config)
            self._errors = stage.run(self.iter_records()).errors
        return self._errors

    def error_statistics(self) -> ErrorStatistics:
        return ErrorStatistics(self.errors, self.window_hours, self.n_nodes)

    def persistence(self) -> PersistenceAnalyzer:
        stats = self.error_statistics()
        return PersistenceAnalyzer(stats.errors)

    def propagation(self) -> PropagationAnalyzer:
        stats = self.error_statistics()
        return PropagationAnalyzer(stats.errors, window=self.propagation_window)

    def job_impact(self) -> JobImpactAnalyzer:
        if self.slurm_db is None:
            raise ValueError("job impact analysis requires a Slurm database")
        return JobImpactAnalyzer(self.slurm_db, self.errors)

    def availability(self) -> AvailabilityAnalyzer:
        if self.slurm_db is None:
            raise ValueError("availability analysis requires node events")
        return AvailabilityAnalyzer(self.slurm_db.node_events, self.error_statistics())

    def counterfactual(self) -> CounterfactualAnalyzer:
        mttr = (
            self.availability().mttr_hours() if self.slurm_db is not None else 0.3
        )
        return CounterfactualAnalyzer(self.error_statistics(), mttr_hours=mttr)

    # ------------------------------------------------------------------

    def run(self) -> StudyReport:
        """Execute every stage and bundle the results."""
        propagation = self.propagation()
        return StudyReport(
            statistics=self.error_statistics(),
            persistence=self.persistence(),
            propagation=propagation,
            propagation_graph=propagation.analyze(),
            job_impact=self.job_impact() if self.slurm_db is not None else None,
            availability=(
                self.availability().report() if self.slurm_db is not None else None
            ),
            counterfactual=self.counterfactual().analyze(),
        )
