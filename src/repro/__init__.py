"""repro: GPU resilience characterization toolkit.

A full reproduction of *"Story of Two GPUs: Characterizing the Resilience of
Hopper H100 and Ampere A100 GPUs"* (SC 2025; arXiv title *"Characterizing
GPU Resilience and Impact on AI/HPC Systems"*): a calibrated synthetic Delta
substrate (cluster, faults, syslog, Slurm) plus the paper's analysis
pipeline (extraction, Algorithm-1 coalescing, MTBE/persistence statistics,
propagation graphs, job impact, availability, overprovisioning projection,
counterfactuals).

Quickstart::

    from repro import synthesize_delta, DeltaStudy

    dataset = synthesize_delta(scale=0.05, seed=7)
    study = DeltaStudy.from_dataset(dataset)
    report = study.run()
    print(report.statistics.overall_mtbe_node_hours())
"""

from repro.cluster import ClusterInventory, DeltaShape, build_delta_cluster
from repro.core import (
    AvailabilityAnalyzer,
    CoalesceConfig,
    CoalescedError,
    CounterfactualAnalyzer,
    DeltaStudy,
    ErrorStatistics,
    H100Analyzer,
    JobImpactAnalyzer,
    OverprovisionConfig,
    OverprovisionSimulator,
    PersistenceAnalyzer,
    PropagationAnalyzer,
    StudyReport,
    coalesce_errors,
    parse_syslog,
    required_overprovision_analytic,
)
from repro.datasets import (
    DeltaDataset,
    DeltaDatasetConfig,
    synthesize_delta,
    synthesize_h100,
)
from repro.faults import (
    AMPERE_CALIBRATION,
    DELTA_CALIBRATION,
    H100_CALIBRATION,
    FaultInjector,
    InjectorConfig,
    Xid,
)
from repro.results import (
    ExperimentResult,
    Metric,
    PaperExpectation,
    ResultTable,
    RunManifest,
    Tolerance,
    VerificationReport,
    verify_result,
    verify_results,
)
from repro.slurm import SlurmDatabase

__version__ = "1.5.0"

__all__ = [
    "ClusterInventory",
    "DeltaShape",
    "build_delta_cluster",
    "AvailabilityAnalyzer",
    "CoalesceConfig",
    "CoalescedError",
    "CounterfactualAnalyzer",
    "DeltaStudy",
    "ErrorStatistics",
    "H100Analyzer",
    "JobImpactAnalyzer",
    "OverprovisionConfig",
    "OverprovisionSimulator",
    "PersistenceAnalyzer",
    "PropagationAnalyzer",
    "StudyReport",
    "coalesce_errors",
    "parse_syslog",
    "required_overprovision_analytic",
    "DeltaDataset",
    "DeltaDatasetConfig",
    "synthesize_delta",
    "synthesize_h100",
    "AMPERE_CALIBRATION",
    "DELTA_CALIBRATION",
    "H100_CALIBRATION",
    "FaultInjector",
    "InjectorConfig",
    "Xid",
    "ExperimentResult",
    "Metric",
    "PaperExpectation",
    "ResultTable",
    "RunManifest",
    "Tolerance",
    "VerificationReport",
    "verify_result",
    "verify_results",
    "SlurmDatabase",
    "__version__",
]
