"""Paper-figure builders: measured data in, SVG files out."""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.availability import AvailabilityAnalyzer
from repro.core.jobimpact import JobImpactAnalyzer
from repro.core.mtbe import ErrorStatistics
from repro.core.propagation import PropagationGraph
from repro.faults.xid import XID_CATALOG, Xid
from repro.viz.charts import bar_chart, cdf_chart, grouped_bar_chart, line_chart
from repro.viz.svg import PALETTE, SvgCanvas


def _abbrev(xid: int) -> str:
    try:
        return XID_CATALOG[Xid(xid)].abbreviation
    except (KeyError, ValueError):
        return f"XID {xid}"


def mtbe_figure(stats: ErrorStatistics) -> SvgCanvas:
    """Table 1 as a chart: per-code error counts on a log axis."""
    rows = stats.table1_rows()
    return bar_chart(
        "GPU errors by XID (Table 1)",
        [f"{r.xid} {_abbrev(r.xid)}" for r in rows],
        [float(r.count) for r in rows],
        log_y=True,
        y_label="coalesced errors (log)",
        width=760,
    )


def elapsed_histogram_figure(impact: JobImpactAnalyzer) -> SvgCanvas:
    """Figure 9a: completed vs GPU-failed jobs per elapsed-time bin."""
    histogram = impact.elapsed_histogram()
    labels = [
        f"{int(lo)}-{int(hi)}m"
        for lo, hi in zip(histogram.edges_minutes, histogram.edges_minutes[1:])
    ]
    return grouped_bar_chart(
        "Jobs vs elapsed time (Figure 9a)",
        labels,
        [
            ("completed", [float(c) for c in histogram.completed]),
            ("GPU-failed", [float(c) for c in histogram.gpu_failed]),
        ],
        log_y=True,
        y_label="jobs (log)",
    )


def errors_vs_duration_figure(impact: JobImpactAnalyzer) -> SvgCanvas:
    """Figure 9b: mean errors encountered vs job duration."""
    series_data = impact.errors_vs_duration()
    series = [
        ("completed", [(x, y) for x, y in series_data["completed"]]),
        ("GPU-failed", [(x, y) for x, y in series_data["gpu_failed"]]),
    ]
    return line_chart(
        "GPU errors encountered vs job duration (Figure 9b)",
        series,
        x_label="job duration (minutes, bin midpoints)",
        y_label="mean errors encountered",
    )


def unavailability_cdf_figure(availability: AvailabilityAnalyzer) -> SvgCanvas:
    """Figure 9c: CDF of node unavailability durations."""
    durations = [e.duration_hours for e in availability.node_events]
    return cdf_chart(
        "Node unavailability after GPU failures (Figure 9c)",
        durations,
        x_label="repair duration (hours, log)",
        log_x=True,
        color=PALETTE[2],
    )


def overprovision_figure(
    sweep: Mapping[Tuple[float, float], float]
) -> SvgCanvas:
    """Section 5.4: overprovision vs recovery time, one line per availability."""
    by_availability: Dict[float, List[Tuple[float, float]]] = {}
    for (recovery, availability), fraction in sorted(sweep.items()):
        by_availability.setdefault(availability, []).append(
            (recovery, fraction * 100.0)
        )
    series = [
        (f"availability {availability*100:.2f}%", points)
        for availability, points in sorted(by_availability.items())
    ]
    return line_chart(
        "Required overprovisioning (Section 5.4)",
        series,
        x_label="recovery time (minutes)",
        y_label="overprovision (%)",
    )


def propagation_figure(
    graph: PropagationGraph,
    codes: Sequence[int] = (119, 122, 31, 79),
    *,
    title: str = "Intra-GPU hardware error propagation (Figure 5)",
    min_probability: float = 0.005,
) -> SvgCanvas:
    """A node-and-edge rendering of the measured propagation graph."""
    width, height = 720, 440
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 24, title, size=14, anchor="middle", bold=True)

    present = [c for c in codes if graph.source_counts.get(int(c), 0) > 0]
    if not present:
        canvas.text(width / 2, height / 2, "no events", anchor="middle")
        return canvas
    cx, cy, radius = width / 2, height / 2 + 10, min(width, height) / 2 - 90
    positions: Dict[int, Tuple[float, float]] = {}
    for index, code in enumerate(present):
        angle = 2 * math.pi * index / len(present) - math.pi / 2
        positions[code] = (cx + radius * math.cos(angle), cy + radius * math.sin(angle))

    # Edges first (under the nodes).
    for (src, dst), stats in sorted(graph.intra_edges.items()):
        if src not in positions or dst not in positions:
            continue
        probability = graph.probability(src, dst)
        if probability < min_probability:
            continue
        x1, y1 = positions[src]
        x2, y2 = positions[dst]
        if src == dst:
            # Self-loop rendered as an annotation above the node.
            canvas.text(x1, y1 - 44, f"self {probability:.2f}", size=10,
                        anchor="middle", fill="#555555")
            continue
        # Shorten toward node edges.
        dx, dy = x2 - x1, y2 - y1
        length = math.hypot(dx, dy) or 1.0
        ux, uy = dx / length, dy / length
        start = (x1 + ux * 34, y1 + uy * 34)
        end = (x2 - ux * 34, y2 - uy * 34)
        canvas.arrow(start[0], start[1], end[0], end[1], stroke="#777777",
                     width=1.0 + 4.0 * probability)
        mx, my = (start[0] + end[0]) / 2, (start[1] + end[1]) / 2
        label = f"{probability:.2f}"
        delay = graph.mean_delay(src, dst)
        if delay == delay:  # not NaN
            label += f" ({delay:.1f}s)"
        canvas.text(mx, my - 6, label, size=10, anchor="middle", fill="#333333")

    for index, code in enumerate(present):
        x, y = positions[code]
        color = PALETTE[index % len(PALETTE)]
        canvas.circle(x, y, 30, fill=color)
        canvas.text(x, y - 2, str(code), size=12, anchor="middle",
                    fill="#ffffff", bold=True)
        canvas.text(x, y + 12, _abbrev(code)[:12], size=8, anchor="middle",
                    fill="#ffffff")
        terminal = graph.terminal_probability(code)
        canvas.text(x, y + 46, f"terminal {terminal:.2f}", size=9,
                    anchor="middle", fill="#555555")
    return canvas


def render_all_figures(
    *,
    stats: ErrorStatistics,
    impact: JobImpactAnalyzer,
    availability: AvailabilityAnalyzer,
    graph: PropagationGraph,
    sweep: Mapping[Tuple[float, float], float] | None = None,
    directory: str | Path = "figures",
) -> List[Path]:
    """Write every figure to ``directory``; returns the paths."""
    directory = Path(directory)
    written = [
        mtbe_figure(stats).save(directory / "table1_counts.svg"),
        elapsed_histogram_figure(impact).save(directory / "figure9a_elapsed.svg"),
        errors_vs_duration_figure(impact).save(directory / "figure9b_errors.svg"),
        unavailability_cdf_figure(availability).save(
            directory / "figure9c_unavailability.svg"
        ),
        propagation_figure(graph).save(directory / "figure5_hardware.svg"),
        propagation_figure(
            graph,
            codes=(48, 63, 64, 94, 95),
            title="Memory error recovery paths (Figure 7)",
        ).save(directory / "figure7_memory.svg"),
    ]
    if sweep:
        written.append(
            overprovision_figure(sweep).save(directory / "section54_overprovision.svg")
        )
    return written
