"""Chart builders on top of :class:`~repro.viz.svg.SvgCanvas`.

Every builder returns a finished :class:`SvgCanvas`; axis scaling supports
linear and log10 y-axes (error counts span five decades in Table 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.viz.svg import PALETTE, SvgCanvas

_MARGIN_LEFT = 70
_MARGIN_RIGHT = 20
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 70


@dataclass
class _Frame:
    canvas: SvgCanvas
    x0: float
    y0: float  # top of the plot area
    plot_width: float
    plot_height: float
    y_max: float
    log_y: bool

    def y_of(self, value: float) -> float:
        if self.log_y:
            value = max(value, 0.5)
            fraction = math.log10(value) / math.log10(max(self.y_max, 10.0))
        else:
            fraction = value / self.y_max if self.y_max else 0.0
        return self.y0 + self.plot_height * (1.0 - min(max(fraction, 0.0), 1.0))


def _frame(title: str, width: int, height: int, y_max: float, *,
           log_y: bool = False, y_label: str = "") -> _Frame:
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 22, title, size=14, anchor="middle", bold=True)
    x0 = _MARGIN_LEFT
    y0 = _MARGIN_TOP
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM
    frame = _Frame(canvas, x0, y0, plot_width, plot_height, y_max, log_y)
    # Axes.
    canvas.line(x0, y0, x0, y0 + plot_height)
    canvas.line(x0, y0 + plot_height, x0 + plot_width, y0 + plot_height)
    # Y ticks.
    ticks = _log_ticks(y_max) if log_y else _linear_ticks(y_max)
    for tick in ticks:
        y = frame.y_of(tick)
        canvas.line(x0 - 4, y, x0, y)
        canvas.line(x0, y, x0 + plot_width, y, stroke="#e6e6e6", width=0.6)
        canvas.text(x0 - 8, y + 4, _fmt(tick), size=10, anchor="end")
    if y_label:
        canvas.text(16, y0 + plot_height / 2, y_label, size=11,
                    anchor="middle", rotate=-90.0)
    return frame


def _linear_ticks(y_max: float) -> List[float]:
    if y_max <= 0:
        return [0.0]
    step = 10 ** math.floor(math.log10(y_max))
    if y_max / step < 2:
        step /= 5
    elif y_max / step < 5:
        step /= 2
    ticks = []
    value = 0.0
    while value <= y_max * 1.0001:
        ticks.append(value)
        value += step
    return ticks


def _log_ticks(y_max: float) -> List[float]:
    top = max(int(math.ceil(math.log10(max(y_max, 10.0)))), 1)
    return [10.0**d for d in range(0, top + 1)]


def _fmt(value: float) -> str:
    if value >= 1_000:
        return f"{value:,.0f}"
    if value == int(value):
        return f"{int(value)}"
    return f"{value:g}"


# ---------------------------------------------------------------------------


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 640,
    height: int = 400,
    log_y: bool = False,
    y_label: str = "",
    color: str = PALETTE[0],
) -> SvgCanvas:
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    y_max = max(values) if values else 1.0
    frame = _frame(title, width, height, y_max, log_y=log_y, y_label=y_label)
    n = max(len(values), 1)
    slot = frame.plot_width / n
    bar_width = slot * 0.65
    base = frame.y0 + frame.plot_height
    for i, (label, value) in enumerate(zip(labels, values)):
        x = frame.x0 + i * slot + (slot - bar_width) / 2
        y = frame.y_of(value)
        frame.canvas.rect(x, y, bar_width, base - y, fill=color,
                          title=f"{label}: {_fmt(value)}")
        frame.canvas.text(x + bar_width / 2, base + 14, label, size=10,
                          anchor="middle", rotate=30.0)
    return frame.canvas


def grouped_bar_chart(
    title: str,
    labels: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    *,
    width: int = 720,
    height: int = 420,
    log_y: bool = False,
    y_label: str = "",
) -> SvgCanvas:
    y_max = max((max(values) for _, values in series if len(values)), default=1.0)
    frame = _frame(title, width, height, y_max, log_y=log_y, y_label=y_label)
    n = max(len(labels), 1)
    slot = frame.plot_width / n
    group_width = slot * 0.7
    bar_width = group_width / max(len(series), 1)
    base = frame.y0 + frame.plot_height
    for s_index, (name, values) in enumerate(series):
        color = PALETTE[s_index % len(PALETTE)]
        for i, value in enumerate(values):
            x = frame.x0 + i * slot + (slot - group_width) / 2 + s_index * bar_width
            y = frame.y_of(value)
            frame.canvas.rect(x, y, bar_width * 0.92, base - y, fill=color,
                              title=f"{name} / {labels[i]}: {_fmt(value)}")
        # Legend.
        lx = frame.x0 + frame.plot_width - 150
        ly = frame.y0 + 14 + 16 * s_index
        frame.canvas.rect(lx, ly - 9, 10, 10, fill=color)
        frame.canvas.text(lx + 15, ly, name, size=11)
    for i, label in enumerate(labels):
        frame.canvas.text(frame.x0 + i * slot + slot / 2, base + 14, label,
                          size=10, anchor="middle", rotate=30.0)
    return frame.canvas


def cdf_chart(
    title: str,
    values: Sequence[float],
    *,
    width: int = 640,
    height: int = 400,
    x_label: str = "",
    log_x: bool = False,
    color: str = PALETTE[0],
) -> SvgCanvas:
    if not len(values):
        raise ValueError("cdf_chart needs at least one value")
    ordered = sorted(float(v) for v in values)
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 22, title, size=14, anchor="middle", bold=True)
    x0, y0 = _MARGIN_LEFT, _MARGIN_TOP
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM
    base = y0 + plot_height
    canvas.line(x0, y0, x0, base)
    canvas.line(x0, base, x0 + plot_width, base)

    lo, hi = ordered[0], ordered[-1]
    if log_x:
        lo = max(lo, hi / 1e6, 1e-6)

    def x_of(value: float) -> float:
        if hi == lo:
            return x0 + plot_width / 2
        if log_x:
            fraction = (math.log10(max(value, lo)) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            fraction = (value - lo) / (hi - lo)
        return x0 + plot_width * min(max(fraction, 0.0), 1.0)

    points = []
    n = len(ordered)
    for i, value in enumerate(ordered):
        points.append((x_of(value), base - plot_height * (i + 1) / n))
    canvas.polyline(points, stroke=color, width=1.8)

    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = base - plot_height * fraction
        canvas.line(x0 - 4, y, x0, y)
        canvas.text(x0 - 8, y + 4, f"{fraction:.2f}", size=10, anchor="end")
    for fraction in (0.0, 0.5, 1.0):
        value = lo + (hi - lo) * fraction if not log_x else lo * (hi / lo) ** fraction
        x = x_of(value)
        canvas.line(x, base, x, base + 4)
        canvas.text(x, base + 16, _fmt(value), size=10, anchor="middle")
    if x_label:
        canvas.text(x0 + plot_width / 2, height - 12, x_label, size=11,
                    anchor="middle")
    return canvas


def line_chart(
    title: str,
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    *,
    width: int = 640,
    height: int = 400,
    x_label: str = "",
    y_label: str = "",
) -> SvgCanvas:
    all_points = [p for _, points in series for p in points]
    if not all_points:
        raise ValueError("line_chart needs data")
    y_max = max(y for _, y in all_points) or 1.0
    x_lo = min(x for x, _ in all_points)
    x_hi = max(x for x, _ in all_points)
    frame = _frame(title, width, height, y_max, y_label=y_label)
    base = frame.y0 + frame.plot_height

    def x_of(value: float) -> float:
        if x_hi == x_lo:
            return frame.x0 + frame.plot_width / 2
        return frame.x0 + frame.plot_width * (value - x_lo) / (x_hi - x_lo)

    for index, (name, points) in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        frame.canvas.polyline(
            [(x_of(x), frame.y_of(y)) for x, y in points], stroke=color, width=2.0
        )
        for x, y in points:
            frame.canvas.circle(x_of(x), frame.y_of(y), 3.0, fill=color)
        lx = frame.x0 + 12
        ly = frame.y0 + 14 + 16 * index
        frame.canvas.rect(lx, ly - 9, 10, 10, fill=color)
        frame.canvas.text(lx + 15, ly, name, size=11)
    for fraction in (0.0, 0.5, 1.0):
        value = x_lo + (x_hi - x_lo) * fraction
        x = x_of(value)
        frame.canvas.line(x, base, x, base + 4)
        frame.canvas.text(x, base + 16, _fmt(value), size=10, anchor="middle")
    if x_label:
        frame.canvas.text(frame.x0 + frame.plot_width / 2, height - 12, x_label,
                          size=11, anchor="middle")
    return frame.canvas
