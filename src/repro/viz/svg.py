"""A minimal SVG canvas: shapes, text, and axis helpers.

Produces clean standalone ``.svg`` documents; all coordinates are in user
units with the origin at the top-left (SVG convention).  The chart layer
(:mod:`repro.viz.charts`) handles data-to-pixel mapping.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple

#: A small colorbrewer-style palette used across charts.
PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)


@dataclass
class SvgCanvas:
    width: int
    height: int
    background: str = "#ffffff"
    _elements: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("canvas dimensions must be positive")

    # -- primitives --------------------------------------------------------

    def rect(self, x: float, y: float, w: float, h: float, *, fill: str,
             stroke: str = "none", opacity: float = 1.0, title: str = "") -> None:
        tooltip = f"<title>{html.escape(title)}</title>" if title else ""
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}" opacity="{opacity}">{tooltip}</rect>'
            if title
            else f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}" opacity="{opacity}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, *,
             stroke: str = "#333333", width: float = 1.0,
             dash: str | None = None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], *,
                 stroke: str, width: float = 1.5) -> None:
        path = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, cx: float, cy: float, r: float, *, fill: str) -> None:
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}"/>'
        )

    def text(self, x: float, y: float, content: str, *, size: int = 12,
             anchor: str = "start", fill: str = "#222222",
             rotate: float | None = None, bold: bool = False) -> None:
        weight = ' font-weight="bold"' if bold else ""
        transform = (
            f' transform="rotate({rotate:.1f} {x:.2f} {y:.2f})"'
            if rotate is not None
            else ""
        )
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="Helvetica, Arial, sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{weight}{transform}>{html.escape(content)}</text>'
        )

    def arrow(self, x1: float, y1: float, x2: float, y2: float, *,
              stroke: str = "#555555", width: float = 1.4) -> None:
        """A line with an arrowhead at (x2, y2)."""
        self.line(x1, y1, x2, y2, stroke=stroke, width=width)
        # Arrowhead: two short strokes at ~25 degrees back from the tip.
        import math

        angle = math.atan2(y2 - y1, x2 - x1)
        size = 7.0
        for offset in (math.radians(155), math.radians(-155)):
            self.line(
                x2,
                y2,
                x2 + size * math.cos(angle + offset),
                y2 + size * math.sin(angle + offset),
                stroke=stroke,
                width=width,
            )

    # -- document ----------------------------------------------------------

    def render(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="{self.width}" height="{self.height}" '
            f'fill="{self.background}"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(), encoding="utf-8")
        return path
