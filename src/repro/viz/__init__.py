"""Dependency-free SVG figure rendering.

The evaluation's tables render as text (:mod:`repro.core.report`); this
package draws the paper's *figures* as standalone SVG files with no
plotting dependency — bar charts, CDFs, and the propagation graphs of
Figures 5-7 — so ``examples/render_figures.py`` can emit a ``figures/``
directory from any dataset.
"""

from repro.viz.svg import SvgCanvas
from repro.viz.charts import bar_chart, cdf_chart, grouped_bar_chart, line_chart
from repro.viz.figures import (
    propagation_figure,
    render_all_figures,
    unavailability_cdf_figure,
    elapsed_histogram_figure,
    errors_vs_duration_figure,
    mtbe_figure,
    overprovision_figure,
)

__all__ = [
    "SvgCanvas",
    "bar_chart",
    "cdf_chart",
    "grouped_bar_chart",
    "line_chart",
    "propagation_figure",
    "render_all_figures",
    "unavailability_cdf_figure",
    "elapsed_histogram_figure",
    "errors_vs_duration_figure",
    "mtbe_figure",
    "overprovision_figure",
]
