"""Replay a fault trace into per-node log files, live.

The generation-side counterpart of the tailers: takes the syslog lines a
:class:`~repro.faults.events.FaultTrace` renders to, orders them the way
a real collection pipeline would see them (each node's file chronologial,
cross-node arrival by timestamp via a streaming heap merge — no global
sort), and *appends* them to ``<dir>/<node>.log`` over time so tailers
experience genuine live growth.

``speedup`` maps simulation seconds to wall-clock seconds (e.g. 86 400
plays a day per second); ``None`` replays flat-out, which is what tests
use to exercise the concurrency without waiting.
"""

from __future__ import annotations

import heapq
import threading
import time
from pathlib import Path
from typing import Dict, IO, Iterable, Iterator, List, Optional

from repro.faults.events import FaultTrace
from repro.syslog.format import render_trace
from repro.syslog.writer import _node_of
from repro.util.timeutil import parse_timestamp


def _merged_lines(lines: Iterable[str]) -> Iterator[str]:
    """Arrival-order merge: bucket per node, sort each bucket (node-local
    syslog is chronological), then heap-merge buckets by timestamp prefix.

    The per-node sort mirrors what each node's syslog daemon does before
    anything ships; the cross-node merge is a k-way streaming heap, not a
    global sort of the whole log volume.
    """
    buckets: Dict[str, List[str]] = {}
    for line in lines:
        buckets.setdefault(_node_of(line), []).append(line)
    for bucket in buckets.values():
        bucket.sort()  # ISO-8601 prefix: lexical == chronological
    yield from heapq.merge(*buckets.values())


class LiveLogEmitter:
    """Append a trace's syslog lines to per-node files in arrival order."""

    def __init__(
        self,
        lines: Iterable[str],
        directory: str | Path,
        *,
        speedup: Optional[float] = None,
        already_ordered: bool = False,
    ) -> None:
        if speedup is not None and speedup <= 0:
            raise ValueError("speedup must be positive (or None for flat-out)")
        self.directory = Path(directory)
        self.speedup = speedup
        self._lines = iter(lines) if already_ordered else _merged_lines(lines)
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.lines_written = 0

    @classmethod
    def from_trace(
        cls,
        trace: FaultTrace,
        directory: str | Path,
        *,
        seed: int = 0,
        pids: Optional[Dict[int, int]] = None,
        speedup: Optional[float] = None,
    ) -> "LiveLogEmitter":
        return cls(
            render_trace(trace.events, seed=seed, pids=pids),
            directory,
            speedup=speedup,
        )

    # ------------------------------------------------------------------

    def run(self) -> int:
        """Emit synchronously; returns the number of lines written."""
        self.directory.mkdir(parents=True, exist_ok=True)
        handles: Dict[str, IO[str]] = {}
        wall_start = time.monotonic()
        sim_start: Optional[float] = None
        try:
            for line in self._lines:
                if self._stop.is_set():
                    break
                if self.speedup is not None:
                    sim_t = parse_timestamp(line.split(" ", 1)[0])
                    if sim_start is None:
                        sim_start = sim_t
                    due = wall_start + (sim_t - sim_start) / self.speedup
                    delay = due - time.monotonic()
                    if delay > 0:
                        if self._stop.wait(delay):
                            break
                node = _node_of(line)
                handle = handles.get(node)
                if handle is None:
                    handle = open(
                        self.directory / f"{node}.log", "a", encoding="utf-8"
                    )
                    handles[node] = handle
                handle.write(line + "\n")
                handle.flush()
                self.lines_written += 1
        finally:
            for handle in handles.values():
                handle.close()
        return self.lines_written

    # -- background operation ------------------------------------------

    def start(self) -> "LiveLogEmitter":
        if self._thread is not None:
            raise RuntimeError("emitter already started")
        self._thread = threading.Thread(
            target=self.run, daemon=True, name="fleet-emitter"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def done(self) -> bool:
        return self._thread is not None and not self._thread.is_alive()
