"""A small, alert-rich simulated cluster for live service demos and tests.

The full Ampere calibration reproduces the paper's *rates* — at demo
scales that means minutes of wall clock before anything interesting
happens and no guarantee the rare codes (XID 79 appears 31 times in 855
days) show up at all.  This module compresses the interesting failure
modes into a two-day window on a few nodes so that ``repro-delta serve
--simulate``, the integration tests, and ``examples/live_fleet_service.py``
each see every default alert rule fire: a fall-off-the-bus, repeated GSP
timeouts, a DBE -> row-remap chain, a bursty uncontained offender, and a
long-persisting run that trips the Section-4.3 persistence alarm.

The *mechanisms* are untouched: events come from the real
:class:`~repro.faults.injector.FaultInjector` walking a real propagation
kernel; only the counts and window are demo-sized.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster import ClusterInventory, DeltaShape, build_delta_cluster
from repro.faults.calibration import (
    CalibrationProfile,
    DelayModel,
    KernelRow,
    OffenderSkew,
    Transition,
    XidCalibration,
    _persistence,
)
from repro.faults.events import FaultTrace
from repro.faults.injector import FaultInjector, InjectorConfig
from repro.faults.xid import Xid

#: Demo observation window (days): long enough for windowed rules to have
#: headroom, short enough that flat-out replay takes a blink.
DEMO_WINDOW_DAYS = 2.0


def demo_cluster() -> ClusterInventory:
    """A 6-GPU-node miniature Delta (A40 pairs, A100 quads, one octet)."""
    return build_delta_cluster(
        DeltaShape(
            cpu_nodes=1, a40_x4_nodes=2, a100_x4_nodes=2,
            a100_x8_nodes=1, gh200_nodes=0,
        )
    )


def _calibration(
    xid: Xid,
    count: int,
    persistence_mean: float,
    persistence_p50: float,
    *,
    offenders: OffenderSkew | None = None,
) -> XidCalibration:
    return XidCalibration(
        xid=xid,
        count=count,
        persistence=_persistence(persistence_mean, persistence_p50),
        paper_mtbe_all_nodes_hours=float("nan"),
        paper_mtbe_per_node_hours=float("nan"),
        paper_persistence_mean=persistence_mean,
        paper_persistence_p50=persistence_p50,
        paper_persistence_p95=float("nan"),
        offenders=offenders,
    )


def demo_profile() -> CalibrationProfile:
    """Two compressed days of faults covering every default alert rule."""
    fast = DelayModel(6.0, 30.0)
    return CalibrationProfile(
        name="fleet-demo",
        window_days=DEMO_WINDOW_DAYS,
        reference_node_count=6,
        xids={
            # The bread-and-butter code: keeps the stream busy.
            Xid.MMU: _calibration(Xid.MMU, 24, 30.0, 12.0),
            # Rare hardware loss: the drain-node rule's trigger.
            Xid.FALLEN_OFF_BUS: _calibration(Xid.FALLEN_OFF_BUS, 3, 1.0, 0.5),
            # GSP timeouts recur on the same part via the kernel below, so
            # the repeated-reset rule sees clustered onsets.
            Xid.GSP: _calibration(Xid.GSP, 12, 45.0, 20.0),
            # DBE roots chain into RRE/RRF (retire-page audit rule).
            Xid.DBE: _calibration(Xid.DBE, 4, 20.0, 10.0),
            Xid.RRE: _calibration(Xid.RRE, 4, 15.0, 8.0),
            Xid.RRF: _calibration(Xid.RRF, 2, 15.0, 8.0),
            # One defective part spews uncontained errors in episodes
            # (replace-GPU rule) with a heavy persistence tail (the
            # Section-4.3 alarm + PAGE_SRE rule).
            Xid.UNCONTAINED: _calibration(
                Xid.UNCONTAINED, 40, 900.0, 120.0,
                offenders=OffenderSkew(
                    n_offenders=2, offender_share=0.9, top_share=0.8
                ),
            ),
        },
        kernel={
            Xid.GSP: KernelRow(
                Xid.GSP,
                transitions=(Transition(Xid.GSP, 0.8, DelayModel(60.0, 1_800.0)),),
                inoperable_prob=0.4,
            ),
            Xid.DBE: KernelRow(
                Xid.DBE,
                transitions=(Transition(Xid.RRE, 0.85, fast),),
            ),
            Xid.RRE: KernelRow(
                Xid.RRE,
                transitions=(Transition(Xid.RRF, 0.35, fast),),
            ),
            Xid.FALLEN_OFF_BUS: KernelRow(
                Xid.FALLEN_OFF_BUS, inoperable_prob=1.0
            ),
            Xid.UNCONTAINED: KernelRow(Xid.UNCONTAINED, inoperable_prob=0.2),
        },
        nvlink_switch_fault_incidents=0,
        nvlink_fanout=(),
    )


def demo_trace(seed: int = 11, cluster: ClusterInventory | None = None) -> FaultTrace:
    """Inject the demo profile onto the demo cluster."""
    injector = FaultInjector(
        demo_profile(),
        InjectorConfig(scale=1.0, seed=seed, deterministic_counts=True),
    )
    return injector.generate(cluster or demo_cluster())


def demo_counts(trace: FaultTrace) -> Dict[int, int]:
    """Ground-truth event counts by integer XID (for reports/tests)."""
    return {int(xid): count for xid, count in trace.counts_by_xid().items()}
