"""Prometheus text-format metrics exposition over stdlib ``http.server``.

Two pieces:

* :func:`render_prometheus` — serialize a service snapshot (registry +
  rule engine + tailer stats) into Prometheus exposition format 0.0.4;
* :class:`MetricsServer` — a threaded HTTP server with ``/metrics``
  (scrape endpoint) and ``/healthz`` (liveness), bindable to an
  ephemeral port for tests.

No third-party client library: the text format is a stable, trivial
serialization, and writing it directly keeps the service dependency-free.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.faults.xid import XID_CATALOG, Xid
from repro.fleet.registry import GpuHealth, HealthRegistry
from repro.fleet.rules import RuleEngine
from repro.fleet.tailer import DirectoryTailer

#: How many per-GPU risk gauges to expose (highest risk first); the full
#: fleet would blow up scrape cardinality, the top of the tail is what the
#: paper says to watch.
RISK_TOP_K = 16


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _MetricsBuilder:
    """Accumulates HELP/TYPE headers and samples in exposition format."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def metric(
        self,
        name: str,
        kind: str,
        help_text: str,
        samples: Iterable[Tuple[Dict[str, str], float]],
    ) -> None:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            if value == float("inf"):
                rendered = "+Inf"
            elif value != value:  # NaN
                rendered = "NaN"
            elif float(value).is_integer():
                rendered = str(int(value))
            else:
                rendered = repr(float(value))
            self._lines.append(f"{name}{_fmt_labels(labels)} {rendered}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _xid_labels(xid: int) -> Dict[str, str]:
    try:
        abbrev = XID_CATALOG[Xid(xid)].abbreviation
    except (ValueError, KeyError):
        abbrev = f"XID{xid}"
    return {"xid": str(xid), "abbrev": abbrev}


def render_prometheus(
    registry: HealthRegistry,
    engine: Optional[RuleEngine] = None,
    tailer: Optional[DirectoryTailer] = None,
    extra_gauges: Optional[Dict[str, float]] = None,
    counters: Optional[Dict[str, float]] = None,
) -> str:
    """One scrape of the fleet health service's state.

    ``counters`` is a snapshot of the service's ``repro.obs``
    :class:`~repro.obs.metrics.CounterSet` — the self-observability
    series (``fleet.records_ingested``, ``store.flushes`` /
    ``store.flush_seconds`` / ``store.records_written``).
    """
    out = _MetricsBuilder()
    counters = counters or {}
    snapshot: List[GpuHealth] = registry.snapshot()

    out.metric(
        "repro_fleet_tracked_gpus", "gauge",
        "GPUs with at least one XID record ingested.",
        [({}, float(len(snapshot)))],
    )
    # Prefer the service's own ingest counter (counts every record the
    # feed consumed, even for GPUs later evicted from the registry);
    # fall back to the registry's per-GPU line totals.
    ingested = counters.get(
        "fleet.records_ingested", float(sum(h.raw_lines for h in snapshot))
    )
    out.metric(
        "repro_fleet_records_ingested_total", "counter",
        "Raw NVRM Xid lines ingested into the health registry.",
        [({}, float(ingested))],
    )
    onsets = registry.onset_counts()
    out.metric(
        "repro_fleet_error_onsets_total", "counter",
        "Coalesced error onsets (each eventual coalesced error counted "
        "once, at its first line).",
        [(_xid_labels(xid), float(count)) for xid, count in sorted(onsets.items())],
    )
    out.metric(
        "repro_fleet_open_runs", "gauge",
        "Error runs currently open in the streaming coalescer.",
        [({}, float(registry.open_runs()))],
    )
    out.metric(
        "repro_fleet_persistence_alarms_total", "counter",
        "Section-4.3 persistence alarms raised on still-open runs.",
        [({}, float(registry.persistence_alarms()))],
    )

    top = sorted(snapshot, key=lambda h: h.risk_score, reverse=True)[:RISK_TOP_K]
    out.metric(
        "repro_fleet_gpu_risk_score", "gauge",
        f"Online long-persistence risk score, top {RISK_TOP_K} GPUs.",
        [
            ({"node": h.node_id, "pci_bus": h.pci_bus}, h.risk_score)
            for h in top
            if h.risk_score > 0.0
        ],
    )
    rate_window = registry.rate_window_seconds
    out.metric(
        "repro_fleet_gpu_error_rate_per_hour", "gauge",
        f"Error onsets per hour over the rolling {rate_window:.0f}s window, "
        f"top {RISK_TOP_K} GPUs by rate.",
        [
            (
                {"node": h.node_id, "pci_bus": h.pci_bus},
                h.error_rate_per_hour(rate_window),
            )
            for h in sorted(
                snapshot,
                key=lambda h: h.error_rate_per_hour(rate_window),
                reverse=True,
            )[:RISK_TOP_K]
            if h.recent
        ],
    )

    if engine is not None:
        by_rule = {rule.name: rule for rule in engine.rules}
        out.metric(
            "repro_fleet_alerts_total", "counter",
            "Alerts fired per rule since service start.",
            [
                (
                    {
                        "rule": name,
                        "action": by_rule[name].action.value
                        if name in by_rule else "unknown",
                    },
                    float(count),
                )
                for name, count in sorted(engine.fired_counts.items())
            ],
        )

    if tailer is not None:
        stats = tailer.stats()
        out.metric(
            "repro_fleet_tailer_files", "gauge",
            "Log files currently tracked by the tailer pool.",
            [({}, float(stats.files))],
        )
        out.metric(
            "repro_fleet_tailer_lines_total", "counter",
            "Complete log lines read by the tailer pool.",
            [({}, float(stats.lines_seen))],
        )
        out.metric(
            "repro_fleet_tailer_bytes_total", "counter",
            "Bytes read from followed log files.",
            [({}, float(stats.bytes_read))],
        )
        out.metric(
            "repro_fleet_queue_depth", "gauge",
            "Records waiting in the bounded ingest queue (backpressure "
            "boundary).",
            [({}, float(tailer.queue_depth))],
        )

    if "store.flushes" in counters:
        out.metric(
            "repro_fleet_store_flushes_total", "counter",
            "Segment flushes performed by the durable store writer.",
            [({}, float(counters["store.flushes"]))],
        )
        out.metric(
            "repro_fleet_store_flush_seconds_total", "counter",
            "Wall seconds spent flushing segments to the store.",
            [({}, float(counters.get("store.flush_seconds", 0.0)))],
        )
        out.metric(
            "repro_fleet_store_records_written_total", "counter",
            "Records persisted into the store by the writer.",
            [({}, float(counters.get("store.records_written", 0.0)))],
        )

    for name, value in (extra_gauges or {}).items():
        out.metric(name, "gauge", "Service-supplied gauge.", [({}, value)])
    return out.render()


# ---------------------------------------------------------------------------
# HTTP server
# ---------------------------------------------------------------------------


class MetricsServer:
    """Threaded HTTP server exposing ``/metrics`` and ``/healthz``.

    ``provider`` is called per scrape (under no lock — the registry's own
    shard locks make reads consistent enough for monitoring).  Port 0
    binds an ephemeral port; read it back from :attr:`port`.
    """

    def __init__(
        self,
        provider: Callable[[], str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.provider = provider
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.split("?")[0] == "/metrics":
                    try:
                        body = outer.provider().encode("utf-8")
                    except Exception as exc:  # surface scrape failures as 500s
                        self.send_error(500, explain=str(exc))
                        return
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path.split("?")[0] == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain; charset=utf-8")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # scrapes are high-frequency; keep the console quiet

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True, name="fleet-metrics"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
