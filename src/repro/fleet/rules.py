"""Declarative alert rules encoding the paper's operator guidance.

Each :class:`AlertRule` is data, not code: which XID codes it watches, how
many onsets within what window, an optional precursor code (for chain
rules like DBE -> row-remap), or the persistence-alarm trigger.  One
:class:`RuleEngine` evaluates every rule against the registry's ingest
facts and emits :class:`Alert` objects to pluggable sinks.

The default catalog (:func:`default_rules`) is the paper's Section 4
operator guidance:

* XID 79 (GPU fallen off the bus) -> drain the node (Section 4.4.1:
  hardware loss, SRE intervention);
* repeated XID 119 (GSP RPC timeout) -> reset the GPU (Section 5.1:
  GSP errors dominate and need a reset/reboot to clear);
* XID 48 followed by 63/64 (DBE -> row-remap chain) -> audit retired
  pages (Section 4.4.3: remapping failures mean the part is running out
  of spare rows);
* bursty XID 95 (uncontained ECC) offenders -> replace the GPU
  (Section 4.2: >90% of uncontained errors came from a few defective
  parts);
* any persistence alarm -> page an SRE (Section 4.3: watch the tail of
  the persistence distribution live).
"""

from __future__ import annotations

import enum
import json
import sys
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, IO, Iterable, List, Optional, Protocol, Tuple

from repro.core.parsing import RawXidRecord
from repro.core.streaming import PersistenceAlarm
from repro.faults.xid import XID_CATALOG, Xid
from repro.fleet.registry import GpuHealth
from repro.util.timeutil import format_duration, format_timestamp

GpuKey = Tuple[str, str]


class Action(enum.Enum):
    """Operator action an alert recommends."""

    DRAIN_NODE = "drain_node"
    RESET_GPU = "reset_gpu"
    RETIRE_PAGE_AUDIT = "retire_page_audit"
    REPLACE_GPU = "replace_gpu"
    PAGE_SRE = "page_sre"


class Scope(enum.Enum):
    """Granularity the rule's state and cooldown apply at."""

    GPU = "gpu"
    NODE = "node"


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule.

    Onset rules: fire when ``min_count`` onsets of any code in ``xids``
    land on one scope unit within ``window_seconds`` (and, if
    ``after_xid`` is set, only when that precursor code was seen on the
    same GPU within ``window_seconds`` before the triggering onset).

    Alarm rules (``on_alarm=True``): fire on a
    :class:`~repro.core.streaming.PersistenceAlarm` whose open
    persistence is at least ``min_open_seconds`` (``xids`` empty = any
    code).

    ``cooldown_seconds`` suppresses re-fires for the same scope unit, so
    a misbehaving part produces one actionable alert per cooldown, not an
    alert storm.
    """

    name: str
    description: str
    action: Action
    severity: str = "warning"  # "info" | "warning" | "critical"
    xids: Tuple[int, ...] = ()
    min_count: int = 1
    window_seconds: float = 3_600.0
    after_xid: Optional[int] = None
    on_alarm: bool = False
    min_open_seconds: float = 0.0
    scope: Scope = Scope.GPU
    cooldown_seconds: float = 1_800.0

    def __post_init__(self) -> None:
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if not self.on_alarm and not self.xids:
            raise ValueError(f"rule {self.name!r} watches no XID codes")


@dataclass(frozen=True)
class Alert:
    """One fired rule, ready for a sink."""

    time: float
    rule: str
    action: Action
    severity: str
    node_id: str
    pci_bus: str
    xid: int
    summary: str
    details: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "timestamp": format_timestamp(self.time),
            "rule": self.rule,
            "action": self.action.value,
            "severity": self.severity,
            "node": self.node_id,
            "pci_bus": self.pci_bus,
            "xid": self.xid,
            "summary": self.summary,
            "details": self.details,
        }

    def render(self) -> str:
        return (
            f"ALERT [{self.severity}] {format_timestamp(self.time)} "
            f"{self.rule} -> {self.action.value}: {self.summary}"
        )


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class AlertSink(Protocol):
    """Anything that can receive fired alerts."""

    def emit(self, alert: Alert) -> None: ...


class MemorySink:
    """Thread-safe in-memory sink (tests, snapshots)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._alerts: List[Alert] = []

    def emit(self, alert: Alert) -> None:
        with self._lock:
            self._alerts.append(alert)

    @property
    def alerts(self) -> List[Alert]:
        with self._lock:
            return list(self._alerts)

    def of_action(self, action: Action) -> List[Alert]:
        return [a for a in self.alerts if a.action is action]


class StdoutSink:
    """Human-readable one-line-per-alert sink."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def emit(self, alert: Alert) -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        with self._lock:
            print(alert.render(), file=stream, flush=True)


class JsonLinesSink:
    """Append alerts as JSON lines to a file (the ops-pipeline format)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, alert: Alert) -> None:
        line = json.dumps(alert.to_dict())
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.close()


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


@dataclass
class _RuleState:
    """Per-(rule, scope-unit) sliding state.

    Every field is *event time*: windows, cooldowns, and dedup key off the
    records' own timestamps, never the wall clock, so delivery pacing is
    irrelevant — a trace replayed at 100x (or flat-out from a store)
    fires exactly the alerts the live feed would have.
    """

    onsets: Deque[float] = field(default_factory=deque)
    last_fired: float = float("-inf")
    #: Latest event time observed for this scope unit (regression guard).
    last_event: float = float("-inf")

    def observe(self, event_time: float, horizon: float) -> None:
        """Advance to ``event_time``; reset on a new-timeline jump.

        A backward jump farther than ``horizon`` (the rule's full memory:
        window plus cooldown) means the feed restarted on an earlier
        timeline — a re-run demo emitter, a replay seeked back.  Carrying
        the old cooldown across would suppress every alert of the new
        pass, so the state starts over instead.
        """
        if event_time < self.last_event - horizon:
            self.onsets.clear()
            self.last_fired = float("-inf")
            self.last_event = event_time
        else:
            self.last_event = max(self.last_event, event_time)


class RuleEngine:
    """Evaluate rules against ingest facts; fan alerts out to sinks.

    Thread-safety: one internal lock around all rule state — evaluation is
    cheap (a few deque operations per rule), so a single lock is simpler
    and safely serves multi-threaded ingestion.

    Time base: purely *event time*.  All windows, precursor matches, and
    cooldowns compare record timestamps with record timestamps; the wall
    clock never enters, which is what makes accelerated replay (the
    ``serve --simulate`` demo at >1x, ``repro-delta replay``) exact.
    """

    def __init__(
        self, rules: Iterable[AlertRule], sinks: Iterable[AlertSink] = ()
    ) -> None:
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate rule names")
        self.sinks: List[AlertSink] = list(sinks)
        self._lock = threading.Lock()
        self._state: Dict[Tuple[str, GpuKey], _RuleState] = {}
        #: Per-GPU last onset time of each XID (precursor matching).
        self._last_onset: Dict[GpuKey, Dict[int, float]] = {}
        self.fired_counts: Dict[str, int] = {r.name: 0 for r in self.rules}

    def add_sink(self, sink: AlertSink) -> None:
        self.sinks.append(sink)

    # ------------------------------------------------------------------

    def observe_onset(
        self, record: RawXidRecord, health: Optional[GpuHealth] = None
    ) -> List[Alert]:
        """Evaluate onset rules for one new coalesced-run start."""
        fired: List[Alert] = []
        gpu_key = record.gpu_key
        with self._lock:
            for rule in self.rules:
                if rule.on_alarm or record.xid not in rule.xids:
                    continue
                if rule.after_xid is not None:
                    seen = self._last_onset.get(gpu_key, {}).get(rule.after_xid)
                    # The precursor must lie within the window *before* the
                    # trigger; a "precursor" in the event-time future is a
                    # leftover from a pre-regression timeline.
                    if seen is None or not 0.0 <= record.time - seen <= rule.window_seconds:
                        continue
                scope_key = gpu_key if rule.scope is Scope.GPU else (record.node_id, "")
                state = self._state.setdefault((rule.name, scope_key), _RuleState())
                state.observe(record.time, rule.window_seconds + rule.cooldown_seconds)
                state.onsets.append(record.time)
                cutoff = record.time - rule.window_seconds
                while state.onsets and state.onsets[0] < cutoff:
                    state.onsets.popleft()
                if len(state.onsets) < rule.min_count:
                    continue
                if record.time - state.last_fired < rule.cooldown_seconds:
                    continue
                state.last_fired = record.time
                fired.append(self._make_onset_alert(rule, record, len(state.onsets), health))
            # Record the onset for precursor matching *after* evaluation so
            # a code can't act as its own precursor on the same record.
            self._last_onset.setdefault(gpu_key, {})[record.xid] = record.time
        self._dispatch(fired)
        return fired

    def observe_alarm(self, alarm: PersistenceAlarm) -> List[Alert]:
        """Evaluate persistence-alarm rules."""
        fired: List[Alert] = []
        gpu_key = (alarm.node_id, alarm.pci_bus)
        with self._lock:
            for rule in self.rules:
                if not rule.on_alarm:
                    continue
                if rule.xids and alarm.xid not in rule.xids:
                    continue
                if alarm.open_persistence < rule.min_open_seconds:
                    continue
                now = alarm.start_time + alarm.open_persistence
                scope_key = gpu_key if rule.scope is Scope.GPU else (alarm.node_id, "")
                state = self._state.setdefault((rule.name, scope_key), _RuleState())
                state.observe(now, rule.window_seconds + rule.cooldown_seconds)
                if now - state.last_fired < rule.cooldown_seconds:
                    continue
                state.last_fired = now
                abbrev = _abbrev(alarm.xid)
                fired.append(
                    Alert(
                        time=now,
                        rule=rule.name,
                        action=rule.action,
                        severity=rule.severity,
                        node_id=alarm.node_id,
                        pci_bus=alarm.pci_bus,
                        xid=alarm.xid,
                        summary=(
                            f"{alarm.node_id}/{alarm.pci_bus} XID {alarm.xid} "
                            f"({abbrev}) open for "
                            f"{format_duration(alarm.open_persistence)} "
                            f"({alarm.n_raw:,} duplicate lines)"
                        ),
                        details={
                            "open_persistence": alarm.open_persistence,
                            "n_raw": alarm.n_raw,
                            "start_time": alarm.start_time,
                        },
                    )
                )
        self._dispatch(fired)
        return fired

    # ------------------------------------------------------------------

    def _make_onset_alert(
        self,
        rule: AlertRule,
        record: RawXidRecord,
        window_count: int,
        health: Optional[GpuHealth],
    ) -> Alert:
        abbrev = _abbrev(record.xid)
        unit = record.node_id if rule.scope is Scope.NODE else (
            f"{record.node_id}/{record.pci_bus}"
        )
        summary = f"{unit} XID {record.xid} ({abbrev})"
        if rule.min_count > 1:
            summary += (
                f" x{window_count} within "
                f"{format_duration(rule.window_seconds)}"
            )
        if rule.after_xid is not None:
            summary += f" following XID {rule.after_xid}"
        details: Dict[str, object] = {
            "window_count": window_count,
            "window_seconds": rule.window_seconds,
        }
        if health is not None:
            details["gpu_total_onsets"] = health.total_onsets
            details["gpu_risk_score"] = round(health.risk_score, 4)
        return Alert(
            time=record.time,
            rule=rule.name,
            action=rule.action,
            severity=rule.severity,
            node_id=record.node_id,
            pci_bus=record.pci_bus,
            xid=record.xid,
            summary=summary,
            details=details,
        )

    def _dispatch(self, alerts: List[Alert]) -> None:
        if not alerts:
            return
        with self._lock:
            for alert in alerts:
                self.fired_counts[alert.rule] = self.fired_counts.get(alert.rule, 0) + 1
        for sink in self.sinks:
            for alert in alerts:
                sink.emit(alert)

    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired_counts.values())


def _abbrev(xid: int) -> str:
    try:
        return XID_CATALOG[Xid(xid)].abbreviation
    except (ValueError, KeyError):
        return f"XID{xid}"


# ---------------------------------------------------------------------------
# The default catalog (paper Section 4 guidance)
# ---------------------------------------------------------------------------


def default_rules(
    *,
    gsp_repeat_count: int = 3,
    gsp_window_seconds: float = 6 * 3_600.0,
    uncontained_burst_count: int = 5,
    uncontained_window_seconds: float = 3_600.0,
    remap_window_seconds: float = 3_600.0,
) -> Tuple[AlertRule, ...]:
    """The paper's operator guidance as a rule catalog."""
    return (
        AlertRule(
            name="xid79-fallen-off-bus",
            description=(
                "GPU fell off the system bus — hardware loss; drain the "
                "node for SRE intervention (Section 4.4.1)."
            ),
            action=Action.DRAIN_NODE,
            severity="critical",
            xids=(int(Xid.FALLEN_OFF_BUS),),
            min_count=1,
            window_seconds=60.0,
            scope=Scope.NODE,
            cooldown_seconds=3_600.0,
        ),
        AlertRule(
            name="xid119-gsp-repeat",
            description=(
                "Repeated GSP RPC timeouts on one GPU — reset the GPU "
                "before the firmware wedges the node (Section 5.1)."
            ),
            action=Action.RESET_GPU,
            severity="warning",
            xids=(int(Xid.GSP),),
            min_count=gsp_repeat_count,
            window_seconds=gsp_window_seconds,
            cooldown_seconds=3_600.0,
        ),
        AlertRule(
            name="dbe-remap-chain",
            description=(
                "Row-remapping event/failure following a double-bit ECC "
                "error — audit retired pages; an RRF means spare rows are "
                "running out (Section 4.4.3)."
            ),
            action=Action.RETIRE_PAGE_AUDIT,
            severity="warning",
            xids=(int(Xid.RRE), int(Xid.RRF)),
            min_count=1,
            window_seconds=remap_window_seconds,
            after_xid=int(Xid.DBE),
            cooldown_seconds=1_800.0,
        ),
        AlertRule(
            name="uncontained-burst",
            description=(
                "Bursty uncontained-ECC offender — the defective-part "
                "signature; replace the GPU (Section 4.2 (iii))."
            ),
            action=Action.REPLACE_GPU,
            severity="critical",
            xids=(int(Xid.UNCONTAINED),),
            min_count=uncontained_burst_count,
            window_seconds=uncontained_window_seconds,
            cooldown_seconds=7_200.0,
        ),
        AlertRule(
            name="persistence-tail",
            description=(
                "An open error run crossed the persistence-alarm "
                "threshold — the Section 4.3 live watchdog; page an SRE."
            ),
            action=Action.PAGE_SRE,
            severity="critical",
            on_alarm=True,
            cooldown_seconds=1_800.0,
        ),
    )
