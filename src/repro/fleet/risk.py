"""Online risk scoring backed by :mod:`repro.core.prediction`.

The registry's default scorer is a static-prior heuristic; this module
wires in the paper's Section-4.3 ML suggestion instead: a
:class:`~repro.core.prediction.PersistencePredictor` trained offline (on
a synthesized window, or on your own cluster's history) and queried
online with features the registry genuinely has while a run is still
open — early line count, early mean gap, early span, and the GPU's prior
run count.
"""

from __future__ import annotations

from typing import Optional

from repro.core.parsing import iter_parse_syslog
from repro.core.prediction import PersistencePredictor, extract_runs
from repro.fleet.registry import GpuHealth, OpenRunView, RiskScorer


def predictor_scorer(predictor: PersistencePredictor) -> RiskScorer:
    """Adapt a fitted predictor into a registry risk scorer.

    The returned callable feeds the live open-run view straight into the
    predictor's online adapter
    (:meth:`~repro.core.prediction.PersistencePredictor.score_online`)
    and returns P(run long-persists).
    """
    if predictor.weights is None:
        raise ValueError("predictor must be fitted before serving risk scores")

    def score(health: GpuHealth, run: OpenRunView) -> float:
        return predictor.score_online(
            xid=run.xid,
            early_lines=run.early_lines,
            early_mean_gap=run.early_mean_gap,
            early_span=run.early_span,
            gpu_prior_runs=max(health.total_onsets - 1, 0),
        )

    return score


def fit_risk_model(
    *,
    scale: float = 0.004,
    seed: int = 7,
    long_threshold_seconds: float = 600.0,
    observe_seconds: float = 300.0,
    predictor: Optional[PersistencePredictor] = None,
) -> PersistencePredictor:
    """Train a persistence predictor on a synthesized observation window.

    A service that has no historical record archive yet can bootstrap its
    risk model from the calibrated substrate (the same trick the
    benchmarks use); pass the result to :func:`predictor_scorer`.
    """
    from repro.datasets import synthesize_delta

    dataset = synthesize_delta(scale=scale, seed=seed)
    records = sorted(
        iter_parse_syslog(dataset.log_lines(include_noise=False)),
        key=lambda r: r.time,
    )
    examples = extract_runs(records, observe_seconds=observe_seconds)
    model = predictor or PersistencePredictor(
        long_threshold_seconds=long_threshold_seconds
    )
    return model.fit(examples)
