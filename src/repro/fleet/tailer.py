"""Concurrent live-log tailers with bounded queues and backpressure.

The collection side of the fleet health service: follow many per-node
syslog files as the Slurm/fault simulators (or a real syslog daemon)
append to them, parse ``NVRM: Xid`` lines into
:class:`~repro.core.parsing.RawXidRecord`, and merge the per-file streams
into a single *arrival-order* record stream — no global sort anywhere.

Ordering is sufficient for the streaming pipeline because one GPU's
records always live in its node's file, and node-local syslog is
time-ordered: :class:`~repro.core.streaming.StreamingCoalescer` only
requires per-GPU order, which file order already provides.  Cross-node
interleaving (the part a global sort would "fix") is irrelevant to it.

Backpressure: every parsed record goes through one bounded
:class:`queue.Queue`.  When the consumer falls behind, ``put`` blocks the
tailer workers, which stop reading from disk — memory stays bounded by
the queue size plus one partial line per file, never by log volume.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List

from repro.core.parsing import (
    RawXidRecord,
    iter_directory_records,
    iter_parse_syslog,
)
from repro.syslog.reader import iter_log_lines, list_log_files

__all__ = [
    "DirectoryTailer",
    "LogTailer",
    "TailStats",
    "iter_directory_records",  # re-exported shared record-iterator API
]

#: Sentinel pushed once per worker when it finishes draining after a stop.
_DONE = object()


# ---------------------------------------------------------------------------
# Live tailing
# ---------------------------------------------------------------------------


@dataclass
class TailStats:
    """Counters one tailer (or a pool) exposes to the metrics endpoint."""

    files: int = 0
    bytes_read: int = 0
    lines_seen: int = 0
    records_parsed: int = 0
    polls: int = 0

    def merge(self, other: "TailStats") -> None:
        self.files += other.files
        self.bytes_read += other.bytes_read
        self.lines_seen += other.lines_seen
        self.records_parsed += other.records_parsed
        self.polls += other.polls


class LogTailer:
    """Incrementally read newly appended lines from one plain-text file.

    Keeps a byte offset and a partial-line buffer; a poll reads whatever
    the writer appended since the previous poll and returns only *complete*
    lines (a line still missing its newline stays buffered).  Rotation and
    truncation both reset to the start, like ``tail -F``: a shrinking file
    is an in-place truncation, and a changed inode means the path now
    names a *different* file — even one already larger than the old
    offset, where resuming at the stale offset would stream garbage from
    the middle of the replacement.

    ``.log.gz`` files cannot be followed incrementally; the directory
    tailer reads them once at discovery as static backlog instead.
    """

    def __init__(self, path: str | Path, *, from_start: bool = True) -> None:
        self.path = Path(path)
        self._offset = 0
        self._buffer = b""
        self._inode: int | None = None
        self.stats = TailStats(files=1)
        if not from_start and self.path.exists():
            stat = self.path.stat()
            self._offset = stat.st_size
            self._inode = stat.st_ino

    def poll_lines(self) -> List[str]:
        """All complete lines appended since the last poll."""
        self.stats.polls += 1
        try:
            stat = self.path.stat()
        except OSError:
            return []
        size = stat.st_size
        rotated = self._inode is not None and stat.st_ino != self._inode
        if rotated or size < self._offset:  # rotated / truncated: start over
            self._offset = 0
            self._buffer = b""
        self._inode = stat.st_ino
        if size == self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read(size - self._offset)
        self._offset += len(chunk)
        self.stats.bytes_read += len(chunk)
        data = self._buffer + chunk
        *complete, self._buffer = data.split(b"\n")
        lines = [part.decode("utf-8", errors="replace") for part in complete]
        self.stats.lines_seen += len(lines)
        return lines

    def poll_records(self) -> List[RawXidRecord]:
        """Parsed XID records appended since the last poll."""
        records = list(iter_parse_syslog(self.poll_lines()))
        self.stats.records_parsed += len(records)
        return records


class DirectoryTailer:
    """Follow every log file in a directory with a pool of worker threads.

    Workers partition files by name hash, poll their partition round-robin,
    and push parsed records into one bounded queue (``queue_size``); the
    consumer iterates :meth:`records`.  New files appearing in the
    directory are picked up on the fly; ``*.log.gz`` files are ingested
    once as backlog.

    The queue is the backpressure boundary: a slow consumer blocks the
    workers' ``put`` calls, which pauses disk reads rather than buffering
    unboundedly.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        queue_size: int = 4096,
        workers: int = 2,
        poll_interval: float = 0.05,
        from_start: bool = True,
    ) -> None:
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.directory = Path(directory)
        self.queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
        self.workers = workers
        self.poll_interval = poll_interval
        self.from_start = from_start
        self._tailers: Dict[Path, LogTailer] = {}
        self._gz_done: set = set()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "DirectoryTailer":
        if self._started:
            raise RuntimeError("tailer already started")
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._run_worker, args=(index,), daemon=True,
                name=f"fleet-tailer-{index}",
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Ask workers to finish their current pass and drain out."""
        self._stop.set()

    def join(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            thread.join(remaining)

    # -- consumer side -------------------------------------------------

    def records(self) -> Iterator[RawXidRecord]:
        """Yield records in arrival order until stopped and drained.

        The iterator ends only after :meth:`stop` is called and every
        worker has pushed its final batch — the consumer is expected to
        keep draining until then (that is what releases blocked workers).
        """
        if not self._started:
            raise RuntimeError("start() the tailer before consuming records")
        done = 0
        while done < self.workers:
            item = self.queue.get()
            if item is _DONE:
                done += 1
                continue
            yield item  # type: ignore[misc]

    @property
    def queue_depth(self) -> int:
        return self.queue.qsize()

    def stats(self) -> TailStats:
        total = TailStats()
        with self._lock:
            for tailer in self._tailers.values():
                total.merge(tailer.stats)
        return total

    # -- worker side ---------------------------------------------------

    def _discover(self, worker_index: int) -> List[LogTailer]:
        """Refresh this worker's partition of the directory's files."""
        mine: List[LogTailer] = []
        try:
            names = list_log_files(self.directory)
        except OSError:
            return mine
        for path in names:
            if hash(path.name) % self.workers != worker_index:
                continue
            if path.name.endswith(".log.gz"):
                with self._lock:
                    if path in self._gz_done:
                        continue
                    self._gz_done.add(path)
                self._ingest_static(path)
                continue
            with self._lock:
                tailer = self._tailers.get(path)
                if tailer is None:
                    tailer = LogTailer(path, from_start=self.from_start)
                    self._tailers[path] = tailer
            mine.append(tailer)
        return mine

    def _ingest_static(self, path: Path) -> None:
        """Read a compressed file once as backlog (not followable)."""
        tailer = LogTailer(path)  # stats holder only
        with self._lock:
            self._tailers[path] = tailer

        def _counted_lines() -> Iterator[str]:
            for line in iter_log_lines(path):
                tailer.stats.lines_seen += 1
                yield line

        for record in iter_parse_syslog(_counted_lines()):
            tailer.stats.records_parsed += 1
            self._put(record)

    def _put(self, record: RawXidRecord) -> None:
        """Blocking put: backpressure when the consumer falls behind."""
        while True:
            try:
                self.queue.put(record, timeout=0.2)
                return
            except queue.Full:
                if not threading.main_thread().is_alive():
                    return  # interpreter shutting down: drop rather than hang

    def _run_worker(self, worker_index: int) -> None:
        try:
            while True:
                tailers = self._discover(worker_index)
                busy = False
                for tailer in tailers:
                    for record in tailer.poll_records():
                        busy = True
                        self._put(record)
                if self._stop.is_set():
                    # One final pass already happened above; exit after a
                    # quiet round so writer-then-stop races don't lose tails.
                    if not busy:
                        break
                    continue
                if not busy:
                    time.sleep(self.poll_interval)
        finally:
            self.queue.put(_DONE)
