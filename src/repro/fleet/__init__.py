"""Fleet health service: live monitoring built on the streaming pipeline.

The always-on counterpart of the batch characterization — the operational
shape Section 4.3's guidance ("continuously monitor the errors at the
tail of the GPU error persistence distribution") actually requires:

* :mod:`repro.fleet.tailer` — concurrent live-log tailers with bounded
  queues and backpressure; merged arrival-order record stream, no global
  sort;
* :mod:`repro.fleet.registry` — sharded per-GPU health state: rolling
  onset rates, MTBE, open-run persistence, online risk scores;
* :mod:`repro.fleet.rules` — the paper's operator guidance as declarative
  alert rules with pluggable sinks;
* :mod:`repro.fleet.exposition` — Prometheus text-format ``/metrics``
  over stdlib ``http.server``;
* :mod:`repro.fleet.service` — the wiring (``repro-delta serve``);
* :mod:`repro.fleet.emitter` / :mod:`repro.fleet.demo` — live replay of
  injected fault traces for end-to-end simulation;
* :mod:`repro.fleet.risk` — the trained persistence predictor as an
  online risk scorer.
"""

from repro.fleet.emitter import LiveLogEmitter
from repro.fleet.exposition import MetricsServer, render_prometheus
from repro.fleet.registry import (
    GpuHealth,
    HealthRegistry,
    IngestResult,
    OpenRunView,
    default_risk_scorer,
)
from repro.fleet.rules import (
    Action,
    Alert,
    AlertRule,
    JsonLinesSink,
    MemorySink,
    RuleEngine,
    StdoutSink,
    default_rules,
)
from repro.fleet.service import FleetHealthService, FleetServiceConfig
from repro.fleet.tailer import DirectoryTailer, LogTailer, iter_directory_records

__all__ = [
    "Action",
    "Alert",
    "AlertRule",
    "DirectoryTailer",
    "FleetHealthService",
    "FleetServiceConfig",
    "GpuHealth",
    "HealthRegistry",
    "IngestResult",
    "JsonLinesSink",
    "LiveLogEmitter",
    "LogTailer",
    "MemorySink",
    "MetricsServer",
    "OpenRunView",
    "RuleEngine",
    "StdoutSink",
    "default_risk_scorer",
    "default_rules",
    "iter_directory_records",
    "render_prometheus",
]
