"""The fleet health service: tailers -> registry -> rules -> exposition.

:class:`FleetHealthService` owns the whole live path, and the live path
rides the staged ingestion pipeline (:mod:`repro.pipeline`):

* a :class:`~repro.pipeline.sources.TailSource` (wrapping
  :class:`~repro.fleet.tailer.DirectoryTailer`) follows the per-node log
  files through one bounded queue (the backpressure boundary);
* an extract-only :class:`~repro.pipeline.engine.IngestPipeline` drives
  the stream through a consumer that feeds each record into the
  :class:`~repro.fleet.registry.HealthRegistry` (sharded state, streaming
  coalescing with ``keep_closed=False`` — live memory stays O(open runs))
  and forwards onset/alarm facts to the
  :class:`~repro.fleet.rules.RuleEngine`;
* an optional :class:`~repro.fleet.exposition.MetricsServer` serves
  Prometheus text format at ``/metrics``.

Nothing on this path materializes or sorts the log volume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.core.parsing import RawXidRecord
from repro.fleet.exposition import MetricsServer, render_prometheus
from repro.obs import CounterSet
from repro.fleet.registry import HealthRegistry, RiskScorer
from repro.fleet.rules import AlertRule, AlertSink, RuleEngine, default_rules
from repro.pipeline.engine import Consumer, IngestPipeline
from repro.pipeline.sources import TailSource


@dataclass(frozen=True)
class FleetServiceConfig:
    """Wiring knobs for one service instance."""

    logs_dir: Path
    #: Tailer pool.
    workers: int = 2
    queue_size: int = 4096
    poll_interval: float = 0.05
    from_start: bool = True
    #: Streaming coalescer / registry.
    n_shards: int = 8
    window_seconds: float = 5.0
    max_persistence: float = 86_400.0
    alarm_after_seconds: float = 1_800.0
    rate_window_seconds: float = 3_600.0
    #: Metrics endpoint; ``None`` disables the HTTP server entirely,
    #: port 0 binds an ephemeral port.
    metrics_port: Optional[int] = 0
    metrics_host: str = "127.0.0.1"
    #: Durable history: when set, every ingested record also lands in a
    #: columnar event store at this directory (``docs/store.md``), and on
    #: restart the registry warm-starts by replaying the store — the
    #: service survives its own restarts with per-GPU history intact.
    store_dir: Optional[Path] = None
    store_segment_records: int = 20_000
    store_flush_seconds: Optional[float] = 5.0
    warm_start: bool = True


class _RegistryFeed(Consumer):
    """Pipeline consumer: registry ingestion + rule-engine fact routing."""

    def __init__(self, service: "FleetHealthService") -> None:
        self.service = service

    def on_record(self, record: RawXidRecord) -> None:
        service = self.service
        result = service.registry.ingest(record)
        service.records_ingested += 1
        service.counters.inc("fleet.records_ingested")
        if result.onset:
            service.engine.observe_onset(record, result.health)
        if result.alarm is not None:
            service.engine.observe_alarm(result.alarm)


class FleetHealthService:
    """Long-running live monitoring over a directory of node syslogs."""

    def __init__(
        self,
        config: FleetServiceConfig,
        *,
        rules: Optional[Iterable[AlertRule]] = None,
        sinks: Sequence[AlertSink] = (),
        risk_scorer: Optional[RiskScorer] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        #: Injectable wall-clock pair.  All *analytic* state keys off
        #: record event time; the clock only feeds operational readings
        #: (uptime, staleness, wait helpers), so tests and replay drivers
        #: can substitute a virtual clock without changing results.
        self.clock = clock
        self.sleep = sleep
        self.registry = HealthRegistry(
            n_shards=config.n_shards,
            window_seconds=config.window_seconds,
            max_persistence=config.max_persistence,
            alarm_after_seconds=config.alarm_after_seconds,
            rate_window_seconds=config.rate_window_seconds,
            risk_scorer=risk_scorer,
            clock=clock,
        )
        self.engine = RuleEngine(
            default_rules() if rules is None else rules, sinks=sinks
        )
        self._sinks: Tuple[AlertSink, ...] = tuple(sinks)
        #: Self-observability counters (``fleet.records_ingested`` plus
        #: the store writer's ``store.*`` series), snapshotted per
        #: ``/metrics`` scrape.
        self.counters = CounterSet()
        self.store = None
        self.store_writer = None
        self.records_replayed = 0
        from_start = config.from_start
        if config.store_dir is not None:
            from repro.store import EventStore, StoreWriter

            self.store = EventStore.open_or_create(config.store_dir)
            self.store_writer = StoreWriter(
                self.store,
                segment_records=config.store_segment_records,
                flush_seconds=config.store_flush_seconds,
                counters=self.counters,
            )
            if config.warm_start and self.store.n_records:
                # History is already durable: replay it into the registry
                # at start() and tail only *new* appends — re-reading the
                # log files from the top would double-ingest everything
                # the store already holds.
                from_start = False
        self.source = TailSource(
            config.logs_dir,
            queue_size=config.queue_size,
            workers=config.workers,
            poll_interval=config.poll_interval,
            from_start=from_start,
        )
        self.tailer = self.source.tailer
        consumers: Tuple[Consumer, ...] = (_RegistryFeed(self),)
        if self.store_writer is not None:
            consumers = consumers + (self.store_writer,)
        self.pipeline = IngestPipeline(
            self.source, coalesce=None, consumers=consumers
        )
        self.metrics_server: Optional[MetricsServer] = None
        if config.metrics_port is not None:
            self.metrics_server = MetricsServer(
                self.render_metrics,
                host=config.metrics_host,
                port=config.metrics_port,
            )
        self._consumer: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False
        self.records_ingested = 0
        self.started_monotonic: Optional[float] = None

    # ------------------------------------------------------------------

    def start(self) -> "FleetHealthService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.started_monotonic = self.clock()
        if self.metrics_server is not None:
            self.metrics_server.start()
        self._replay_store()
        self.tailer.start()
        self._consumer = threading.Thread(
            target=self._consume, daemon=True, name="fleet-ingest"
        )
        self._consumer.start()
        return self

    def stop(self, *, timeout: float = 30.0) -> None:
        """Stop tailing, drain the queue, shut the endpoint down."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        self.tailer.stop()
        if self._consumer is not None:
            self._consumer.join(timeout)
        if self.metrics_server is not None:
            self.metrics_server.stop()
        # File-backed sinks buffer alerts written from the ingest thread;
        # closing them here guarantees the final flush regardless of how
        # the service is driven (CLI, tests, or a replay harness).
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()

    def _replay_store(self) -> None:
        """Warm-start the registry from durable history (restart path).

        Replayed records feed the registry only — the rule engine stays
        out of it, so alerts that already fired in a previous life are
        not re-fired on every restart.
        """
        if (
            self.store is None
            or not self.config.warm_start
            or not self.store.n_records
        ):
            return
        for record in self.store.query():
            self.registry.ingest(record)
            self.records_replayed += 1

    def _consume(self) -> None:
        # Extract-only pipeline run: the sharded registry owns the
        # streaming coalescers, so the Coalesce stage lives in its shards.
        self.pipeline.run()

    # ------------------------------------------------------------------

    @property
    def metrics_url(self) -> Optional[str]:
        return None if self.metrics_server is None else self.metrics_server.url

    def render_metrics(self) -> str:
        extra = {}
        if self.started_monotonic is not None:
            extra["repro_fleet_uptime_seconds"] = (
                self.clock() - self.started_monotonic
            )
        ingest_age = self.registry.ingest_age_seconds()
        if ingest_age is not None:
            extra["repro_fleet_ingest_age_seconds"] = ingest_age
        return render_prometheus(
            self.registry,
            self.engine,
            self.tailer,
            extra_gauges=extra,
            counters=self.counters.values(),
        )

    # ------------------------------------------------------------------
    # Test / batch-session helpers
    # ------------------------------------------------------------------

    def wait_for(
        self,
        predicate: Callable[["FleetHealthService"], bool],
        *,
        timeout: float = 30.0,
        interval: float = 0.05,
    ) -> bool:
        """Poll until ``predicate(self)`` or timeout; True when satisfied."""
        deadline = self.clock() + timeout
        while self.clock() < deadline:
            if predicate(self):
                return True
            self.sleep(interval)
        return predicate(self)

    def wait_idle(
        self, *, idle_for: float = 0.3, timeout: float = 30.0
    ) -> bool:
        """Wait until ingestion has been quiet for ``idle_for`` seconds.

        "Quiet" = no new records ingested and the queue empty — the state
        a finished emitter leaves behind.  Returns False on timeout.
        """
        deadline = self.clock() + timeout
        last_count = -1
        quiet_since: Optional[float] = None
        while self.clock() < deadline:
            count = self.records_ingested
            if count != last_count or self.tailer.queue_depth > 0:
                last_count = count
                quiet_since = None
            elif quiet_since is None:
                quiet_since = self.clock()
            elif self.clock() - quiet_since >= idle_for:
                return True
            self.sleep(0.05)
        return False

    def summary(self) -> dict:
        """A human-readable state snapshot (the serve CLI's exit report)."""
        onsets = self.registry.onset_counts()
        store_summary = None
        if self.store is not None:
            store_summary = {
                "directory": str(self.store.directory),
                "n_records": self.store.n_records,
                "n_segments": self.store.n_segments,
                "records_replayed": self.records_replayed,
            }
        return {
            "store": store_summary,
            "records_ingested": self.records_ingested,
            "tracked_gpus": len(self.registry.snapshot()),
            "error_onsets": sum(onsets.values()),
            "onsets_by_xid": dict(sorted(onsets.items())),
            "open_runs": self.registry.open_runs(),
            "persistence_alarms": self.registry.persistence_alarms(),
            "alerts_fired": self.engine.total_fired(),
            "alerts_by_rule": {
                name: count
                for name, count in sorted(self.engine.fired_counts.items())
                if count
            },
        }
