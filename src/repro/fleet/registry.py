"""Sharded per-GPU health registry.

The service's state layer: every ingested
:class:`~repro.core.parsing.RawXidRecord` updates the health picture of
its (node, PCI bus) GPU — rolling error-onset rates, MTBE, open-run
persistence (via one :class:`~repro.core.streaming.StreamingCoalescer`
per shard with ``keep_closed=False``, so memory stays O(open runs)), and
an online risk score.

Sharding: GPUs hash onto ``n_shards`` independent shards, each with its
own lock, coalescer, and state map.  Concurrent ingestion from many
tailer workers only contends within a shard, and one GPU's records always
serialize through one shard — which is what keeps the coalescer's per-GPU
ordering contract intact under concurrency.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.coalesce import CoalescedError
from repro.core.parsing import RawXidRecord
from repro.core.streaming import PersistenceAlarm, StreamingCoalescer

GpuKey = Tuple[str, str]


@dataclass
class GpuHealth:
    """Mutable health state for one GPU (owned by exactly one shard)."""

    node_id: str
    pci_bus: str
    #: Error onsets (coalesced-run starts) per XID code, all time.
    onsets: Dict[int, int] = field(default_factory=dict)
    #: Raw XID lines seen, all time.
    raw_lines: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    #: Recent onset times within the rolling rate window: (time, xid).
    recent: Deque[Tuple[float, int]] = field(default_factory=deque)
    #: Latest online risk score in [0, 1] (probability-like; higher = more
    #: likely the current run long-persists / the part is defective).
    risk_score: float = 0.0

    @property
    def gpu_key(self) -> GpuKey:
        return (self.node_id, self.pci_bus)

    @property
    def total_onsets(self) -> int:
        return sum(self.onsets.values())

    def error_rate_per_hour(self, window_seconds: float) -> float:
        """Onsets per hour over the rolling window (as currently pruned)."""
        if window_seconds <= 0:
            return 0.0
        return len(self.recent) * 3600.0 / window_seconds

    def mtbe_hours(self) -> float:
        """Observed mean time between error onsets on this GPU (hours)."""
        if self.total_onsets < 2:
            return float("inf")
        span = self.last_seen - self.first_seen
        return span / 3600.0 / (self.total_onsets - 1)


@dataclass(frozen=True)
class OpenRunView:
    """Online features of the run a record belongs to (for risk scoring)."""

    xid: int
    start: float
    latest: float
    n_raw: int
    #: Lines / span observed within the scorer's observation window.
    early_lines: int
    early_span: float

    @property
    def open_persistence(self) -> float:
        return self.latest - self.start

    @property
    def early_mean_gap(self) -> float:
        if self.early_lines < 2:
            return 0.0
        return self.early_span / (self.early_lines - 1)


#: A risk scorer maps (health, open run) -> score in [0, 1].
RiskScorer = Callable[[GpuHealth, OpenRunView], float]


@dataclass(frozen=True)
class IngestResult:
    """What one record did to the registry (drives the rule engine)."""

    record: RawXidRecord
    #: True when this record started a new coalesced run — i.e. it counts
    #: as one *error onset* (each eventual coalesced error is counted
    #: exactly once, at its first line, which is what live alerting needs).
    onset: bool
    health: GpuHealth
    alarm: Optional[PersistenceAlarm] = None
    closed: Tuple[CoalescedError, ...] = ()


@dataclass
class _RunTrack:
    """Early-window observation stats for one open run."""

    start: float
    latest: float
    n_raw: int
    early_lines: int
    early_last: float


class _Shard:
    """One independent slice of the registry."""

    def __init__(
        self,
        *,
        window_seconds: float,
        max_persistence: float,
        alarm_after_seconds: float,
        rate_window_seconds: float,
        observe_seconds: float,
    ) -> None:
        self.lock = threading.Lock()
        self.states: Dict[GpuKey, GpuHealth] = {}
        self.rate_window_seconds = rate_window_seconds
        self.observe_seconds = observe_seconds
        self._closed_buffer: List[CoalescedError] = []
        self._opened = False
        self._runs: Dict[Tuple[str, str, int, str], _RunTrack] = {}
        # The live feed can jump backward in time (host clock reset, a
        # feed restarting behind warm-started store history); restart the
        # affected run instead of killing the ingest thread.
        self.coalescer = StreamingCoalescer(
            window_seconds=window_seconds,
            max_persistence=max_persistence,
            alarm_after_seconds=alarm_after_seconds,
            keep_closed=False,
            on_open=self._on_open,
            on_close=self._on_close,
            time_regression="restart",
        )

    # Callbacks run inside coalescer.feed / flush, under this shard's lock.

    def _on_open(self, record: RawXidRecord) -> None:
        self._opened = True
        key = (record.node_id, record.pci_bus, record.xid, record.message)
        self._runs[key] = _RunTrack(
            start=record.time, latest=record.time, n_raw=1,
            early_lines=1, early_last=record.time,
        )

    def _on_close(self, error: CoalescedError) -> None:
        self._closed_buffer.append(error)
        self._runs.pop(
            (error.node_id, error.pci_bus, error.xid, error.message), None
        )


class HealthRegistry:
    """Thread-safe, sharded per-GPU health state over a live record stream."""

    def __init__(
        self,
        *,
        n_shards: int = 8,
        window_seconds: float = 5.0,
        max_persistence: float = 86_400.0,
        alarm_after_seconds: float = 1_800.0,
        rate_window_seconds: float = 3_600.0,
        observe_seconds: float = 300.0,
        risk_scorer: Optional[RiskScorer] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if rate_window_seconds <= 0:
            raise ValueError("rate_window_seconds must be positive")
        self.n_shards = n_shards
        self.rate_window_seconds = rate_window_seconds
        self.risk_scorer = risk_scorer or default_risk_scorer
        #: Wall-clock source for operational (non-analytic) readings; all
        #: health state keys off record *event* time, so injecting a fake
        #: clock never changes what the registry computes — only what
        #: :meth:`ingest_age_seconds` reports.
        self.clock = clock
        self._last_ingest_wall: Optional[float] = None
        self._shards = [
            _Shard(
                window_seconds=window_seconds,
                max_persistence=max_persistence,
                alarm_after_seconds=alarm_after_seconds,
                rate_window_seconds=rate_window_seconds,
                observe_seconds=observe_seconds,
            )
            for _ in range(n_shards)
        ]

    # ------------------------------------------------------------------

    def shard_index(self, gpu_key: GpuKey) -> int:
        digest = zlib.crc32(f"{gpu_key[0]}|{gpu_key[1]}".encode())
        return digest % self.n_shards

    def ingest(self, record: RawXidRecord) -> IngestResult:
        """Feed one record; returns onset/alarm/closed facts for alerting."""
        shard = self._shards[self.shard_index(record.gpu_key)]
        with shard.lock:
            shard._opened = False
            alarm = shard.coalescer.feed(record)
            onset = shard._opened
            closed = tuple(shard._closed_buffer)
            shard._closed_buffer.clear()

            health = shard.states.get(record.gpu_key)
            if health is None:
                health = GpuHealth(
                    node_id=record.node_id, pci_bus=record.pci_bus,
                    first_seen=record.time, last_seen=record.time,
                )
                shard.states[record.gpu_key] = health
            health.raw_lines += 1
            if record.time < health.last_seen - shard.rate_window_seconds:
                # The feed's clock jumped backward past the whole rolling
                # window (clock reset / replay restarting behind warm-start
                # history): rolling-rate state follows the new timeline.
                health.last_seen = record.time
                health.recent.clear()
            else:
                health.last_seen = max(health.last_seen, record.time)
            if onset:
                health.onsets[record.xid] = health.onsets.get(record.xid, 0) + 1
                health.recent.append((record.time, record.xid))
            cutoff = health.last_seen - shard.rate_window_seconds
            while health.recent and health.recent[0][0] < cutoff:
                health.recent.popleft()

            run_view = self._run_view(shard, record)
            if run_view is not None:
                health.risk_score = float(self.risk_scorer(health, run_view))
        self._last_ingest_wall = self.clock()
        return IngestResult(
            record=record, onset=onset, health=health, alarm=alarm, closed=closed
        )

    def _run_view(self, shard: _Shard, record: RawXidRecord) -> Optional[OpenRunView]:
        key = (record.node_id, record.pci_bus, record.xid, record.message)
        track = shard._runs.get(key)
        if track is None:
            return None
        if record.time >= track.latest:
            track.latest = record.time
            track.n_raw += 1 if record.time > track.start else 0
        else:
            track.n_raw += 1
        if record.time - track.start <= shard.observe_seconds and record.time > track.early_last:
            track.early_lines += 1
            track.early_last = record.time
        return OpenRunView(
            xid=record.xid,
            start=track.start,
            latest=track.latest,
            n_raw=track.n_raw,
            early_lines=track.early_lines,
            early_span=track.early_last - track.start,
        )

    # ------------------------------------------------------------------
    # Read side (metrics exposition, reports)
    # ------------------------------------------------------------------

    def snapshot(self) -> List[GpuHealth]:
        """A point-in-time copy-free view of every tracked GPU.

        Caller must treat the returned objects as read-only; individual
        field reads are safe (GIL-atomic) even while ingestion continues.
        """
        out: List[GpuHealth] = []
        for shard in self._shards:
            with shard.lock:
                out.extend(shard.states.values())
        return out

    def gpu(self, node_id: str, pci_bus: str) -> Optional[GpuHealth]:
        shard = self._shards[self.shard_index((node_id, pci_bus))]
        with shard.lock:
            return shard.states.get((node_id, pci_bus))

    def open_runs(self) -> int:
        return sum(s.coalescer.open_runs() for s in self._shards)

    def onset_counts(self) -> Dict[int, int]:
        """Fleet-wide error onsets per XID."""
        totals: Dict[int, int] = {}
        for shard in self._shards:
            with shard.lock:
                for health in shard.states.values():
                    for xid, count in health.onsets.items():
                        totals[xid] = totals.get(xid, 0) + count
        return totals

    def total_raw_lines(self) -> int:
        return sum(
            h.raw_lines for h in self.snapshot()
        )

    def persistence_alarms(self) -> int:
        return sum(len(s.coalescer.alarms) for s in self._shards)

    def ingest_age_seconds(self) -> Optional[float]:
        """Wall seconds since the last ingested record (feed staleness).

        ``None`` until the first record lands.  Measured on the injected
        clock, so a replay under a virtual clock reports virtual ages.
        """
        last = self._last_ingest_wall
        if last is None:
            return None
        return max(0.0, self.clock() - last)

    def flush(self) -> List[CoalescedError]:
        """Close every open run (end of stream); returns the closed errors."""
        closed: List[CoalescedError] = []
        for shard in self._shards:
            with shard.lock:
                shard.coalescer.flush()
                closed.extend(shard._closed_buffer)
                shard._closed_buffer.clear()
        closed.sort(key=lambda e: (e.time, e.node_id, e.pci_bus, e.xid))
        return closed


# ---------------------------------------------------------------------------
# Default (prior-based) risk scorer
# ---------------------------------------------------------------------------

#: Static P(long-persisting | XID) priors, read off the paper's Table 1
#: persistence distributions (codes whose mean far exceeds the median are
#: the heavy-tailed ones; XID 95 is the 17-day saga's code).  Used when no
#: trained :class:`~repro.core.prediction.PersistencePredictor` is wired in
#: (see :mod:`repro.fleet.risk`).
XID_LONG_RUN_PRIOR: Dict[int, float] = {
    31: 0.02,
    48: 0.10,
    63: 0.05,
    64: 0.10,
    74: 0.05,
    79: 0.15,
    94: 0.10,
    95: 0.30,
    119: 0.08,
    122: 0.05,
    136: 0.05,
}


def default_risk_scorer(health: GpuHealth, run: OpenRunView) -> float:
    """Heuristic online risk: prior x open-span x repeat-offender boosts.

    Monotone in the three signals the trained predictor uses (per-XID
    prior, how long/active the run already is, how often this GPU erred
    before); bounded in [0, 1).  Swap in
    :func:`repro.fleet.risk.predictor_scorer` for the learned model.
    """
    import math

    prior = XID_LONG_RUN_PRIOR.get(run.xid, 0.05)
    span_signal = run.open_persistence / 600.0  # 10 min ~ the alarm scale
    repeat_signal = math.log1p(health.total_onsets) / 4.0
    score = 1.0 - math.exp(-(prior + 0.8 * span_signal + 0.3 * repeat_signal))
    return min(score, 0.999)
