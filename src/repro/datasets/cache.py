"""Dataset persistence: synthesize once, re-analyze many times.

``save_dataset`` writes a directory with everything a later session needs —
rendered per-node logs, the Slurm database, the ground-truth trace, the
pid map, and a metadata file; ``load_dataset`` restores a fully functional
:class:`~repro.datasets.delta.DeltaDataset` (minus the live schedule, which
is an in-memory construction aid, not an observable).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.inventory import build_delta_cluster
from repro.datasets.delta import DeltaDataset, DeltaDatasetConfig
from repro.faults.calibration import AMPERE_CALIBRATION, H100_CALIBRATION
from repro.faults.events import FaultTrace
from repro.slurm.accounting import SlurmDatabase

_PROFILES = {
    AMPERE_CALIBRATION.name: AMPERE_CALIBRATION,
    H100_CALIBRATION.name: H100_CALIBRATION,
}


def save_dataset(dataset: DeltaDataset, directory: str | Path, *,
                 compress_logs: bool = False) -> Path:
    """Persist a dataset; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dataset.write_logs(directory / "logs", compress=compress_logs)
    dataset.save_slurm_db(directory / "slurm.jsonl")
    dataset.trace.save(directory / "trace.jsonl")
    (directory / "pids.json").write_text(
        json.dumps({str(k): v for k, v in dataset.pids.items()})
    )
    (directory / "meta.json").write_text(
        json.dumps(
            {
                "profile": dataset.profile.name,
                "scale": dataset.config.scale,
                "seed": dataset.config.seed,
                "with_jobs": dataset.config.with_jobs,
                "noise_lines_per_node_hour": dataset.config.noise_lines_per_node_hour,
                "window_seconds": dataset.window_seconds,
            },
            indent=2,
        )
    )
    return directory


def load_dataset(directory: str | Path) -> DeltaDataset:
    """Restore a persisted dataset (observables + ground-truth trace)."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    profile = _PROFILES.get(meta["profile"])
    if profile is None:
        raise ValueError(f"unknown calibration profile {meta['profile']!r}")
    config = DeltaDatasetConfig(
        scale=meta["scale"],
        seed=meta["seed"],
        with_jobs=meta["with_jobs"],
        noise_lines_per_node_hour=meta["noise_lines_per_node_hour"],
    )
    trace = FaultTrace.load(directory / "trace.jsonl")
    slurm_db = SlurmDatabase.load(directory / "slurm.jsonl")
    pids = {
        int(k): v
        for k, v in json.loads((directory / "pids.json").read_text()).items()
    }
    return DeltaDataset(
        cluster=build_delta_cluster(),
        profile=profile,
        config=config,
        trace=trace,
        slurm_db=slurm_db,
        pids=pids,
    )
