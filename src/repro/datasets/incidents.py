"""Single-incident scenario builders (paper Figure 1 and Figure 8).

Each builder returns a tiny, fully deterministic dataset reproducing one of
the narrated incidents, for forensics examples and integration tests:

* :func:`gsp_incident` — Figure 1: a GSP RPC timeout stalls GPU control
  functions; the scheduled job fails; the node is drained and rebooted, a
  23-hour recovery.
* :func:`nvlink_multinode_incident` — Figure 8, Incident 1: an NVLink error
  on one GPU of a 4-node job causes an MPI failure and a segfault
  (EXITSTATUS 139) for the whole job.
* :func:`pmu_mmu_incident` — Figure 8, Incident 2: a PMU SPI communication
  error propagates to an MMU error, killing the job on that GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.inventory import ClusterInventory, DeltaShape, build_delta_cluster
from repro.cluster.node import NodeKind
from repro.faults.events import ErrorEvent, FaultTrace
from repro.faults.xid import Xid
from repro.slurm.accounting import NodeEvent, SlurmDatabase
from repro.slurm.job import ExitCode, JobRecord, JobState

#: All incident scenarios play out inside a two-day window.
_WINDOW = 2 * 86400.0


@dataclass(frozen=True)
class IncidentDataset:
    """A miniature observable dataset for one incident."""

    cluster: ClusterInventory
    trace: FaultTrace
    slurm_db: SlurmDatabase
    narrative: str

    def log_lines(self) -> List[str]:
        from repro.syslog.format import render_trace

        return list(render_trace(self.trace.events, seed=1))


def _small_cluster() -> ClusterInventory:
    return build_delta_cluster(DeltaShape(1, 2, 4, 1, 1))


def gsp_incident() -> IncidentDataset:
    """Figure 1: GSP error -> GPU inoperable -> job failure -> 23 h recovery."""
    cluster = _small_cluster()
    node = cluster.nodes_of_kind(NodeKind.A100_X4)[0]
    gpu = node.gpus[0]
    t_error = 40_000.0
    trace = FaultTrace(
        events=[
            ErrorEvent(
                time=t_error,
                node_id=node.node_id,
                pci_bus=gpu.pci_bus,
                xid=Xid.GSP,
                persistence=45.0,
                inoperable=True,
            )
        ],
        window_seconds=_WINDOW,
        node_ids=(node.node_id,),
    )
    job = JobRecord(
        job_id=1,
        name="llm_finetune",
        user="u042",
        submit_time=t_error - 7_500.0,
        start_time=t_error - 7_200.0,
        end_time=t_error + 9.0,
        n_gpus=1,
        gpus=(gpu.key,),
        partition="a100",
        is_ml=True,
        state=JobState.NODE_FAIL,
        exit_code=int(ExitCode.GENERIC),
        truth_failed_by_xid=int(Xid.GSP),
    )
    drain = NodeEvent(
        node_id=node.node_id,
        start_time=t_error,
        duration_hours=23.0,
        reason="xid119",
    )
    return IncidentDataset(
        cluster=cluster,
        trace=trace,
        slurm_db=SlurmDatabase([job], [drain], window_seconds=_WINDOW),
        narrative=(
            "A GSP RPC timeout stalled GPU control functions and rendered the "
            "GPU inoperable; the job scheduled on it failed, and recovering "
            "the node (drain + full reboot) took 23 node-hours."
        ),
    )


def nvlink_multinode_incident() -> IncidentDataset:
    """Figure 8, Incident 1: one NVLink error fails a 4-node MPI job."""
    cluster = _small_cluster()
    nodes = cluster.nodes_of_kind(NodeKind.A100_X4)
    gpus = tuple(node.gpus[0].key for node in nodes[:4])
    t_error = 60_000.0
    faulty = gpus[1]
    trace = FaultTrace(
        events=[
            ErrorEvent(
                time=t_error,
                node_id=faulty[0],
                pci_bus=faulty[1],
                xid=Xid.NVLINK,
                persistence=1.1,
                inoperable=True,
            )
        ],
        window_seconds=_WINDOW,
        node_ids=tuple(sorted({g[0] for g in gpus})),
    )
    job = JobRecord(
        job_id=2,
        name="namd_run",
        user="u117",
        submit_time=t_error - 4_000.0,
        start_time=t_error - 3_600.0,
        end_time=t_error + 6.0,
        n_gpus=4,
        gpus=gpus,
        partition="a100",
        is_ml=False,
        state=JobState.FAILED,
        exit_code=int(ExitCode.SEGFAULT),
        truth_failed_by_xid=int(Xid.NVLINK),
    )
    reset = NodeEvent(
        node_id=faulty[0], start_time=t_error, duration_hours=0.4, reason="xid74"
    )
    return IncidentDataset(
        cluster=cluster,
        trace=trace,
        slurm_db=SlurmDatabase([job], [reset], window_seconds=_WINDOW),
        narrative=(
            "An NVLink error on one GPU raised an MPI communication failure; "
            "the job needed all four GPUs (on four nodes), so the whole job "
            "died with a segmentation fault (EXITSTATUS 139)."
        ),
    )


def pmu_mmu_incident() -> IncidentDataset:
    """Figure 8, Incident 2: PMU SPI error propagates to an MMU error."""
    cluster = _small_cluster()
    node = cluster.nodes_of_kind(NodeKind.A40_X4)[0]
    gpu = node.gpus[2]
    t_error = 100_000.0
    trace = FaultTrace(
        events=[
            ErrorEvent(
                time=t_error,
                node_id=node.node_id,
                pci_bus=gpu.pci_bus,
                xid=Xid.PMU_SPI,
                persistence=0.06,
                chain_id=1,
                chain_pos=0,
            ),
            ErrorEvent(
                time=t_error + 2.1,
                node_id=node.node_id,
                pci_bus=gpu.pci_bus,
                xid=Xid.MMU,
                persistence=2.8,
                chain_id=1,
                chain_pos=1,
            ),
        ],
        window_seconds=_WINDOW,
        node_ids=(node.node_id,),
    )
    job = JobRecord(
        job_id=3,
        name="train_gnn",
        user="u201",
        submit_time=t_error - 2_100.0,
        start_time=t_error - 1_800.0,
        end_time=t_error + 12.0,
        n_gpus=1,
        gpus=(gpu.key,),
        partition="a40",
        is_ml=True,
        state=JobState.FAILED,
        exit_code=int(ExitCode.SEGFAULT),
        truth_failed_by_xid=int(Xid.MMU),
    )
    return IncidentDataset(
        cluster=cluster,
        trace=trace,
        slurm_db=SlurmDatabase([job], [], window_seconds=_WINDOW),
        narrative=(
            "A failed SPI communication with the power management unit "
            "cascaded into an MMU error (power/frequency scaling fault), "
            "killing the job on that GPU — peripheral hardware as a "
            "resilience weak link."
        ),
    )
