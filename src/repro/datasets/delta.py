"""Synthesize a complete Delta-like dataset.

``synthesize_delta`` runs the full substrate pipeline:

1. build the Delta cluster (Figure 2 shape);
2. generate the Table-3-shaped workload and a preliminary schedule (the
   occupancy oracle for placement bias);
3. inject the calibrated hardware fault trace;
4. derive drain/cordon intervals for offender GPUs from the trace (SREs
   repeatedly cordon defective parts) and re-schedule against them;
5. couple errors to jobs (encounters, Table-2 failures, MMU emissions,
   repair incidents);
6. expose the observables: raw syslog lines and the Slurm database.

The ground-truth trace and coupling truth ride along for tests but are
never consumed by the analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.inventory import ClusterInventory, build_delta_cluster
from repro.faults.calibration import (
    AMPERE_CALIBRATION,
    H100_CALIBRATION,
    CalibrationProfile,
)
from repro.faults.events import FaultTrace
from repro.faults.injector import FaultInjector, InjectorConfig
from repro.slurm.accounting import SlurmDatabase
from repro.slurm.failures import CouplingConfig, CouplingResult, FailureCoupler
from repro.slurm.scheduler import GpuScheduler, Interval, Schedule
from repro.slurm.workload import WorkloadConfig, WorkloadModel
from repro.syslog.format import render_trace
from repro.syslog.noise import NoiseConfig, generate_noise_lines
from repro.syslog.writer import write_node_logs
from repro.util.rng import spawn_rng

GpuKey = Tuple[str, str]


@dataclass(frozen=True)
class DeltaDatasetConfig:
    """Dataset generation knobs (defaults favour fast, test-sized runs)."""

    scale: float = 0.05
    seed: int = 7
    with_jobs: bool = True
    noise_lines_per_node_hour: float = 0.5
    #: Probability each offender-GPU error episode is cordoned by SREs
    #: (drained: no new jobs placed), keeping Table 2's encounter counts in
    #: the regime the paper observed.
    cordon_prob: float = 0.7
    #: Events on one GPU within this gap merge into one cordon episode.
    cordon_episode_gap: float = 4 * 3600.0
    #: GPUs with at least this many events of one code count as offenders.
    cordon_event_threshold: int = 60


@dataclass
class DeltaDataset:
    """Observables plus ground truth for one synthesized dataset."""

    cluster: ClusterInventory
    profile: CalibrationProfile
    config: DeltaDatasetConfig
    trace: FaultTrace
    slurm_db: SlurmDatabase
    pids: Dict[int, int]
    truth: Optional[CouplingResult] = None
    schedule: Optional[Schedule] = None

    @property
    def window_seconds(self) -> float:
        return self.trace.window_seconds

    @property
    def reference_node_count(self) -> int:
        return self.profile.reference_node_count

    @property
    def reference_gpu_count(self) -> int:
        """GPU population of the partition this dataset models (mirrors
        the injector's Ampere-vs-Hopper node selection)."""
        if self.profile.name.endswith("h100"):
            nodes = self.cluster.hopper_nodes
        else:
            nodes = self.cluster.ampere_nodes
        return sum(len(node.gpus) for node in nodes)

    # -- observables ------------------------------------------------------

    def log_lines(self, *, include_noise: bool = True) -> Iterator[str]:
        """Stream the dataset's raw syslog (XID lines plus benign noise)."""
        yield from render_trace(self.trace.events, seed=self.config.seed, pids=self.pids)
        if include_noise and self.config.noise_lines_per_node_hour > 0:
            yield from generate_noise_lines(
                self.trace.node_ids,
                self.window_seconds,
                NoiseConfig(
                    lines_per_node_hour=self.config.noise_lines_per_node_hour,
                    seed=self.config.seed,
                ),
            )

    def write_logs(self, directory: str | Path, *, compress: bool = False) -> List[Path]:
        return write_node_logs(self.log_lines(), directory, compress=compress)

    def save_slurm_db(self, path: str | Path) -> None:
        self.slurm_db.save(path)


# ---------------------------------------------------------------------------


def synthesize_delta(
    *,
    scale: float = 0.05,
    seed: int = 7,
    profile: CalibrationProfile = AMPERE_CALIBRATION,
    config: DeltaDatasetConfig | None = None,
    cluster: ClusterInventory | None = None,
    workload_config: WorkloadConfig | None = None,
) -> DeltaDataset:
    """Build the Ampere (Table 1) dataset at the given scale."""
    config = config or DeltaDatasetConfig(scale=scale, seed=seed)
    cluster = cluster or build_delta_cluster()
    injector = FaultInjector(
        profile,
        InjectorConfig(
            scale=config.scale, seed=config.seed, workload_mmu_external=config.with_jobs
        ),
    )
    window = injector.window_seconds

    if not config.with_jobs:
        trace = injector.generate(cluster)
        return DeltaDataset(
            cluster=cluster,
            profile=profile,
            config=config,
            trace=trace,
            slurm_db=SlurmDatabase([], [], window_seconds=window),
            pids={},
        )

    if workload_config is None:
        workload_config = WorkloadConfig(
            scale=config.scale,
            seed=config.seed,
            mmu_budget=injector.workload_mmu_budget(),
        )
    elif workload_config.mmu_budget == 0.0:
        from dataclasses import replace as _replace

        workload_config = _replace(
            workload_config, mmu_budget=injector.workload_mmu_budget()
        )
    workload = WorkloadModel(workload_config, window_days=profile.window_days)
    specs = workload.generate()

    # Two-pass generation: a schedule-free preview trace pins down the
    # offender GPUs (their episodes draw from dedicated RNG streams, so they
    # are identical across passes), the cordons derived from it shape the
    # final schedule, and the real trace is then placed against the *final*
    # schedule's occupancy — so idle-biased codes are idle with respect to
    # the very schedule the coupling uses.
    preview_trace = injector.generate(cluster)
    cordons = derive_cordons(preview_trace, config)
    final = GpuScheduler(cluster, blackouts=cordons).schedule(specs, window)
    injector = FaultInjector(
        profile,
        InjectorConfig(
            scale=config.scale, seed=config.seed, workload_mmu_external=config.with_jobs
        ),
    )
    trace = injector.generate(cluster, occupancy=final.occupancy)

    coupler = FailureCoupler(profile, CouplingConfig(seed=config.seed))
    coupling = coupler.couple(
        final, trace, specs, mmu_budget=injector.workload_mmu_budget()
    )

    slurm_db = SlurmDatabase(
        coupling.jobs, coupling.node_events, window_seconds=window
    )
    return DeltaDataset(
        cluster=cluster,
        profile=profile,
        config=config,
        trace=coupling.trace,
        slurm_db=slurm_db,
        pids=coupling.pids,
        truth=coupling,
        schedule=final,
    )


def synthesize_h100(
    *,
    scale: float = 1.0,
    seed: int = 7,
    config: DeltaDatasetConfig | None = None,
    cluster: ClusterInventory | None = None,
) -> DeltaDataset:
    """Build the Hopper early-deployment (Section 6) dataset.

    H100 jobs run at ~20% utilization over a shorter window; the default
    scale of 1.0 is cheap because the Section-6 event population is small.
    """
    config = config or DeltaDatasetConfig(scale=scale, seed=seed)
    workload_config = WorkloadConfig(
        scale=config.scale,
        seed=config.seed,
        jobs_per_day=244.0,  # ~20% utilization of the 320-GPU partition
        partition_override="h100",
    )
    return synthesize_delta(
        scale=config.scale,
        seed=config.seed,
        profile=H100_CALIBRATION,
        config=config,
        cluster=cluster,
        workload_config=workload_config,
    )


# ---------------------------------------------------------------------------


def derive_cordons(
    trace: FaultTrace, config: DeltaDatasetConfig
) -> Dict[GpuKey, List[Interval]]:
    """Drain intervals for offender GPUs, derived from the fault trace.

    GPUs emitting dense error episodes get cordoned (no new job placements)
    for the episode span with probability ``cordon_prob`` per episode —
    modelling SREs repeatedly draining a defective part without managing to
    replace it (the paper's 17-day uncontained case).
    """
    rng = spawn_rng(config.seed, "cordons")
    per_gpu_xid: Dict[Tuple[GpuKey, int], List[float]] = {}
    for event in trace.events:
        per_gpu_xid.setdefault((event.gpu_key, int(event.xid)), []).append(event.time)

    cordons: Dict[GpuKey, List[Interval]] = {}
    for (gpu, _xid), times in per_gpu_xid.items():
        if len(times) < config.cordon_event_threshold:
            continue
        times.sort()
        episode_start = times[0]
        last = times[0]
        episodes: List[Interval] = []
        for t in times[1:]:
            if t - last > config.cordon_episode_gap:
                episodes.append((episode_start, last + 3600.0))
                episode_start = t
            last = t
        episodes.append((episode_start, last + 3600.0))
        kept = [ep for ep in episodes if rng.random() < config.cordon_prob]
        if kept:
            cordons.setdefault(gpu, []).extend(kept)
    for gpu in cordons:
        cordons[gpu].sort()
    return cordons
