"""One-call synthetic-Delta dataset builders."""

from repro.datasets.cache import load_dataset, save_dataset
from repro.datasets.delta import (
    DeltaDataset,
    DeltaDatasetConfig,
    synthesize_delta,
    synthesize_h100,
)
from repro.datasets.incidents import (
    gsp_incident,
    nvlink_multinode_incident,
    pmu_mmu_incident,
)

__all__ = [
    "load_dataset",
    "save_dataset",
    "DeltaDataset",
    "DeltaDatasetConfig",
    "synthesize_delta",
    "synthesize_h100",
    "gsp_incident",
    "nvlink_multinode_incident",
    "pmu_mmu_incident",
]
