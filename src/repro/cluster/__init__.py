"""Cluster substrate: GPU devices, node configurations, NVLink topology.

Models the NCSA Delta system the paper studied (its Figure 2): 132 CPU-only
nodes plus 286 GPU nodes in four configurations — 4-way NVIDIA A40, 4-way
A100, 8-way A100, and 4-way GH200 (H100).  Every GPU carries the node ID and
PCI-Express bus address the paper uses to identify devices in syslog.
"""

from repro.cluster.gpu import GpuArchitecture, GpuDevice, GpuModel, GPU_SPECS, GpuSpec
from repro.cluster.node import Node, NodeConfig, NodeKind, NODE_CONFIGS
from repro.cluster.topology import NVLinkTopology, nvlink_topology_for
from repro.cluster.inventory import ClusterInventory, build_delta_cluster, DeltaShape

__all__ = [
    "GpuArchitecture",
    "GpuDevice",
    "GpuModel",
    "GPU_SPECS",
    "GpuSpec",
    "Node",
    "NodeConfig",
    "NodeKind",
    "NODE_CONFIGS",
    "NVLinkTopology",
    "nvlink_topology_for",
    "ClusterInventory",
    "build_delta_cluster",
    "DeltaShape",
]
