"""Node configurations and node objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cluster.gpu import GpuDevice, GpuModel, pci_bus_for_slot


class NodeKind(enum.Enum):
    """Delta's four GPU node configurations plus CPU-only nodes (Figure 2)."""

    CPU = "cpu"
    A40_X4 = "a40_x4"
    A100_X4 = "a100_x4"
    A100_X8 = "a100_x8"
    GH200_X4 = "gh200_x4"


@dataclass(frozen=True)
class NodeConfig:
    """Static description of a node kind."""

    kind: NodeKind
    gpu_model: GpuModel | None
    gpus_per_node: int
    hostname_prefix: str
    description: str

    @property
    def is_gpu_node(self) -> bool:
        return self.gpus_per_node > 0


NODE_CONFIGS: Dict[NodeKind, NodeConfig] = {
    NodeKind.CPU: NodeConfig(
        NodeKind.CPU, None, 0, "cn", "Dual 64-core AMD EPYC Milan, no GPUs"
    ),
    NodeKind.A40_X4: NodeConfig(
        NodeKind.A40_X4, GpuModel.A40, 4, "gpua", "4-way NVIDIA A40"
    ),
    NodeKind.A100_X4: NodeConfig(
        NodeKind.A100_X4, GpuModel.A100, 4, "gpub", "4-way NVIDIA A100"
    ),
    NodeKind.A100_X8: NodeConfig(
        NodeKind.A100_X8, GpuModel.A100, 8, "gpuc", "8-way NVIDIA A100"
    ),
    NodeKind.GH200_X4: NodeConfig(
        NodeKind.GH200_X4, GpuModel.H100, 4, "gh", "4x GH200 Grace-Hopper superchips"
    ),
}


@dataclass(frozen=True)
class Node:
    """One compute node with its instantiated GPU devices."""

    node_id: str
    kind: NodeKind
    gpus: Tuple[GpuDevice, ...]

    @property
    def config(self) -> NodeConfig:
        return NODE_CONFIGS[self.kind]

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    @property
    def is_gpu_node(self) -> bool:
        return bool(self.gpus)

    def gpu_by_bus(self, pci_bus: str) -> GpuDevice:
        for gpu in self.gpus:
            if gpu.pci_bus == pci_bus:
                return gpu
        raise KeyError(f"no GPU at {pci_bus} on node {self.node_id}")


def make_node(kind: NodeKind, ordinal: int) -> Node:
    """Instantiate a node of the given kind with deterministic identifiers."""
    config = NODE_CONFIGS[kind]
    node_id = f"{config.hostname_prefix}{ordinal:03d}"
    gpus: List[GpuDevice] = []
    if config.gpu_model is not None:
        gpus = [
            GpuDevice(
                node_id=node_id,
                pci_bus=pci_bus_for_slot(slot),
                model=config.gpu_model,
                index=slot,
            )
            for slot in range(config.gpus_per_node)
        ]
    return Node(node_id=node_id, kind=kind, gpus=tuple(gpus))
