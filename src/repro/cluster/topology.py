"""Intra-node NVLink topology.

NVLink is the intra-node GPU-to-GPU fabric whose errors (XID 74) the paper
studies in Section 4.4.2.  The fault injector uses the topology to decide
which *peer* GPUs an NVLink error can spread to (Figure 6's inter-GPU
propagation), so the graph structure — pairwise on A40, fully connected on
4-way A100/GH200, NVSwitch all-to-all on 8-way A100 — directly shapes the
reproduced multi-GPU involvement distribution (84% single-GPU, 16% multi,
35 all-eight events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.cluster.node import Node, NodeKind


@dataclass(frozen=True)
class NVLinkTopology:
    """An undirected link graph over GPU slot indices within one node."""

    kind: NodeKind
    links: FrozenSet[Tuple[int, int]]  # each tuple sorted (low, high)

    def peers(self, slot: int) -> Tuple[int, ...]:
        """Slots directly linked to ``slot``."""
        out = []
        for a, b in self.links:
            if a == slot:
                out.append(b)
            elif b == slot:
                out.append(a)
        return tuple(sorted(out))

    def reachable(self, slot: int) -> Tuple[int, ...]:
        """All slots in the same NVLink connected component as ``slot``."""
        seen = {slot}
        frontier = [slot]
        while frontier:
            current = frontier.pop()
            for peer in self.peers(current):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return tuple(sorted(seen))

    @property
    def num_gpus(self) -> int:
        slots = {s for link in self.links for s in link}
        return (max(slots) + 1) if slots else 0

    def to_networkx(self):
        """The link graph as a :class:`networkx.Graph` (optional dependency)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_gpus))
        graph.add_edges_from(self.links)
        return graph


def _all_to_all(n: int) -> FrozenSet[Tuple[int, int]]:
    return frozenset((a, b) for a in range(n) for b in range(a + 1, n))


def _pairs(n: int) -> FrozenSet[Tuple[int, int]]:
    return frozenset((i, i + 1) for i in range(0, n - 1, 2))


_TOPOLOGIES: Dict[NodeKind, NVLinkTopology] = {
    # A40 exposes a single NVLink bridge per card: GPUs are bridged in pairs.
    NodeKind.A40_X4: NVLinkTopology(NodeKind.A40_X4, _pairs(4)),
    # 4-way SXM A100 boards run direct NVLink between every GPU pair.
    NodeKind.A100_X4: NVLinkTopology(NodeKind.A100_X4, _all_to_all(4)),
    # 8-way HGX boards connect all GPUs through NVSwitch: effectively all-to-all.
    NodeKind.A100_X8: NVLinkTopology(NodeKind.A100_X8, _all_to_all(8)),
    # GH200 quads use NVLink between all four superchips.
    NodeKind.GH200_X4: NVLinkTopology(NodeKind.GH200_X4, _all_to_all(4)),
}


def nvlink_topology_for(node: Node | NodeKind) -> NVLinkTopology | None:
    """The NVLink topology for a node (``None`` for CPU-only nodes)."""
    kind = node.kind if isinstance(node, Node) else node
    return _TOPOLOGIES.get(kind)
