"""GPU device and model specifications.

Resilience features differ across the three models the paper studies
(Section 2.3): all three remap faulty memory rows, but only A100 and H100
support uncorrectable-error *containment* and *dynamic page offlining*, and
only Ampere/Hopper parts carry the GSP co-processor whose RPC timeouts the
paper identifies as the dominant hardware weak link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class GpuArchitecture(enum.Enum):
    AMPERE = "ampere"
    HOPPER = "hopper"


class GpuModel(enum.Enum):
    A40 = "A40"
    A100 = "A100"
    H100 = "H100"


@dataclass(frozen=True)
class GpuSpec:
    """Static per-model capability sheet used by the fault chains."""

    model: GpuModel
    architecture: GpuArchitecture
    memory_gib: int
    memory_kind: str
    #: Maximum row remappings before RRF becomes certain (Ampere: 512).
    max_row_remaps: int
    #: A100/H100 only: uncorrectable memory errors can be contained.
    supports_error_containment: bool
    #: A100/H100 only: bad pages can be offlined without a GPU reset.
    supports_page_offlining: bool
    #: Whether the part carries a GSP co-processor (all three do).
    has_gsp: bool = True
    #: Number of NVLink ports per GPU (0 disables NVLink fault injection).
    nvlink_ports: int = 0


GPU_SPECS: Dict[GpuModel, GpuSpec] = {
    GpuModel.A40: GpuSpec(
        model=GpuModel.A40,
        architecture=GpuArchitecture.AMPERE,
        memory_gib=48,
        memory_kind="GDDR6",
        max_row_remaps=512,
        supports_error_containment=False,
        supports_page_offlining=False,
        nvlink_ports=1,
    ),
    GpuModel.A100: GpuSpec(
        model=GpuModel.A100,
        architecture=GpuArchitecture.AMPERE,
        memory_gib=40,
        memory_kind="HBM2e",
        max_row_remaps=512,
        supports_error_containment=True,
        supports_page_offlining=True,
        nvlink_ports=12,
    ),
    GpuModel.H100: GpuSpec(
        model=GpuModel.H100,
        architecture=GpuArchitecture.HOPPER,
        memory_gib=96,
        memory_kind="HBM3",
        max_row_remaps=512,
        supports_error_containment=True,
        supports_page_offlining=True,
        nvlink_ports=18,
    ),
}


@dataclass(frozen=True, order=True)
class GpuDevice:
    """One physical GPU, identified the way the paper identifies devices.

    The paper (footnote 6): "GPU devices are identified by their node ID and
    PCI Express bus address" — both are part of this identity and both are
    rendered into (and re-parsed from) syslog lines.
    """

    node_id: str
    pci_bus: str  # e.g. "0000:C7:00"
    model: GpuModel = field(compare=False)
    index: int = field(compare=False)  # slot index within the node

    @property
    def spec(self) -> GpuSpec:
        return GPU_SPECS[self.model]

    @property
    def key(self) -> tuple[str, str]:
        """Hashable identity: ``(node_id, pci_bus)``."""
        return (self.node_id, self.pci_bus)

    def __str__(self) -> str:
        return f"{self.node_id}:GPU{self.index}({self.model.value}@{self.pci_bus})"


#: PCI bus numbers used for GPU slots, mirroring a typical SXM board layout.
_PCI_SLOTS = ("07", "46", "85", "C7", "0B", "4A", "89", "CB")


def pci_bus_for_slot(index: int) -> str:
    """Deterministic PCI bus address for a GPU slot index (0-7)."""
    if not 0 <= index < len(_PCI_SLOTS):
        raise ValueError(f"GPU slot index out of range: {index}")
    return f"0000:{_PCI_SLOTS[index]}:00"
