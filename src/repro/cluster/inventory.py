"""Cluster inventory: the full Delta machine and scaled variants.

``build_delta_cluster()`` reproduces the paper's Figure 2 shape: 132
CPU-only nodes and 286 GPU nodes — 100 4-way A40, 100 4-way A100, 6 8-way
A100, and 80 4-way GH200 (H100) — for 1,168 GPUs total, of which 848 are
Ampere GPUs on 206 Ampere nodes (the population Table 1 normalizes by).

``DeltaShape`` lets tests and benchmarks build proportionally smaller
clusters while keeping the configuration mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.cluster.gpu import GpuDevice, GpuModel
from repro.cluster.node import Node, NodeKind, make_node
from repro.cluster.topology import NVLinkTopology, nvlink_topology_for


@dataclass(frozen=True)
class DeltaShape:
    """Node counts per configuration."""

    cpu_nodes: int = 132
    a40_x4_nodes: int = 100
    a100_x4_nodes: int = 100
    a100_x8_nodes: int = 6
    gh200_nodes: int = 80

    def counts(self) -> Dict[NodeKind, int]:
        return {
            NodeKind.CPU: self.cpu_nodes,
            NodeKind.A40_X4: self.a40_x4_nodes,
            NodeKind.A100_X4: self.a100_x4_nodes,
            NodeKind.A100_X8: self.a100_x8_nodes,
            NodeKind.GH200_X4: self.gh200_nodes,
        }

    def scaled(self, factor: float) -> "DeltaShape":
        """A proportionally smaller (or larger) cluster, min 1 node per kind."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")

        def scale(count: int) -> int:
            return max(1, round(count * factor)) if count else 0

        return DeltaShape(
            cpu_nodes=scale(self.cpu_nodes),
            a40_x4_nodes=scale(self.a40_x4_nodes),
            a100_x4_nodes=scale(self.a100_x4_nodes),
            a100_x8_nodes=scale(self.a100_x8_nodes),
            gh200_nodes=scale(self.gh200_nodes),
        )


class ClusterInventory:
    """An instantiated cluster: nodes, GPUs, and lookup indexes."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        self.nodes: Tuple[Node, ...] = tuple(nodes)
        self._by_id: Dict[str, Node] = {n.node_id: n for n in self.nodes}
        if len(self._by_id) != len(self.nodes):
            raise ValueError("duplicate node_id in inventory")
        self._gpu_index: Dict[Tuple[str, str], GpuDevice] = {
            gpu.key: gpu for node in self.nodes for gpu in node.gpus
        }

    # -- lookups ---------------------------------------------------------

    def node(self, node_id: str) -> Node:
        return self._by_id[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._by_id

    def gpu(self, node_id: str, pci_bus: str) -> GpuDevice:
        return self._gpu_index[(node_id, pci_bus)]

    def topology(self, node_id: str) -> NVLinkTopology | None:
        return nvlink_topology_for(self.node(node_id))

    # -- populations -----------------------------------------------------

    @property
    def gpu_nodes(self) -> Tuple[Node, ...]:
        return tuple(n for n in self.nodes if n.is_gpu_node)

    @property
    def cpu_nodes(self) -> Tuple[Node, ...]:
        return tuple(n for n in self.nodes if not n.is_gpu_node)

    @property
    def gpus(self) -> Tuple[GpuDevice, ...]:
        return tuple(self._gpu_index.values())

    def nodes_of_kind(self, *kinds: NodeKind) -> Tuple[Node, ...]:
        wanted = set(kinds)
        return tuple(n for n in self.nodes if n.kind in wanted)

    def gpus_of_model(self, *models: GpuModel) -> Tuple[GpuDevice, ...]:
        wanted = set(models)
        return tuple(g for g in self.gpus if g.model in wanted)

    @property
    def ampere_nodes(self) -> Tuple[Node, ...]:
        """The 206-node Ampere population Table 1 normalizes by."""
        return self.nodes_of_kind(NodeKind.A40_X4, NodeKind.A100_X4, NodeKind.A100_X8)

    @property
    def hopper_nodes(self) -> Tuple[Node, ...]:
        return self.nodes_of_kind(NodeKind.GH200_X4)

    def iter_gpus(self) -> Iterator[GpuDevice]:
        return iter(self._gpu_index.values())

    def summary(self) -> Dict[str, int]:
        return {
            "nodes": len(self.nodes),
            "gpu_nodes": len(self.gpu_nodes),
            "cpu_nodes": len(self.cpu_nodes),
            "gpus": len(self.gpus),
            "ampere_nodes": len(self.ampere_nodes),
            "ampere_gpus": len(
                self.gpus_of_model(GpuModel.A40, GpuModel.A100)
            ),
            "hopper_gpus": len(self.gpus_of_model(GpuModel.H100)),
        }

    def __repr__(self) -> str:
        s = self.summary()
        return f"ClusterInventory(nodes={s['nodes']}, gpus={s['gpus']})"


def build_delta_cluster(
    shape: DeltaShape | None = None, *, scale: float = 1.0
) -> ClusterInventory:
    """Build a Delta-shaped cluster, optionally scaled down for fast runs."""
    shape = shape or DeltaShape()
    if scale != 1.0:
        shape = shape.scaled(scale)
    nodes: List[Node] = []
    for kind, count in shape.counts().items():
        nodes.extend(make_node(kind, ordinal) for ordinal in range(1, count + 1))
    return ClusterInventory(nodes)
