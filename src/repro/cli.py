"""Command-line entry point: ``repro-delta``.

Subcommands:

* ``synthesize`` — generate a dataset (logs + Slurm DB) to a directory;
* ``study`` — run the full characterization over a generated dataset (or
  synthesize one in-memory) and print the paper-style report;
* ``overprovision`` — run the Section-5.4 sweep.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05,
                        help="observation-window scale (1.0 = the paper's 855 days)")
    parser.add_argument("--seed", type=int, default=7)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-delta", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_syn = sub.add_parser("synthesize", help="generate a dataset to a directory")
    _add_common(p_syn)
    p_syn.add_argument("output", type=Path, help="output directory")
    p_syn.add_argument("--compress", action="store_true", help="gzip the log files")

    p_study = sub.add_parser("study", help="run the characterization and print reports")
    _add_common(p_study)
    p_study.add_argument("--dataset", type=Path, default=None,
                         help="directory written by 'synthesize' (default: in-memory)")
    p_study.add_argument("--workers", type=int, default=None,
                         help="processes for sharded log extraction over an "
                         "on-disk --dataset (default: all cores; 1 forces "
                         "the serial path; identical results either way)")
    p_study.add_argument("--h100", action="store_true",
                         help="also run the Section-6 H100 analysis")

    p_over = sub.add_parser("overprovision", help="run the Section-5.4 sweep")
    p_over.add_argument("--nodes", type=int, default=800)
    p_over.add_argument("--seed", type=int, default=7)

    p_fig = sub.add_parser("figures", help="render the paper's figures as SVG")
    _add_common(p_fig)
    p_fig.add_argument("--output", type=Path, default=Path("figures"))

    p_exp = sub.add_parser(
        "experiment", help="run one registered table/figure experiment"
    )
    _add_common(p_exp)
    p_exp.add_argument("id", nargs="?", default=None,
                       help="experiment id (omit to list)")

    p_sim = sub.add_parser(
        "simulate",
        help="what-if engine: Monte-Carlo sweep of a training job against "
        "the measured failure process under a recovery policy",
    )
    p_sim.add_argument("--scenario", default="a100-512",
                       help="preset fleet+job (see --list-scenarios)")
    p_sim.add_argument("--policy", default="ckpt",
                       help="recovery policy: none | ckpt[:h] | "
                       "spare[:n][:h] | elastic[:h]")
    p_sim.add_argument("--replicas", type=int, default=16,
                       help="Monte-Carlo replicas to run")
    p_sim.add_argument("--workers", type=int, default=1,
                       help="worker processes (aggregates are identical "
                       "for any worker count)")
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--gpus", type=int, default=None,
                       help="override the scenario's job size")
    p_sim.add_argument("--useful-hours", type=float, default=None,
                       help="override the scenario's job length")
    p_sim.add_argument("--cache-dir", type=Path, default=None,
                       help="cache replica results here (resumable sweeps)")
    p_sim.add_argument("--json", action="store_true",
                       help="emit the aggregate as JSON instead of a table")
    p_sim.add_argument("--list-scenarios", action="store_true",
                       help="list scenario presets and exit")

    p_mon = sub.add_parser(
        "monitor",
        help="stream a log directory through the live coalescer and print "
        "persistence alarms (the Section-4.3 watchdog)",
    )
    p_mon.add_argument("logs", type=Path, help="directory of *.log files")
    p_mon.add_argument("--alarm-minutes", type=float, default=30.0)

    p_srv = sub.add_parser(
        "serve",
        help="run the fleet health service: tail per-node logs live, "
        "maintain per-GPU health, fire operator alerts, expose /metrics",
    )
    p_srv.add_argument("logs", type=Path,
                       help="directory of per-node *.log files to follow "
                       "(created when --simulate writes into it)")
    p_srv.add_argument("--simulate", action="store_true",
                       help="run a live fault-injection demo: inject a small "
                       "cluster's trace and replay it into the log directory "
                       "while the service follows it")
    p_srv.add_argument("--seed", type=int, default=11)
    p_srv.add_argument("--speedup", type=float, default=None,
                       help="simulated seconds per wall second for the "
                       "replay (default: flat out)")
    p_srv.add_argument("--port", type=int, default=0,
                       help="metrics endpoint port (0 = ephemeral)")
    p_srv.add_argument("--alarm-minutes", type=float, default=10.0,
                       help="open-persistence alarm threshold")
    p_srv.add_argument("--alerts-jsonl", type=Path, default=None,
                       help="also append alerts to this JSON-lines file")
    p_srv.add_argument("--duration", type=float, default=None,
                       help="follow for this many seconds then exit "
                       "(without --simulate the default is to run forever)")
    p_srv.add_argument("--trained-risk", action="store_true",
                       help="fit the Section-4.3 persistence predictor on a "
                       "synthesized window and use it for risk scores "
                       "(default: static-prior heuristic)")

    args = parser.parse_args(argv)
    if args.command == "synthesize":
        return _cmd_synthesize(args)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "overprovision":
        return _cmd_overprovision(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.datasets import synthesize_delta

    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    args.output.mkdir(parents=True, exist_ok=True)
    paths = dataset.write_logs(args.output / "logs", compress=args.compress)
    dataset.save_slurm_db(args.output / "slurm.jsonl")
    print(f"wrote {len(paths)} node log files and slurm.jsonl under {args.output}")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    import os

    from repro.core import DeltaStudy, H100Analyzer
    from repro.core.report import (
        render_counterfactual,
        render_figure5,
        render_figure6,
        render_figure7,
        render_figure9,
        render_table1,
        render_table2,
        render_table3,
    )
    from repro.datasets import synthesize_delta, synthesize_h100
    from repro.faults import AMPERE_CALIBRATION
    from repro.slurm import SlurmDatabase

    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    if workers < 1:
        print("error: --workers must be >= 1")
        return 2
    if args.dataset is not None:
        slurm_db = SlurmDatabase.load(args.dataset / "slurm.jsonl")
        study = DeltaStudy.from_log_directory(
            args.dataset / "logs",
            window_hours=AMPERE_CALIBRATION.window_days * 24.0 * args.scale,
            n_nodes=AMPERE_CALIBRATION.reference_node_count,
            slurm_db=slurm_db,
            workers=workers,
        )
        scale = args.scale
    else:
        dataset = synthesize_delta(scale=args.scale, seed=args.seed)
        study = DeltaStudy.from_dataset(dataset)
        scale = dataset.config.scale

    stats = study.error_statistics()
    impact = study.job_impact()
    availability = study.availability()
    propagation = study.propagation()
    print(render_table1(stats, AMPERE_CALIBRATION, scale=scale))
    print()
    print(render_figure5(propagation))
    print()
    print(render_figure6(propagation))
    print()
    print(render_figure7(propagation))
    print()
    print(render_table2(impact))
    print()
    print(render_table3(impact))
    print()
    print(render_figure9(impact, availability))
    print()
    print(render_counterfactual(study.counterfactual().analyze()))

    if args.h100:
        from repro.core import ErrorStatistics

        h100 = synthesize_h100(seed=args.seed)
        h_study = DeltaStudy.from_dataset(h100)
        report = H100Analyzer(h_study.error_statistics()).report()
        print()
        print("Section 6 - emerging H100 errors")
        print(f"  counts: {report.counts}")
        print(f"  MTBE: {report.mtbe_node_hours:,.0f} node-hours (paper 4,114)")
        print(f"  remap anomaly (DBE/RRF without RRE): {report.has_remap_anomaly}")
    return 0


def _cmd_overprovision(args: argparse.Namespace) -> int:
    from repro.core import OverprovisionConfig, OverprovisionSimulator
    from repro.core.report import render_overprovision

    simulator = OverprovisionSimulator(
        OverprovisionConfig(n_nodes=args.nodes, seed=args.seed)
    )
    results = simulator.sweep(
        recovery_minutes=(5.0, 10.0, 20.0, 40.0),
        availabilities=(0.995, 0.9987),
    )
    print(render_overprovision(results))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core import DeltaStudy, OverprovisionConfig, OverprovisionSimulator
    from repro.datasets import synthesize_delta
    from repro.viz import render_all_figures

    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    study = DeltaStudy.from_dataset(dataset)
    sweep = OverprovisionSimulator(OverprovisionConfig(n_trials=2)).sweep(
        recovery_minutes=(5.0, 20.0, 40.0), availabilities=(0.995, 0.9987)
    )
    paths = render_all_figures(
        stats=study.error_statistics(),
        impact=study.job_impact(),
        availability=study.availability(),
        graph=study.propagation().analyze(),
        sweep=sweep,
        directory=args.output,
    )
    for path in paths:
        print(path)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.core import DeltaStudy
    from repro.datasets import synthesize_delta
    from repro.experiments import list_experiments, run_experiment

    if args.id is None:
        for experiment in list_experiments():
            print(f"{experiment.identifier:<10} {experiment.paper_artifact:<18} "
                  f"{experiment.description}")
        return 0
    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    study = DeltaStudy.from_dataset(dataset)
    print(run_experiment(args.id, study, scale=args.scale))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.sim import AGGREGATE_FIELDS, SweepConfig, list_scenarios, run_sweep

    if args.list_scenarios:
        for name, description in list_scenarios():
            print(f"{name:<20} {description}")
        return 0
    try:
        config = SweepConfig(
            scenario=args.scenario,
            policy=args.policy,
            replicas=args.replicas,
            seed=args.seed,
            n_gpus=args.gpus,
            useful_hours=args.useful_hours,
        )
        config.build()  # fail fast on bad scenario/policy specs
    except ValueError as error:
        print(f"error: {error}")
        return 2
    result = run_sweep(
        config,
        workers=args.workers,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
    )
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    aggregate = result.aggregate
    print(f"scenario {config.scenario}  policy {config.policy}  "
          f"replicas {config.replicas} (cached {result.n_from_cache})  "
          f"seed {config.seed}")
    print(f"completed fraction: {aggregate['completed_fraction']:.2f}")
    for name in AGGREGATE_FIELDS:
        cell = aggregate[name]
        print(f"  {name:<24} {cell['mean']:12.3f} +/- {cell['ci95']:.3f}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.pipeline import FileSetSource, IngestPipeline, StreamingCoalesce
    from repro.util.timeutil import format_duration, format_timestamp

    # The same staged pipeline the batch study rides, with the streaming
    # coalescer as the Coalesce stage: records stream through the k-way
    # time merge (which preserves each node file's per-GPU order), alarms
    # fire the moment an open run crosses the threshold, and
    # keep_closed=False keeps memory O(open runs).
    def _print_alarm(alarm) -> None:
        print(
            f"ALARM {format_timestamp(alarm.start_time)} {alarm.node_id} "
            f"{alarm.pci_bus} XID {alarm.xid}: error open for "
            f"{format_duration(alarm.open_persistence)} "
            f"({alarm.n_raw:,} duplicate lines so far)"
        )

    pipeline = IngestPipeline(
        FileSetSource(args.logs),
        coalesce=StreamingCoalesce(
            alarm_after_seconds=args.alarm_minutes * 60.0,
            keep_closed=False,
            on_alarm=_print_alarm,
        ),
    )
    result = pipeline.run()
    print(
        f"stream complete: {result.n_errors:,} coalesced errors, "
        f"{len(result.alarms)} persistence alarms"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.fleet import (
        FleetHealthService,
        FleetServiceConfig,
        JsonLinesSink,
        LiveLogEmitter,
        StdoutSink,
    )

    if args.speedup is not None and args.speedup <= 0:
        print("error: --speedup must be positive")
        return 2
    if args.alarm_minutes <= 0:
        print("error: --alarm-minutes must be positive")
        return 2

    risk_scorer = None
    if args.trained_risk:
        from repro.fleet.risk import fit_risk_model, predictor_scorer

        print("fitting persistence-risk model on a synthesized window...")
        risk_scorer = predictor_scorer(fit_risk_model(seed=args.seed))

    sinks = [StdoutSink()]
    jsonl_sink = None
    if args.alerts_jsonl is not None:
        jsonl_sink = JsonLinesSink(args.alerts_jsonl)
        sinks.append(jsonl_sink)

    emitter = None
    if args.simulate:
        from repro.fleet.demo import demo_trace

        trace = demo_trace(seed=args.seed)
        args.logs.mkdir(parents=True, exist_ok=True)
        emitter = LiveLogEmitter.from_trace(
            trace, args.logs, seed=args.seed, speedup=args.speedup
        )
        print(
            f"simulating {len(trace):,} injected events over "
            f"{trace.window_seconds / 86_400.0:.1f} days on "
            f"{len(trace.node_ids)} nodes -> {args.logs}"
        )
    elif not args.logs.is_dir():
        print(f"error: {args.logs} is not a directory (use --simulate to create one)")
        return 2

    service = FleetHealthService(
        FleetServiceConfig(
            logs_dir=args.logs,
            alarm_after_seconds=args.alarm_minutes * 60.0,
            metrics_port=args.port,
        ),
        sinks=sinks,
        risk_scorer=risk_scorer,
    )
    service.start()
    print(f"metrics: {service.metrics_url}")
    try:
        if emitter is not None:
            emitter.start()
            emitter.join()
            service.wait_idle(timeout=60.0)
            if args.duration:
                _time.sleep(args.duration)
        elif args.duration is not None:
            _time.sleep(args.duration)
        else:
            print("following logs; Ctrl-C to stop")
            while True:
                _time.sleep(3600.0)
    except KeyboardInterrupt:
        print("stopping...")
    finally:
        if emitter is not None:
            emitter.stop()
        summary = service.summary()
        metrics_text = service.render_metrics()
        service.stop()
        if jsonl_sink is not None:
            jsonl_sink.close()

    print()
    print("session summary:")
    for key in ("records_ingested", "tracked_gpus", "error_onsets",
                "open_runs", "persistence_alarms", "alerts_fired"):
        print(f"  {key}: {summary[key]}")
    if summary["alerts_by_rule"]:
        for rule, count in summary["alerts_by_rule"].items():
            print(f"    {rule}: {count}")
    print()
    print("final /metrics scrape (excerpt):")
    for line in metrics_text.splitlines():
        if line.startswith(("repro_fleet_error_onsets_total",
                            "repro_fleet_alerts_total",
                            "repro_fleet_open_runs",
                            "repro_fleet_records_ingested_total")):
            print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
