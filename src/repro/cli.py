"""Command-line entry point: ``repro-delta``.

Subcommands:

* ``synthesize`` — generate a dataset (logs + Slurm DB) to a directory;
* ``study`` — run the full characterization over a generated dataset (or
  synthesize one in-memory) and print the paper-style report;
* ``experiment`` — run one registered table/figure experiment;
* ``verify`` — check measured metrics against the paper's tolerance bands
  and exit non-zero on any miss;
* ``overprovision`` — run the Section-5.4 sweep;
* ``store`` — build / inspect / query the persistent columnar event
  store (``store build|stats|query|compact``).

``study``, ``experiment`` and ``verify`` accept ``--store DIR``
(read-through: the store is built from the dataset on first use and
reused — Stage I becomes a columnar decode — with the store content
hash recorded in the run manifest).

``study``, ``experiment`` and ``simulate`` accept ``--format text|json``
and ``--output-dir DIR`` (which writes ``result.json`` + ``manifest.json``
per run, plus ``result.svg`` where a chart is meaningful).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

#: The experiments the ``study`` report prints, in paper order.
STUDY_SEQUENCE = (
    "table1", "fig5", "fig6", "fig7", "table2", "table3", "fig9", "sec5.5",
)


def _add_common(
    parser: argparse.ArgumentParser, *, scale: bool = True, seed: int = 7
) -> None:
    """The shared run knobs; every subcommand gets its seed from here."""
    if scale:
        parser.add_argument("--scale", type=float, default=0.05,
                            help="observation-window scale "
                            "(1.0 = the paper's 855 days)")
    parser.add_argument("--seed", type=int, default=seed)


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="read records through a columnar event store "
                        "at DIR (built from the dataset on first use, "
                        "reused thereafter)")


def _add_output(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="print the paper-style text or the structured "
                        "JSON artifact")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="also write result.json + manifest.json "
                        "(+ result.svg where applicable) per run")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-delta", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_syn = sub.add_parser("synthesize", help="generate a dataset to a directory")
    _add_common(p_syn)
    p_syn.add_argument("output", type=Path, help="output directory")
    p_syn.add_argument("--compress", action="store_true", help="gzip the log files")

    p_study = sub.add_parser("study", help="run the characterization and print reports")
    _add_common(p_study)
    p_study.add_argument("--dataset", type=Path, default=None,
                         help="directory written by 'synthesize' (default: in-memory)")
    p_study.add_argument("--workers", type=int, default=None,
                         help="processes for sharded log extraction over an "
                         "on-disk --dataset (default: all cores; 1 forces "
                         "the serial path; identical results either way)")
    p_study.add_argument("--h100", action="store_true",
                         help="also run the Section-6 H100 analysis")
    _add_store(p_study)
    _add_output(p_study)

    p_over = sub.add_parser("overprovision", help="run the Section-5.4 sweep")
    _add_common(p_over, scale=False)
    p_over.add_argument("--nodes", type=int, default=800)

    p_fig = sub.add_parser("figures", help="render the paper's figures as SVG")
    _add_common(p_fig)
    p_fig.add_argument("--output", type=Path, default=Path("figures"))

    p_exp = sub.add_parser(
        "experiment", help="run one registered table/figure experiment"
    )
    _add_common(p_exp)
    p_exp.add_argument("id", nargs="?", default=None,
                       help="experiment id (omit to list)")
    _add_store(p_exp)
    _add_output(p_exp)

    p_ver = sub.add_parser(
        "verify",
        help="run the tolerance-annotated experiments and check every "
        "measured metric against its paper band (non-zero exit on a miss)",
    )
    _add_common(p_ver)
    p_ver.add_argument("ids", nargs="*", default=[],
                       help="experiment ids to verify (default: all "
                       "tolerance-annotated experiments)")
    p_ver.add_argument("--tolerance-scale", type=float, default=1.0,
                       help="widen every band by this factor (small-scale "
                       "smoke runs need slack)")
    p_ver.add_argument("--min-support", type=int, default=None,
                       help="skip checks whose metric was estimated from "
                       "fewer samples than this")
    _add_store(p_ver)

    p_sim = sub.add_parser(
        "simulate",
        help="what-if engine: Monte-Carlo sweep of a training job against "
        "the measured failure process under a recovery policy",
    )
    p_sim.add_argument("--scenario", default="a100-512",
                       help="preset fleet+job (see --list-scenarios)")
    p_sim.add_argument("--policy", default="ckpt",
                       help="recovery policy: none | ckpt[:h] | "
                       "spare[:n][:h] | elastic[:h]")
    p_sim.add_argument("--replicas", type=int, default=16,
                       help="Monte-Carlo replicas to run")
    p_sim.add_argument("--workers", type=int, default=1,
                       help="worker processes (aggregates are identical "
                       "for any worker count)")
    _add_common(p_sim, scale=False)
    p_sim.add_argument("--gpus", type=int, default=None,
                       help="override the scenario's job size")
    p_sim.add_argument("--useful-hours", type=float, default=None,
                       help="override the scenario's job length")
    p_sim.add_argument("--cache-dir", type=Path, default=None,
                       help="cache replica results here (resumable sweeps)")
    p_sim.add_argument("--format", choices=("text", "json"), default=None,
                       help="table (text) or the aggregate as JSON")
    p_sim.add_argument("--json", action="store_true",
                       help="alias for --format json")
    p_sim.add_argument("--output-dir", type=Path, default=None,
                       help="write result.json + manifest.json for the sweep")
    p_sim.add_argument("--list-scenarios", action="store_true",
                       help="list scenario presets and exit")

    p_store = sub.add_parser(
        "store",
        help="persistent columnar event store: build once, slice by time "
        "window / XID / node / GPU without re-parsing raw logs",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_sb = store_sub.add_parser(
        "build", help="ingest a dataset's logs into a store directory"
    )
    p_sb.add_argument("dataset", type=Path,
                      help="dataset directory written by 'synthesize' "
                      "(or a bare log directory)")
    p_sb.add_argument("store_dir", type=Path, help="store directory to create")
    p_sb.add_argument("--workers", type=int, default=1,
                      help="processes for sharded log extraction")
    p_sb.add_argument("--segment-records", type=int, default=None,
                      help="records per segment (default 50,000)")
    _add_common(p_sb)

    p_ss = store_sub.add_parser("stats", help="describe a store")
    p_ss.add_argument("store_dir", type=Path)
    p_ss.add_argument("--json", action="store_true")

    p_sq = store_sub.add_parser(
        "query",
        help="slice the store: pushdown by time window, XID, node, serial",
    )
    p_sq.add_argument("store_dir", type=Path)
    p_sq.add_argument("--since", default=None,
                      help="ISO timestamp or epoch seconds (inclusive)")
    p_sq.add_argument("--until", default=None,
                      help="ISO timestamp or epoch seconds (inclusive)")
    p_sq.add_argument("--xids", default=None,
                      help="comma-separated XID codes (e.g. 48,63,79)")
    p_sq.add_argument("--nodes", default=None,
                      help="comma-separated node ids")
    p_sq.add_argument("--serials", default=None,
                      help="comma-separated GPU serials (<node>/<pci-bus>)")
    p_sq.add_argument("--limit", type=int, default=None,
                      help="print at most this many records")
    p_sq.add_argument("--count", action="store_true",
                      help="print only the matching-record count")

    p_sc = store_sub.add_parser(
        "compact", help="merge small segments (content and order preserved)"
    )
    p_sc.add_argument("store_dir", type=Path)
    p_sc.add_argument("--threshold", type=int, default=None,
                      help="segments smaller than this merge (default 10,000)")

    p_rp = sub.add_parser(
        "replay",
        help="deterministic replay & backtest: drive the live fleet stack "
        "from stored history and score alerts/predictions against "
        "ground truth",
    )
    rp_sub = p_rp.add_subparsers(dest="replay_command", required=True)

    p_rd = rp_sub.add_parser(
        "demo",
        help="write the demo cluster's two-day trace as per-node log "
        "files, flat-out (a backtest fixture: build a store from it)",
    )
    p_rd.add_argument("logs_dir", type=Path)
    p_rd.add_argument("--seed", type=int, default=11)

    def _add_replay_source(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                            help="replay from a columnar event store")
        parser.add_argument("--logs", type=Path, default=None, metavar="DIR",
                            help="replay from a directory of *.log files")
        parser.add_argument("--workers", type=int, default=1,
                            help="extraction workers (scorecard identical "
                            "for any count)")
        parser.add_argument("--speed", type=float, default=None,
                            help="simulated seconds per wall second "
                            "(1 = real time; default: unbounded)")
        parser.add_argument("--window-hours", type=float, default=6.0,
                            help="store replay-cursor window size")
        parser.add_argument("--since", default=None,
                            help="ISO timestamp or epoch seconds (inclusive)")
        parser.add_argument("--until", default=None,
                            help="ISO timestamp or epoch seconds (inclusive)")
        parser.add_argument("--xids", default=None,
                            help="comma-separated XID codes to replay")
        parser.add_argument("--nodes", default=None,
                            help="comma-separated node ids")
        parser.add_argument("--serials", default=None,
                            help="comma-separated GPU serials "
                            "(<node>/<pci-bus>)")

    p_rb = rp_sub.add_parser(
        "backtest",
        help="replay history through the real stack and emit the typed "
        "scorecard: per-rule precision/recall vs XID-79 incidents, "
        "lead times, false-alarm rates, predictor PR curve",
    )
    _add_replay_source(p_rb)
    p_rb.add_argument("--horizon-minutes", type=float, default=60.0,
                      help="forward window an alert has to call an incident")
    _add_output(p_rb)

    p_rr = rp_sub.add_parser(
        "run",
        help="replay history through the stack, printing alerts as they "
        "fire (paced by --speed)",
    )
    _add_replay_source(p_rr)
    p_rr.add_argument("--alerts-jsonl", type=Path, default=None,
                      help="also append alerts to this JSON-lines file")

    p_mon = sub.add_parser(
        "monitor",
        help="stream a log directory through the live coalescer and print "
        "persistence alarms (the Section-4.3 watchdog)",
    )
    p_mon.add_argument("logs", type=Path, help="directory of *.log files")
    p_mon.add_argument("--alarm-minutes", type=float, default=30.0)

    p_srv = sub.add_parser(
        "serve",
        help="run the fleet health service: tail per-node logs live, "
        "maintain per-GPU health, fire operator alerts, expose /metrics",
    )
    p_srv.add_argument("logs", type=Path,
                       help="directory of per-node *.log files to follow "
                       "(created when --simulate writes into it)")
    p_srv.add_argument("--simulate", action="store_true",
                       help="run a live fault-injection demo: inject a small "
                       "cluster's trace and replay it into the log directory "
                       "while the service follows it")
    # The demo seed differs from the analysis default on purpose: it picks
    # a window with a photogenic offender GPU.
    _add_common(p_srv, scale=False, seed=11)
    p_srv.add_argument("--speedup", type=float, default=None,
                       help="simulated seconds per wall second for the "
                       "replay (default: flat out)")
    p_srv.add_argument("--port", type=int, default=0,
                       help="metrics endpoint port (0 = ephemeral)")
    p_srv.add_argument("--alarm-minutes", type=float, default=10.0,
                       help="open-persistence alarm threshold")
    p_srv.add_argument("--alerts-jsonl", type=Path, default=None,
                       help="also append alerts to this JSON-lines file")
    p_srv.add_argument("--duration", type=float, default=None,
                       help="follow for this many seconds then exit "
                       "(without --simulate the default is to run forever)")
    p_srv.add_argument("--store", type=Path, default=None, metavar="DIR",
                       help="persist ingested records into a columnar event "
                       "store at DIR; on restart the registry warm-starts "
                       "from it and only new log appends are tailed")
    p_srv.add_argument("--trained-risk", action="store_true",
                       help="fit the Section-4.3 persistence predictor on a "
                       "synthesized window and use it for risk scores "
                       "(default: static-prior heuristic)")

    args = parser.parse_args(argv)
    if args.command == "synthesize":
        return _cmd_synthesize(args)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "overprovision":
        return _cmd_overprovision(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return 2


def _write_result_dir(result, output_dir: Path) -> List[Path]:
    """Persist one structured result: JSON artifact, manifest, SVG."""
    import json as _json

    directory = output_dir / result.experiment_id.replace(".", "_")
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    result_path = directory / "result.json"
    result_path.write_text(result.render_json() + "\n", encoding="utf-8")
    written.append(result_path)

    if result.manifest is not None:
        manifest_path = directory / "manifest.json"
        manifest_path.write_text(
            _json.dumps(result.manifest.to_dict(), indent=2) + "\n",
            encoding="utf-8",
        )
        written.append(manifest_path)

    svg = result.render_svg()
    if svg is not None:
        svg_path = directory / "result.svg"
        svg_path.write_text(svg, encoding="utf-8")
        written.append(svg_path)
    return written


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.datasets import synthesize_delta

    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    args.output.mkdir(parents=True, exist_ok=True)
    paths = dataset.write_logs(args.output / "logs", compress=args.compress)
    dataset.save_slurm_db(args.output / "slurm.jsonl")
    print(f"wrote {len(paths)} node log files and slurm.jsonl under {args.output}")
    return 0


def _read_through_store(
    store_dir: Path,
    make_source,
    *,
    meta: dict,
    workers: int = 1,
):
    """Open the store at ``store_dir``, building it on first use.

    ``make_source`` is called only when the store is empty (so the raw
    logs are parsed exactly once per dataset, not once per analysis).
    A non-empty store must have been built for the same scale/seed —
    silently reusing someone else's records would be worse than slow.
    """
    from repro.store import EventStore, StoreError

    store = EventStore.open_or_create(store_dir, meta=meta)
    if store.n_records == 0:
        store.ingest(make_source(), workers=workers)
        return store
    for key in ("scale", "seed"):
        want, have = meta.get(key), store.meta.get(key)
        if want is not None and have is not None and want != have:
            raise StoreError(
                f"store at {store_dir} was built with {key}={have}, "
                f"this run wants {key}={want}; pass a matching --{key} "
                "or a different --store directory"
            )
    return store


def _build_study(args: argparse.Namespace, *, workers: int = 1):
    """The study both ``study`` and ``verify`` analyze; returns
    ``(study, scale)``."""
    from repro.core import DeltaStudy
    from repro.datasets import synthesize_delta
    from repro.faults import AMPERE_CALIBRATION
    from repro.slurm import SlurmDatabase

    dataset_dir: Optional[Path] = getattr(args, "dataset", None)
    store_dir: Optional[Path] = getattr(args, "store", None)
    if dataset_dir is not None:
        slurm_db = SlurmDatabase.load(dataset_dir / "slurm.jsonl")
        window_hours = AMPERE_CALIBRATION.window_days * 24.0 * args.scale
        n_nodes = AMPERE_CALIBRATION.reference_node_count
        if store_dir is not None:
            from repro.pipeline import FileSetSource

            store = _read_through_store(
                store_dir,
                lambda: FileSetSource(dataset_dir / "logs"),
                meta={
                    "scale": args.scale,
                    "seed": args.seed,
                    "window_hours": window_hours,
                    "n_nodes": n_nodes,
                    "dataset": str(dataset_dir),
                },
                workers=workers,
            )
            study = DeltaStudy.from_store(
                store, slurm_db=slurm_db, workers=workers
            )
        else:
            study = DeltaStudy.from_log_directory(
                dataset_dir / "logs",
                window_hours=window_hours,
                n_nodes=n_nodes,
                slurm_db=slurm_db,
                workers=workers,
            )
        return study, args.scale
    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    if store_dir is not None:
        study = _store_backed_study(dataset, store_dir, workers=workers)
        return study, dataset.config.scale
    return DeltaStudy.from_dataset(dataset), dataset.config.scale


def _store_backed_study(dataset, store_dir: Path, *, workers: int = 1):
    """Read-through study over an in-memory synthesized dataset."""
    from repro.core import DeltaStudy
    from repro.pipeline import LinesSource

    store = _read_through_store(
        store_dir,
        lambda: LinesSource(dataset.log_lines()),
        meta={
            "scale": dataset.config.scale,
            "seed": dataset.config.seed,
            "window_hours": dataset.window_seconds / 3600.0,
            "n_nodes": dataset.reference_node_count,
            "n_gpus": dataset.reference_gpu_count,
        },
    )
    return DeltaStudy.from_store(
        store, slurm_db=dataset.slurm_db, workers=workers
    )


def _cmd_study(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from repro.experiments import run_experiment

    from repro.store import StoreError

    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    if workers < 1:
        print("error: --workers must be >= 1")
        return 2
    try:
        study, scale = _build_study(args, workers=workers)
    except StoreError as error:
        print(f"error: {error}")
        return 2

    sequence = STUDY_SEQUENCE + (("sec6",) if args.h100 else ())
    results = [
        run_experiment(identifier, study, scale=scale, seed=args.seed,
                       workers=workers)
        for identifier in sequence
    ]
    if args.output_dir is not None:
        for result in results:
            _write_result_dir(result, args.output_dir)
    if args.format == "json":
        print(_json.dumps([r.to_dict() for r in results], indent=2))
    else:
        print("\n\n".join(r.render_text() for r in results))
    return 0


def _cmd_overprovision(args: argparse.Namespace) -> int:
    from repro.core import OverprovisionConfig, OverprovisionSimulator
    from repro.core.report import render_overprovision

    simulator = OverprovisionSimulator(
        OverprovisionConfig(n_nodes=args.nodes, seed=args.seed)
    )
    results = simulator.sweep(
        recovery_minutes=(5.0, 10.0, 20.0, 40.0),
        availabilities=(0.995, 0.9987),
    )
    print(render_overprovision(results))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core import DeltaStudy, OverprovisionConfig, OverprovisionSimulator
    from repro.datasets import synthesize_delta
    from repro.viz import render_all_figures

    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    study = DeltaStudy.from_dataset(dataset)
    sweep = OverprovisionSimulator(OverprovisionConfig(n_trials=2)).sweep(
        recovery_minutes=(5.0, 20.0, 40.0), availabilities=(0.995, 0.9987)
    )
    paths = render_all_figures(
        stats=study.error_statistics(),
        impact=study.job_impact(),
        availability=study.availability(),
        graph=study.propagation().analyze(),
        sweep=sweep,
        directory=args.output,
    )
    for path in paths:
        print(path)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.core import DeltaStudy
    from repro.datasets import synthesize_delta
    from repro.experiments import list_experiments, run_experiment

    if args.id is None:
        for experiment in list_experiments():
            marker = "*" if experiment.verified else " "
            print(f"{experiment.identifier:<16} {experiment.paper_artifact:<22} "
                  f"{marker} {experiment.description}")
        return 0
    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    if args.store is not None:
        from repro.store import StoreError

        try:
            study = _store_backed_study(dataset, args.store)
        except StoreError as error:
            print(f"error: {error}")
            return 2
    else:
        study = DeltaStudy.from_dataset(dataset)
    result = run_experiment(args.id, study, scale=args.scale, seed=args.seed)
    if args.output_dir is not None:
        for path in _write_result_dir(result, args.output_dir):
            print(f"wrote {path}", file=sys.stderr)
    if args.format == "json":
        print(result.render_json())
    else:
        print(result.render_text())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment, verified_experiments
    from repro.results import DEFAULT_MIN_SUPPORT, verify_results

    if args.ids:
        unknown = [i for i in args.ids if i not in EXPERIMENTS]
        if unknown:
            print(f"error: unknown experiment ids: {', '.join(unknown)}")
            return 2
        identifiers = list(args.ids)
    else:
        identifiers = [e.identifier for e in verified_experiments()]
    min_support = (DEFAULT_MIN_SUPPORT if args.min_support is None
                   else args.min_support)

    from repro.store import StoreError

    try:
        study, scale = _build_study(args)
    except StoreError as error:
        print(f"error: {error}")
        return 2
    results = [
        run_experiment(identifier, study, scale=scale, seed=args.seed)
        for identifier in identifiers
    ]
    report = verify_results(
        results,
        tolerance_scale=args.tolerance_scale,
        min_support=min_support,
    )
    print(report.render_table())
    if not report.ok:
        print(f"\nFAIL: {report.n_fail} metric(s) outside their paper "
              "tolerance bands")
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.sim import AGGREGATE_FIELDS, SweepConfig, list_scenarios, run_sweep

    if args.list_scenarios:
        for name, description in list_scenarios():
            print(f"{name:<20} {description}")
        return 0
    output_format = args.format or ("json" if args.json else "text")
    try:
        config = SweepConfig(
            scenario=args.scenario,
            policy=args.policy,
            replicas=args.replicas,
            seed=args.seed,
            n_gpus=args.gpus,
            useful_hours=args.useful_hours,
        )
        config.build()  # fail fast on bad scenario/policy specs
    except ValueError as error:
        print(f"error: {error}")
        return 2
    result = run_sweep(
        config,
        workers=args.workers,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
    )
    if args.output_dir is not None:
        directory = args.output_dir / f"sweep_{result.config_hash}"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "result.json").write_text(
            _json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        if result.manifest is not None:
            (directory / "manifest.json").write_text(
                _json.dumps(result.manifest.to_dict(), indent=2) + "\n",
                encoding="utf-8",
            )
    if output_format == "json":
        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    aggregate = result.aggregate
    print(f"scenario {config.scenario}  policy {config.policy}  "
          f"replicas {config.replicas} (cached {result.n_from_cache})  "
          f"seed {config.seed}")
    print(f"completed fraction: {aggregate['completed_fraction']:.2f}")
    for name in AGGREGATE_FIELDS:
        cell = aggregate[name]
        print(f"  {name:<24} {cell['mean']:12.3f} +/- {cell['ci95']:.3f}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.pipeline import FileSetSource, IngestPipeline, StreamingCoalesce
    from repro.util.timeutil import format_duration, format_timestamp

    # The same staged pipeline the batch study rides, with the streaming
    # coalescer as the Coalesce stage: records stream through the k-way
    # time merge (which preserves each node file's per-GPU order), alarms
    # fire the moment an open run crosses the threshold, and
    # keep_closed=False keeps memory O(open runs).
    def _print_alarm(alarm) -> None:
        print(
            f"ALARM {format_timestamp(alarm.start_time)} {alarm.node_id} "
            f"{alarm.pci_bus} XID {alarm.xid}: error open for "
            f"{format_duration(alarm.open_persistence)} "
            f"({alarm.n_raw:,} duplicate lines so far)"
        )

    pipeline = IngestPipeline(
        FileSetSource(args.logs),
        coalesce=StreamingCoalesce(
            alarm_after_seconds=args.alarm_minutes * 60.0,
            keep_closed=False,
            on_alarm=_print_alarm,
            # A watched directory can legitimately regress in time (clock
            # reset, a demo/emitter re-run appending a fresh window): the
            # live watchdog restarts the affected run instead of dying.
            time_regression="restart",
        ),
    )
    result = pipeline.run()
    print(
        f"stream complete: {result.n_errors:,} coalesced errors, "
        f"{len(result.alarms)} persistence alarms"
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json as _json

    from repro.store import EventStore, Query, StoreError

    try:
        if args.store_command == "build":
            return _cmd_store_build(args)
        if args.store_command == "stats":
            stats = EventStore.open(args.store_dir).stats()
            if args.json:
                print(_json.dumps(stats, indent=2, sort_keys=True))
            else:
                from repro.util.timeutil import format_timestamp

                print(f"store     : {stats['directory']}")
                print(f"schema    : {stats['schema']}")
                print(f"segments  : {stats['n_segments']}  "
                      f"({stats['n_bytes']:,} bytes)")
                print(f"records   : {stats['n_records']:,}")
                print(f"nodes     : {stats['n_nodes']}  "
                      f"gpus: {stats['n_serials']}")
                if stats["time_min"] is not None:
                    print(f"window    : {format_timestamp(stats['time_min'])} "
                          f"-> {format_timestamp(stats['time_max'])}")
                print(f"hash      : {stats['content_hash']}")
                counts = ", ".join(f"{x}:{c:,}" for x, c in
                                   stats["counts_by_xid"].items())
                print(f"xid counts: {counts}")
            return 0
        if args.store_command == "query":
            return _cmd_store_query(args)
        if args.store_command == "compact":
            from repro.store.store import DEFAULT_COMPACT_THRESHOLD

            store = EventStore.open(args.store_dir)
            threshold = (DEFAULT_COMPACT_THRESHOLD if args.threshold is None
                         else args.threshold)
            merged = store.compact(threshold=threshold)
            print(f"compacted {merged} segments away; store now holds "
                  f"{store.n_segments} segment(s), {store.n_records:,} records")
            return 0
    except StoreError as error:
        print(f"error: {error}")
        return 2
    return 2


def _cmd_store_build(args: argparse.Namespace) -> int:
    from repro.faults import AMPERE_CALIBRATION
    from repro.pipeline import FileSetSource
    from repro.store import DEFAULT_SEGMENT_RECORDS, EventStore, StoreError

    logs_dir = args.dataset / "logs" if (args.dataset / "logs").is_dir() else args.dataset
    if not logs_dir.is_dir():
        print(f"error: {logs_dir} is not a directory")
        return 2
    if EventStore.exists(args.store_dir) and EventStore.open(args.store_dir).n_records:
        print(f"error: store at {args.store_dir} is already built "
              "(query it, or choose a new directory)")
        return 2
    meta = {
        "scale": args.scale,
        "seed": args.seed,
        "window_hours": AMPERE_CALIBRATION.window_days * 24.0 * args.scale,
        "n_nodes": AMPERE_CALIBRATION.reference_node_count,
        "dataset": str(args.dataset),
    }
    try:
        store = EventStore.open_or_create(args.store_dir, meta=meta)
        segments = store.ingest(
            FileSetSource(logs_dir),
            workers=max(1, args.workers),
            segment_records=args.segment_records or DEFAULT_SEGMENT_RECORDS,
        )
    except StoreError as error:
        print(f"error: {error}")
        return 2
    print(f"ingested {store.n_records:,} records into {len(segments)} "
          f"segment(s) under {args.store_dir} "
          f"(content hash {store.content_hash()})")
    return 0


def _parse_query_args(args: argparse.Namespace):
    from repro.store import Query
    from repro.util.timeutil import parse_timestamp

    def _moment(text: Optional[str]) -> Optional[float]:
        if text is None:
            return None
        try:
            return float(text)
        except ValueError:
            return parse_timestamp(text)

    def _split(text: Optional[str]) -> Optional[List[str]]:
        if text is None:
            return None
        return [part.strip() for part in text.split(",") if part.strip()]

    since, until = _moment(args.since), _moment(args.until)
    xids = _split(args.xids)
    return Query(
        time_range=(since, until) if (since is not None or until is not None)
        else None,
        xids=[int(x) for x in xids] if xids else None,
        nodes=_split(args.nodes),
        serials=_split(args.serials),
    )


def _cmd_store_query(args: argparse.Namespace) -> int:
    from repro.store import EventStore
    from repro.util.timeutil import format_timestamp

    store = EventStore.open(args.store_dir)
    query = _parse_query_args(args)
    candidates, skipped = store.plan(query)
    if args.count:
        print(store.count(query))
        print(f"({len(candidates)} segment(s) read, {skipped} pruned by "
              "zone maps)", file=sys.stderr)
        return 0
    printed = 0
    for record in store.query(query):
        pid = "-" if record.pid is None else str(record.pid)
        print(f"{format_timestamp(record.time)}\t{record.node_id}\t"
              f"{record.pci_bus}\t{record.xid}\t{pid}\t{record.message}")
        printed += 1
        if args.limit is not None and printed >= args.limit:
            break
    print(f"({printed} record(s); {len(candidates)} segment(s) read, "
          f"{skipped} pruned by zone maps)", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.fleet import (
        FleetHealthService,
        FleetServiceConfig,
        JsonLinesSink,
        LiveLogEmitter,
        StdoutSink,
    )

    if args.speedup is not None and args.speedup <= 0:
        print("error: --speedup must be positive")
        return 2
    if args.alarm_minutes <= 0:
        print("error: --alarm-minutes must be positive")
        return 2

    risk_scorer = None
    if args.trained_risk:
        from repro.fleet.risk import fit_risk_model, predictor_scorer

        print("fitting persistence-risk model on a synthesized window...")
        risk_scorer = predictor_scorer(fit_risk_model(seed=args.seed))

    sinks = [StdoutSink()]
    jsonl_sink = None
    if args.alerts_jsonl is not None:
        jsonl_sink = JsonLinesSink(args.alerts_jsonl)
        sinks.append(jsonl_sink)

    emitter = None
    if args.simulate:
        from repro.fleet.demo import demo_trace

        trace = demo_trace(seed=args.seed)
        args.logs.mkdir(parents=True, exist_ok=True)
        emitter = LiveLogEmitter.from_trace(
            trace, args.logs, seed=args.seed, speedup=args.speedup
        )
        print(
            f"simulating {len(trace):,} injected events over "
            f"{trace.window_seconds / 86_400.0:.1f} days on "
            f"{len(trace.node_ids)} nodes -> {args.logs}"
        )
    elif not args.logs.is_dir():
        print(f"error: {args.logs} is not a directory (use --simulate to create one)")
        return 2

    service = FleetHealthService(
        FleetServiceConfig(
            logs_dir=args.logs,
            alarm_after_seconds=args.alarm_minutes * 60.0,
            metrics_port=args.port,
            store_dir=args.store,
        ),
        sinks=sinks,
        risk_scorer=risk_scorer,
    )
    service.start()
    if service.store is not None and service.records_replayed:
        print(f"warm start: replayed {service.records_replayed:,} records "
              f"from {args.store}; tailing new appends only")
    print(f"metrics: {service.metrics_url}")
    try:
        if emitter is not None:
            emitter.start()
            emitter.join()
            service.wait_idle(timeout=60.0)
            if args.duration:
                _time.sleep(args.duration)
        elif args.duration is not None:
            _time.sleep(args.duration)
        else:
            print("following logs; Ctrl-C to stop")
            while True:
                _time.sleep(3600.0)
    except KeyboardInterrupt:
        print("stopping...")
    finally:
        if emitter is not None:
            emitter.stop()
        metrics_text = service.render_metrics()
        service.stop()  # drains the queue and flushes the store writer
        summary = service.summary()
        if jsonl_sink is not None:
            jsonl_sink.close()

    print()
    print("session summary:")
    for key in ("records_ingested", "tracked_gpus", "error_onsets",
                "open_runs", "persistence_alarms", "alerts_fired"):
        print(f"  {key}: {summary[key]}")
    if summary.get("store"):
        store_state = summary["store"]
        print(f"  store: {store_state['n_records']:,} records in "
              f"{store_state['n_segments']} segment(s) at "
              f"{store_state['directory']}")
    if summary["alerts_by_rule"]:
        for rule, count in summary["alerts_by_rule"].items():
            print(f"    {rule}: {count}")
    print()
    print("final /metrics scrape (excerpt):")
    for line in metrics_text.splitlines():
        if line.startswith(("repro_fleet_error_onsets_total",
                            "repro_fleet_alerts_total",
                            "repro_fleet_open_runs",
                            "repro_fleet_records_ingested_total")):
            print(f"  {line}")
    return 0


def _replay_record_source(args: argparse.Namespace):
    """Resolve ``--store``/``--logs`` into ``(factory, label, fingerprint)``.

    The factory yields a *fresh* time-ordered record stream per call
    (the backtest reads the history twice).  The fingerprint identifies
    the content under test — store content hash plus the pushdown query,
    or the log file set — and deliberately excludes worker counts and
    replay speed, which must not perturb the scorecard's run id.
    """
    import hashlib

    from repro.pipeline import FileSetSource
    from repro.pipeline.extract import iter_source_records
    from repro.results import config_digest
    from repro.store import EventStore, ReplayCursor

    if (args.store is None) == (args.logs is None):
        raise ValueError("pass exactly one of --store DIR or --logs DIR")
    if args.workers < 1:
        raise ValueError("--workers must be >= 1")
    query = _parse_query_args(args)
    if args.store is not None:
        store = EventStore.open(args.store)
        window_seconds = args.window_hours * 3_600.0

        def factory():
            return ReplayCursor(
                store, query=query, window_seconds=window_seconds
            ).iter_records()

        fingerprint = store.content_hash()
        if not query.unconstrained:
            fingerprint += "+" + config_digest(query.to_dict())
        return factory, f"store:{args.store}", fingerprint

    if not args.logs.is_dir():
        raise ValueError(f"{args.logs} is not a directory")
    workers = args.workers
    source = FileSetSource(args.logs)
    if not source.paths:
        raise ValueError(f"{args.logs} holds no log files")
    names = hashlib.sha256(
        "\n".join(sorted(p.name for p in source.paths)).encode()
    ).hexdigest()[:12]

    def factory():
        stream = iter_source_records(FileSetSource(args.logs), workers=workers)
        if query.unconstrained:
            return stream
        return (r for r in stream if query.matches_record(r))

    return factory, f"logs:{args.logs}", f"files-{names}"


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.replay_command == "demo":
        return _cmd_replay_demo(args)
    try:
        factory, label, fingerprint = _replay_record_source(args)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    if args.speed is not None and args.speed <= 0:
        print("error: --speed must be positive")
        return 2
    if args.replay_command == "backtest":
        return _cmd_replay_backtest(args, factory, label, fingerprint)
    if args.replay_command == "run":
        return _cmd_replay_run(args, factory)
    return 2


def _cmd_replay_demo(args: argparse.Namespace) -> int:
    from repro.fleet import LiveLogEmitter
    from repro.fleet.demo import demo_trace

    trace = demo_trace(seed=args.seed)
    emitter = LiveLogEmitter.from_trace(
        trace, args.logs_dir, seed=args.seed, speedup=None
    )
    lines = emitter.run()
    print(f"wrote {lines:,} log lines ({len(trace):,} events over "
          f"{trace.window_seconds / 86_400.0:.1f} days, "
          f"{len(trace.node_ids)} nodes) under {args.logs_dir}")
    return 0


def _cmd_replay_backtest(
    args: argparse.Namespace, factory, label: str, fingerprint: str
) -> int:
    from repro.replay import BacktestConfig, ReplayPacer, run_backtest

    config = BacktestConfig(horizon_seconds=args.horizon_minutes * 60.0)
    result = run_backtest(
        factory,
        config,
        pacer=ReplayPacer(args.speed),
        source_label=label,
        source_fingerprint=fingerprint,
    )
    if args.output_dir is not None:
        for path in _write_result_dir(result, args.output_dir):
            print(f"wrote {path}", file=sys.stderr)
    if args.format == "json":
        print(result.render_json())
    else:
        print(result.render_text())
    return 0


def _cmd_replay_run(args: argparse.Namespace, factory) -> int:
    from repro.fleet import JsonLinesSink, StdoutSink
    from repro.replay import ReplayEngine, ReplayPacer

    sinks = [StdoutSink()]
    jsonl_sink = None
    if args.alerts_jsonl is not None:
        jsonl_sink = JsonLinesSink(args.alerts_jsonl)
        sinks.append(jsonl_sink)
    engine = ReplayEngine(pacer=ReplayPacer(args.speed), sinks=sinks)
    try:
        outcome = engine.replay(factory())
    except KeyboardInterrupt:
        print("interrupted")
        return 130
    finally:
        if jsonl_sink is not None:
            jsonl_sink.close()
    speed = ("flat-out" if outcome.wall_seconds <= 0
             else f"{outcome.speedup:,.0f}x")
    print(f"replayed {outcome.records:,} records "
          f"({outcome.span_seconds / 86_400.0:.2f} days of history) "
          f"in {outcome.wall_seconds:.2f} s [{speed}]: "
          f"{outcome.onsets:,} onsets, {outcome.alarms} alarms, "
          f"{len(outcome.alerts)} alerts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
