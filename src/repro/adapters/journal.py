"""Adapter: ``journalctl -o short-iso`` exports.

Shape::

    2024-05-01T12:00:00+0000 gpub042 kernel: NVRM: Xid (PCI:0000:C7:00): 119, pid=..., msg

Identical to the native format except the timestamp carries a UTC offset
and no sub-second digits; the offset is honoured and times are returned in
the analysis timeline relative to a caller-supplied epoch.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Iterable, Iterator, List, Optional

from repro.core.parsing import RawXidRecord
from repro.util.timeutil import EPOCH

_JOURNAL_PATTERN = re.compile(
    r"^(?P<ts>\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(?:[+-]\d{4}|Z)?)\s+"
    r"(?P<host>\S+)\s+kernel:\s+"
    r"NVRM:\s+Xid\s+\(PCI:(?P<pci>[0-9A-Fa-f:]+)\):\s+"
    r"(?P<xid>\d+),\s+pid=(?P<pid>'[^']*'|\S+?),\s+"
    r"(?P<msg>.*)$"
)


def _parse_iso_with_offset(text: str, epoch: _dt.datetime) -> float:
    if text.endswith("Z"):
        text = text[:-1] + "+0000"
    if re.search(r"[+-]\d{4}$", text):
        moment = _dt.datetime.strptime(text, "%Y-%m-%dT%H:%M:%S%z")
        moment = moment.astimezone(_dt.timezone.utc).replace(tzinfo=None)
    else:
        moment = _dt.datetime.strptime(text, "%Y-%m-%dT%H:%M:%S")
    return (moment - epoch).total_seconds()


def parse_journal_line(
    line: str, *, epoch: _dt.datetime = EPOCH
) -> Optional[RawXidRecord]:
    if "NVRM: Xid" not in line:
        return None
    match = _JOURNAL_PATTERN.match(line.strip())
    if match is None:
        return None
    pid_text = match["pid"]
    return RawXidRecord(
        time=_parse_iso_with_offset(match["ts"], epoch),
        node_id=match["host"],
        pci_bus=match["pci"],
        xid=int(match["xid"]),
        message=match["msg"],
        pid=int(pid_text) if pid_text.isdigit() else None,
    )


def parse_journal_lines(
    lines: Iterable[str], *, epoch: _dt.datetime = EPOCH
) -> List[RawXidRecord]:
    return list(iter_parse(lines, epoch=epoch))


def iter_parse(
    lines: Iterable[str], *, epoch: _dt.datetime = EPOCH
) -> Iterator[RawXidRecord]:
    for line in lines:
        record = parse_journal_line(line, epoch=epoch)
        if record is not None:
            yield record
