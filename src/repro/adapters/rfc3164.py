"""Adapter: classic RFC-3164 syslog (``May  1 12:00:00 host kernel: ...``).

RFC-3164 timestamps lack the year; callers supply it (plus the analysis
epoch), and the adapter handles December-to-January wrap within one dump by
bumping the year whenever time runs backwards by more than half a year.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Iterable, Iterator, List, Optional

from repro.core.parsing import RawXidRecord
from repro.util.timeutil import EPOCH

_RFC3164_PATTERN = re.compile(
    r"^(?P<mon>[A-Z][a-z]{2})\s+(?P<day>\d{1,2})\s+"
    r"(?P<time>\d{2}:\d{2}:\d{2})\s+"
    r"(?P<host>\S+)\s+kernel:\s+"
    r"NVRM:\s+Xid\s+\(PCI:(?P<pci>[0-9A-Fa-f:]+)\):\s+"
    r"(?P<xid>\d+),\s+pid=(?P<pid>'[^']*'|\S+?),\s+"
    r"(?P<msg>.*)$"
)

_MONTHS = {
    "Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
    "Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
}


def parse_rfc3164_line(
    line: str, *, year: int, epoch: _dt.datetime = EPOCH
) -> Optional[RawXidRecord]:
    if "NVRM: Xid" not in line:
        return None
    match = _RFC3164_PATTERN.match(line.strip())
    if match is None:
        return None
    month = _MONTHS.get(match["mon"])
    if month is None:
        return None
    hh, mm, ss = (int(x) for x in match["time"].split(":"))
    moment = _dt.datetime(year, month, int(match["day"]), hh, mm, ss)
    pid_text = match["pid"]
    return RawXidRecord(
        time=(moment - epoch).total_seconds(),
        node_id=match["host"],
        pci_bus=match["pci"],
        xid=int(match["xid"]),
        message=match["msg"],
        pid=int(pid_text) if pid_text.isdigit() else None,
    )


def parse_rfc3164_lines(
    lines: Iterable[str], *, year: int, epoch: _dt.datetime = EPOCH
) -> List[RawXidRecord]:
    """Parse a dump, advancing the year across a December->January wrap."""
    return list(iter_parse(lines, year=year, epoch=epoch))


def iter_parse(
    lines: Iterable[str], *, year: int, epoch: _dt.datetime = EPOCH
) -> Iterator[RawXidRecord]:
    current_year = year
    previous_time: float | None = None
    half_year = 183 * 86_400.0
    for line in lines:
        record = parse_rfc3164_line(line, year=current_year, epoch=epoch)
        if record is None:
            continue
        if previous_time is not None and record.time < previous_time - half_year:
            current_year += 1
            record = parse_rfc3164_line(line, year=current_year, epoch=epoch)
            assert record is not None
        previous_time = record.time
        yield record
