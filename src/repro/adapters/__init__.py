"""Input adapters for real-world log formats.

The pipeline's native line shape is ISO-timestamped syslog; operators who
want to run this toolkit on their own clusters usually have one of:

* ``dmesg``/kernel ring buffer dumps — ``[12345.678] NVRM: Xid ...``;
* ``journalctl -o short-iso`` exports — ``2024-05-01T12:00:00+0000 host kernel: ...``;
* classic RFC-3164 syslog — ``May  1 12:00:00 host kernel: ...``.

Each adapter normalizes its format into :class:`repro.core.parsing.RawXidRecord`
so everything downstream (coalescing, statistics, propagation, job impact)
runs unchanged on production data.
"""

from repro.adapters.dmesg import parse_dmesg_line, parse_dmesg_lines
from repro.adapters.journal import parse_journal_line, parse_journal_lines
from repro.adapters.rfc3164 import parse_rfc3164_line, parse_rfc3164_lines

__all__ = [
    "parse_dmesg_line",
    "parse_dmesg_lines",
    "parse_journal_line",
    "parse_journal_lines",
    "parse_rfc3164_line",
    "parse_rfc3164_lines",
]
