"""Adapter: kernel ring-buffer (``dmesg``) dumps.

Shape::

    [  123.456789] NVRM: Xid (PCI:0000:C7:00): 119, pid=8821, Timeout ...

Timestamps are seconds since boot; callers supply the boot epoch (seconds
in the analysis timeline at which the node booted) and the hostname —
``dmesg`` output carries neither.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Optional

from repro.core.parsing import RawXidRecord

_DMESG_PATTERN = re.compile(
    r"^\[\s*(?P<uptime>\d+\.\d+)\]\s+"
    r"NVRM:\s+Xid\s+\(PCI:(?P<pci>[0-9A-Fa-f:]+)\):\s+"
    r"(?P<xid>\d+),\s+pid=(?P<pid>'[^']*'|\S+?),\s+"
    r"(?P<msg>.*)$"
)


def parse_dmesg_line(
    line: str, *, node_id: str, boot_epoch: float = 0.0
) -> Optional[RawXidRecord]:
    """Parse one dmesg line; None when it is not an XID record."""
    if "NVRM: Xid" not in line:
        return None
    match = _DMESG_PATTERN.match(line.strip())
    if match is None:
        return None
    pid_text = match["pid"]
    return RawXidRecord(
        time=boot_epoch + float(match["uptime"]),
        node_id=node_id,
        pci_bus=match["pci"],
        xid=int(match["xid"]),
        message=match["msg"],
        pid=int(pid_text) if pid_text.isdigit() else None,
    )


def parse_dmesg_lines(
    lines: Iterable[str], *, node_id: str, boot_epoch: float = 0.0
) -> List[RawXidRecord]:
    """Parse a whole dmesg dump from one node."""
    return list(iter_parse(lines, node_id=node_id, boot_epoch=boot_epoch))


def iter_parse(
    lines: Iterable[str], *, node_id: str, boot_epoch: float = 0.0
) -> Iterator[RawXidRecord]:
    for line in lines:
        record = parse_dmesg_line(line, node_id=node_id, boot_epoch=boot_epoch)
        if record is not None:
            yield record
