"""Experiment registry: every paper table/figure as a named, runnable unit.

``EXPERIMENTS`` maps experiment IDs (``table1``, ``fig5``, ...) to runners
that take an :class:`ExperimentContext` (a prepared
:class:`~repro.core.pipeline.DeltaStudy` plus the run's scale/seed/workers)
and return a structured
:class:`~repro.results.artifact.ExperimentResult` — named metrics with
paper tolerance bands, typed tables, and a :class:`RunManifest` recording
provenance.  The CLI exposes them as ``repro-delta experiment <id>`` (text
or JSON) and ``repro-delta verify`` gates the tolerance-annotated subset;
DESIGN.md's experiment index is the prose version of this table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pipeline import DeltaStudy
from repro.results.artifact import (
    ExperimentResult,
    Metric,
    ResultTable,
    RunManifest,
    config_digest,
)

#: The scale the default CLI study runs at; Section 6's H100 dataset has no
#: scale knob of its own, so runners normalize the caller's scale against
#: this reference (``scale == DEFAULT_STUDY_SCALE`` maps to the full H100
#: window).
DEFAULT_STUDY_SCALE = 0.05


@dataclass(frozen=True)
class ExperimentContext:
    """Everything a runner needs: the study plus run provenance."""

    study: DeltaStudy
    scale: float = 1.0
    seed: int = 7
    workers: int = 1


@dataclass(frozen=True)
class Experiment:
    identifier: str
    paper_artifact: str
    description: str
    runner: Callable[[ExperimentContext], ExperimentResult]
    needs_jobs: bool = True
    #: Whether the experiment carries tolerance-annotated metrics that
    #: ``repro-delta verify`` should gate on.
    verified: bool = False


def _table1(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import table1_result
    from repro.faults.calibration import AMPERE_CALIBRATION

    return table1_result(
        ctx.study.error_statistics(), AMPERE_CALIBRATION, scale=ctx.scale
    )


def _table2(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import table2_result

    return table2_result(ctx.study.job_impact(), scale=ctx.scale)


def _table3(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import table3_result

    return table3_result(ctx.study.job_impact())


def _fig5(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import figure5_result

    return figure5_result(ctx.study.propagation())


def _fig6(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import figure6_result

    return figure6_result(ctx.study.propagation(), scale=ctx.scale)


def _fig7(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import figure7_result

    return figure7_result(ctx.study.propagation())


def _fig9(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import figure9_result

    return figure9_result(
        ctx.study.job_impact(), ctx.study.availability(), scale=ctx.scale
    )


def _overprovision(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.overprovision import OverprovisionConfig, OverprovisionSimulator
    from repro.core.report import overprovision_result

    # More window means more Monte-Carlo budget; the floor of 3 trials keeps
    # the default-scale run identical to the historical output.
    config = OverprovisionConfig(
        n_trials=max(3, round(3 * ctx.scale / DEFAULT_STUDY_SCALE)),
        seed=ctx.seed,
    )
    simulator = OverprovisionSimulator(config)
    result = overprovision_result(
        simulator.sweep(recovery_minutes=(5.0, 10.0, 20.0, 40.0),
                        availabilities=(0.995, 0.9987))
    )
    return result.with_manifest(
        RunManifest(run_id="", config_hashes={"overprovision": config_digest(config)})
    )


def _counterfactual(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import counterfactual_result

    return counterfactual_result(ctx.study.counterfactual().analyze())


def _spatial(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.report import spatial_result
    from repro.core.spatial import SpatialAnalyzer

    # GPU population from the study's inventory (falls back to the paper's
    # 848 Ampere GPUs when the study was built without one).
    n_gpus = ctx.study.n_gpus if ctx.study.n_gpus is not None else 848
    return spatial_result(
        SpatialAnalyzer(ctx.study.error_statistics().errors, n_gpus=n_gpus)
    )


def _h100(ctx: ExperimentContext) -> ExperimentResult:
    # Section 6 has its own dataset (the GH200 partition after Aug 2024);
    # the passed Ampere study is intentionally unused beyond provenance.
    from repro.core.h100 import H100Analyzer
    from repro.core.report import _metric
    from repro.datasets import synthesize_h100

    h100_scale = ctx.scale / DEFAULT_STUDY_SCALE
    h100_study = DeltaStudy.from_dataset(
        synthesize_h100(scale=h100_scale, seed=ctx.seed)
    )
    report = H100Analyzer(h100_study.error_statistics()).report()
    counts_table = ResultTable(
        title="Per-XID counts",
        headers=("XID", "Count"),
        rows=tuple((int(xid), int(count))
                   for xid, count in sorted(report.counts.items())),
    )
    metrics = (
        _metric("mtbe_node_hours", float(report.mtbe_node_hours),
                "sec6.mtbe_node_hours", unit="node-hours"),
        _metric("xid136_count", int(report.xid136_count),
                "sec6.xid136_count", scale=h100_scale),
        _metric("has_remap_anomaly", bool(report.has_remap_anomaly),
                "sec6.has_remap_anomaly"),
        _metric("rre_count", int(report.rre_count)),
        _metric("dbe_count", int(report.dbe_count)),
        _metric("rrf_count", int(report.rrf_count)),
    )
    return ExperimentResult(
        experiment_id="sec6",
        paper_artifact="Section 6",
        title="Section 6 - emerging H100 errors",
        renderer="h100",
        metrics=metrics,
        tables=(counts_table,),
    )


def _sim_result(
    identifier: str,
    paper_artifact: str,
    title: str,
    axis: str,
    rows: "List[Tuple[str, dict]]",
    hashes: Dict[str, str],
) -> ExperimentResult:
    table = ResultTable(
        title=title,
        headers=(axis, "goodput", "ettr_hours", "wasted_gpu_hours",
                 "completed_fraction"),
        rows=tuple(
            (
                str(label),
                float(aggregate["goodput"]["mean"]),
                float(aggregate["ettr_hours"]["mean"]),
                float(aggregate["wasted_gpu_hours"]["mean"]),
                float(aggregate["completed_fraction"]),
            )
            for label, aggregate in rows
        ),
    )
    metrics = tuple(
        Metric(name=f"goodput.{label}", value=float(aggregate["goodput"]["mean"]))
        for label, aggregate in rows
    )
    return ExperimentResult(
        experiment_id=identifier,
        paper_artifact=paper_artifact,
        title=title,
        renderer="sim_table",
        metrics=metrics,
        tables=(table,),
    ).with_manifest(RunManifest(run_id="", config_hashes=hashes))


def _sim_policies(ctx: ExperimentContext) -> ExperimentResult:
    from repro.sim import SweepConfig, run_sweep

    rows = []
    hashes: Dict[str, str] = {}
    for policy in ("none", "ckpt", "spare:4", "elastic"):
        config = SweepConfig(scenario="a100-256", policy=policy, replicas=3,
                             seed=ctx.seed, n_gpus=128, useful_hours=24.0)
        result = run_sweep(config)
        hashes[f"sweep.{policy}"] = result.config_hash
        rows.append((policy, result.aggregate))
    return _sim_result(
        "sim.policies", "Section 5 (what-if)",
        "What-if: recovery policies, 128-GPU day-long job, Ampere fleet",
        "policy", rows, hashes,
    )


def _sim_fleets(ctx: ExperimentContext) -> ExperimentResult:
    from repro.sim import SweepConfig, run_sweep

    rows = []
    hashes: Dict[str, str] = {}
    for scenario in ("a100-256", "h100-256", "a100-512-no-xid79"):
        config = SweepConfig(scenario=scenario, policy="spare:2", replicas=3,
                             seed=ctx.seed, n_gpus=128, useful_hours=24.0)
        result = run_sweep(config)
        hashes[f"sweep.{scenario}"] = result.config_hash
        rows.append((scenario, result.aggregate))
    return _sim_result(
        "sim.fleets", "Section 5.5/6 (what-if)",
        "What-if: fleets under hot-spare recovery (128 GPUs, 24 h useful)",
        "scenario", rows, hashes,
    )


def _pipeline_parity(ctx: ExperimentContext) -> ExperimentResult:
    """Methodology check: batch and streaming Coalesce stages agree.

    Runs the study's extracted records (sorted into the time order the
    extraction front-end's k-way merge produces for on-disk datasets)
    through both Coalesce implementations and compares the resulting
    error sequences and Table-1 headline statistics.
    """
    from repro.core.mtbe import ErrorStatistics
    from repro.core.report import _metric
    from repro.pipeline.stages import StreamingCoalesce, VectorizedCoalesce

    study = ctx.study
    records = sorted(
        study.records, key=lambda r: (r.time, r.node_id, r.pci_bus, r.xid)
    )
    batch = VectorizedCoalesce(study.coalesce_config).run(records)
    stream = StreamingCoalesce(study.coalesce_config).run(records)
    identical = [
        (e.time, e.gpu_key, e.xid, round(e.persistence, 9), e.n_raw)
        for e in batch.errors
    ] == [
        (e.time, e.gpu_key, e.xid, round(e.persistence, 9), e.n_raw)
        for e in stream.errors
    ]
    stats = {
        name: ErrorStatistics(out.errors, study.window_hours, study.n_nodes)
        for name, out in (("batch", batch), ("streaming", stream))
    }
    metrics = (
        _metric("raw_records", len(records)),
        _metric("batch_errors", int(stats["batch"].total_count)),
        _metric("batch_mtbe_node_hours",
                float(stats["batch"].overall_mtbe_node_hours())),
        _metric("streaming_errors", int(stats["streaming"].total_count)),
        _metric("streaming_mtbe_node_hours",
                float(stats["streaming"].overall_mtbe_node_hours())),
        _metric("sequences_identical", bool(identical),
                "pipeline.parity.sequences_identical"),
        _metric("streaming_alarms", len(stream.alarms)),
    )
    return ExperimentResult(
        experiment_id="pipeline.parity",
        paper_artifact="Section 3.2 (methodology)",
        title="Unified pipeline: Coalesce-stage parity (Algorithm 1)",
        renderer="pipeline_parity",
        metrics=metrics,
    )


def _generations(ctx: ExperimentContext) -> ExperimentResult:
    from repro.core.comparison import GenerationComparison
    from repro.core.report import generations_result

    return generations_result(
        GenerationComparison(ctx.study.error_statistics(), ctx.study.propagation())
    )


EXPERIMENTS: Dict[str, Experiment] = {
    e.identifier: e
    for e in (
        Experiment("table1", "Table 1",
                   "per-XID counts, MTBE, persistence", _table1,
                   needs_jobs=False, verified=True),
        Experiment("table2", "Table 2",
                   "job-failure probability per XID", _table2, verified=True),
        Experiment("table3", "Table 3",
                   "job distribution and elapsed statistics", _table3,
                   verified=True),
        Experiment("fig5", "Figure 5",
                   "intra-GPU hardware propagation", _fig5,
                   needs_jobs=False, verified=True),
        Experiment("fig6", "Figure 6",
                   "NVLink propagation and involvement", _fig6,
                   needs_jobs=False, verified=True),
        Experiment("fig7", "Figure 7",
                   "DBE recovery tree", _fig7, needs_jobs=False, verified=True),
        Experiment("fig9", "Figure 9",
                   "job impact, errors-vs-duration, unavailability", _fig9,
                   verified=True),
        Experiment("sec5.4", "Section 5.4",
                   "overprovisioning projection", _overprovision,
                   needs_jobs=False, verified=True),
        Experiment("sec5.5", "Section 5.5",
                   "counterfactual improvements", _counterfactual,
                   needs_jobs=False, verified=True),
        Experiment("sec4.2iii", "Section 4.2 (iii)",
                   "spatial concentration / offenders", _spatial,
                   needs_jobs=False, verified=True),
        Experiment("sec6", "Section 6",
                   "emerging H100 errors (own dataset)", _h100,
                   needs_jobs=False, verified=True),
        Experiment("sec7", "Section 7",
                   "generational comparison", _generations, needs_jobs=False),
        Experiment("sim.policies", "Section 5 (what-if)",
                   "recovery-policy sweep on the what-if engine",
                   _sim_policies, needs_jobs=False),
        Experiment("sim.fleets", "Section 5.5/6 (what-if)",
                   "A100 vs H100 vs no-Xid-79 fleets under hot spares",
                   _sim_fleets, needs_jobs=False),
        Experiment("pipeline.parity", "Section 3.2 (methodology)",
                   "batch vs streaming Algorithm-1 stage identity",
                   _pipeline_parity, needs_jobs=False, verified=True),
    )
}


def _build_manifest(
    identifier: str,
    ctx: ExperimentContext,
    extra_hashes: Dict[str, str],
    run_digest: Optional[str] = None,
) -> RunManifest:
    from repro import __version__

    study = ctx.study
    hashes = {"coalesce": config_digest(study.coalesce_config)}
    # Session-driven runs stamp the RunConfig digest: the manifest then
    # names the exact wiring (scale/seed/dataset/store) that produced it.
    if run_digest is not None:
        hashes["run"] = run_digest
    # Store-backed studies carry the store's content hash: the manifest
    # then names the exact bytes Stage I read, not just a directory.
    store_hash = getattr(study, "store_hash", None)
    if store_hash is not None:
        hashes["store"] = store_hash
    hashes.update(extra_hashes)
    return RunManifest(
        run_id=f"{identifier}@scale{ctx.scale:g}-seed{ctx.seed}",
        seed=ctx.seed,
        scale=ctx.scale,
        workers=ctx.workers,
        window_hours=float(study.window_hours),
        n_nodes=int(study.n_nodes),
        n_gpus=int(study.n_gpus) if study.n_gpus is not None else None,
        engine=study.engine,
        dataset=getattr(study, "dataset_label", None),
        config_hashes=hashes,
        package_version=__version__,
    )


def run_experiment(
    identifier: str,
    study: DeltaStudy,
    *,
    scale: float = 1.0,
    seed: int = 7,
    workers: int = 1,
    run_digest: Optional[str] = None,
) -> ExperimentResult:
    """Run one registered experiment against a prepared study.

    Returns the structured result with its :class:`RunManifest` attached;
    call :meth:`ExperimentResult.render_text` for the paper-style report.
    ``run_digest`` (a :meth:`RunConfig.digest`) lands in the manifest's
    ``config_hashes["run"]`` when the session layer drives the run.
    """
    experiment = EXPERIMENTS.get(identifier)
    if experiment is None:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {identifier!r}; known: {known}")
    if experiment.needs_jobs and study.slurm_db is None:
        raise ValueError(f"experiment {identifier!r} needs a Slurm database")
    ctx = ExperimentContext(study=study, scale=scale, seed=seed, workers=workers)
    result = experiment.runner(ctx)
    # Runners may attach a partial manifest carrying extra config hashes
    # (sweep digests, simulator configs); fold those into the full one.
    extra = dict(result.manifest.config_hashes) if result.manifest else {}
    return result.with_manifest(
        _build_manifest(identifier, ctx, extra, run_digest=run_digest)
    )


def list_experiments() -> List[Experiment]:
    return sorted(EXPERIMENTS.values(), key=lambda e: e.identifier)


def verified_experiments() -> List[Experiment]:
    """The tolerance-annotated subset ``repro-delta verify`` gates on."""
    return [e for e in list_experiments() if e.verified]
