"""Experiment registry: every paper table/figure as a named, runnable unit.

``EXPERIMENTS`` maps experiment IDs (``table1``, ``fig5``, ...) to runners
that take a prepared :class:`~repro.core.pipeline.DeltaStudy` (plus scale)
and return rendered text.  The CLI exposes them as
``repro-delta experiment <id>``; DESIGN.md's experiment index is the prose
version of this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.pipeline import DeltaStudy


@dataclass(frozen=True)
class Experiment:
    identifier: str
    paper_artifact: str
    description: str
    runner: Callable[[DeltaStudy, float], str]
    needs_jobs: bool = True


def _table1(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_table1
    from repro.faults.calibration import AMPERE_CALIBRATION

    return render_table1(study.error_statistics(), AMPERE_CALIBRATION, scale=scale)


def _table2(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_table2

    return render_table2(study.job_impact())


def _table3(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_table3

    return render_table3(study.job_impact())


def _fig5(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_figure5

    return render_figure5(study.propagation())


def _fig6(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_figure6

    return render_figure6(study.propagation())


def _fig7(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_figure7

    return render_figure7(study.propagation())


def _fig9(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_figure9

    return render_figure9(study.job_impact(), study.availability())


def _overprovision(study: DeltaStudy, scale: float) -> str:
    from repro.core.overprovision import OverprovisionConfig, OverprovisionSimulator
    from repro.core.report import render_overprovision

    simulator = OverprovisionSimulator(OverprovisionConfig(n_trials=3))
    return render_overprovision(
        simulator.sweep(recovery_minutes=(5.0, 10.0, 20.0, 40.0),
                        availabilities=(0.995, 0.9987))
    )


def _counterfactual(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_counterfactual

    return render_counterfactual(study.counterfactual().analyze())


def _spatial(study: DeltaStudy, scale: float) -> str:
    from repro.core.report import render_spatial
    from repro.core.spatial import SpatialAnalyzer

    return render_spatial(SpatialAnalyzer(study.error_statistics().errors, n_gpus=848))


def _h100(study: DeltaStudy, scale: float) -> str:
    # Section 6 has its own dataset (the GH200 partition after Aug 2024);
    # the passed Ampere study is intentionally unused.
    from repro.core.h100 import H100Analyzer
    from repro.datasets import synthesize_h100

    h100_study = DeltaStudy.from_dataset(synthesize_h100(seed=7))
    report = H100Analyzer(h100_study.error_statistics()).report()
    return (
        "Section 6 - emerging H100 errors\n"
        f"  counts: {report.counts}\n"
        "          (paper: 18 MMU, 10 DBE, 5 RRF, 9 contained, 70 XID-136)\n"
        f"  MTBE  : {report.mtbe_node_hours:,.0f} node-hours (paper 4,114)\n"
        f"  DBE/RRF-without-RRE anomaly: {report.has_remap_anomaly}"
    )


def _sim_table(rows: "List[tuple[str, dict]]", axis: str) -> str:
    lines = [
        f"  {axis:<22} {'goodput':>9} {'ettr h':>8} {'wasted GPU-h':>13} {'done':>6}"
    ]
    for label, aggregate in rows:
        lines.append(
            f"  {label:<22} {aggregate['goodput']['mean']:>9.3f} "
            f"{aggregate['ettr_hours']['mean']:>8.2f} "
            f"{aggregate['wasted_gpu_hours']['mean']:>13.0f} "
            f"{aggregate['completed_fraction']:>6.2f}"
        )
    return "\n".join(lines)


def _sim_policies(study: DeltaStudy, scale: float) -> str:
    from repro.sim import SweepConfig, run_sweep

    rows = []
    for policy in ("none", "ckpt", "spare:4", "elastic"):
        result = run_sweep(
            SweepConfig(scenario="a100-256", policy=policy, replicas=3,
                        seed=7, n_gpus=128, useful_hours=24.0)
        )
        rows.append((policy, result.aggregate))
    return (
        "What-if: recovery policies, 128-GPU day-long job, Ampere fleet\n"
        + _sim_table(rows, "policy")
    )


def _sim_fleets(study: DeltaStudy, scale: float) -> str:
    from repro.sim import SweepConfig, run_sweep

    rows = []
    for scenario in ("a100-256", "h100-256", "a100-512-no-xid79"):
        result = run_sweep(
            SweepConfig(scenario=scenario, policy="spare:2", replicas=3,
                        seed=7, n_gpus=128, useful_hours=24.0)
        )
        rows.append((scenario, result.aggregate))
    return (
        "What-if: fleets under hot-spare recovery (128 GPUs, 24 h useful)\n"
        + _sim_table(rows, "scenario")
    )


def _pipeline_parity(study: DeltaStudy, scale: float) -> str:
    """Methodology check: batch and streaming Coalesce stages agree.

    Runs the study's extracted records (sorted into the time order the
    extraction front-end's k-way merge produces for on-disk datasets)
    through both Coalesce implementations and compares the resulting
    error sequences and Table-1 headline statistics.
    """
    from repro.core.mtbe import ErrorStatistics
    from repro.pipeline.stages import StreamingCoalesce, VectorizedCoalesce

    records = sorted(
        study.records, key=lambda r: (r.time, r.node_id, r.pci_bus, r.xid)
    )
    batch = VectorizedCoalesce(study.coalesce_config).run(records)
    stream = StreamingCoalesce(study.coalesce_config).run(records)
    identical = [
        (e.time, e.gpu_key, e.xid, round(e.persistence, 9), e.n_raw)
        for e in batch.errors
    ] == [
        (e.time, e.gpu_key, e.xid, round(e.persistence, 9), e.n_raw)
        for e in stream.errors
    ]
    stats = {
        name: ErrorStatistics(out.errors, study.window_hours, study.n_nodes)
        for name, out in (("batch", batch), ("streaming", stream))
    }
    lines = ["Unified pipeline: Coalesce-stage parity (Algorithm 1)"]
    lines.append(f"  raw records           : {len(records):,}")
    for name, s in stats.items():
        lines.append(
            f"  {name:<10} errors     : {s.total_count:,}  "
            f"(MTBE {s.overall_mtbe_node_hours():,.0f} node-hours)"
        )
    lines.append(f"  sequences identical   : {identical}")
    lines.append(f"  streaming alarms seen : {len(stream.alarms)}")
    return "\n".join(lines)


def _generations(study: DeltaStudy, scale: float) -> str:
    from repro.core.comparison import GenerationComparison
    from repro.core.report import render_generations

    return render_generations(
        GenerationComparison(study.error_statistics(), study.propagation())
    )


EXPERIMENTS: Dict[str, Experiment] = {
    e.identifier: e
    for e in (
        Experiment("table1", "Table 1",
                   "per-XID counts, MTBE, persistence", _table1, needs_jobs=False),
        Experiment("table2", "Table 2",
                   "job-failure probability per XID", _table2),
        Experiment("table3", "Table 3",
                   "job distribution and elapsed statistics", _table3),
        Experiment("fig5", "Figure 5",
                   "intra-GPU hardware propagation", _fig5, needs_jobs=False),
        Experiment("fig6", "Figure 6",
                   "NVLink propagation and involvement", _fig6, needs_jobs=False),
        Experiment("fig7", "Figure 7",
                   "DBE recovery tree", _fig7, needs_jobs=False),
        Experiment("fig9", "Figure 9",
                   "job impact, errors-vs-duration, unavailability", _fig9),
        Experiment("sec5.4", "Section 5.4",
                   "overprovisioning projection", _overprovision, needs_jobs=False),
        Experiment("sec5.5", "Section 5.5",
                   "counterfactual improvements", _counterfactual, needs_jobs=False),
        Experiment("sec4.2iii", "Section 4.2 (iii)",
                   "spatial concentration / offenders", _spatial, needs_jobs=False),
        Experiment("sec6", "Section 6",
                   "emerging H100 errors (own dataset)", _h100, needs_jobs=False),
        Experiment("sec7", "Section 7",
                   "generational comparison", _generations, needs_jobs=False),
        Experiment("sim.policies", "Section 5 (what-if)",
                   "recovery-policy sweep on the what-if engine",
                   _sim_policies, needs_jobs=False),
        Experiment("sim.fleets", "Section 5.5/6 (what-if)",
                   "A100 vs H100 vs no-Xid-79 fleets under hot spares",
                   _sim_fleets, needs_jobs=False),
        Experiment("pipeline.parity", "Section 3.2 (methodology)",
                   "batch vs streaming Algorithm-1 stage identity",
                   _pipeline_parity, needs_jobs=False),
    )
}


def run_experiment(
    identifier: str,
    study: DeltaStudy,
    *,
    scale: float = 1.0,
) -> str:
    """Run one registered experiment against a prepared study."""
    experiment = EXPERIMENTS.get(identifier)
    if experiment is None:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {identifier!r}; known: {known}")
    if experiment.needs_jobs and study.slurm_db is None:
        raise ValueError(f"experiment {identifier!r} needs a Slurm database")
    return experiment.runner(study, scale)


def list_experiments() -> List[Experiment]:
    return sorted(EXPERIMENTS.values(), key=lambda e: e.identifier)
