"""Time constants and timestamp formatting used across the toolkit.

All simulation-internal timestamps are floats: seconds since the start of the
observation window (the "epoch" of a dataset).  Rendering to syslog text and
parsing back go through a fixed wall-clock anchor so that round-tripping a
timestamp through a log file is lossless to one-second resolution (syslog
precision), which is what the paper's pipeline had to work with as well.
"""

from __future__ import annotations

import datetime as _dt

#: One minute, in seconds.
MINUTE: float = 60.0
#: One hour, in seconds.
HOUR: float = 3600.0
#: One day, in seconds.
DAY: float = 86400.0
#: Seconds per hour as an int, for integer arithmetic contexts.
SECONDS_PER_HOUR: int = 3600

#: Wall-clock anchor corresponding to simulation time 0.0.  January 1st 2022
#: matches the start of the paper's 855-day characterization window.
EPOCH: _dt.datetime = _dt.datetime(2022, 1, 1, 0, 0, 0)

_SYSLOG_FORMAT = "%Y-%m-%dT%H:%M:%S"


#: Per-(day, epoch) cache of rendered date prefixes; formatting is the
#: hottest loop of the syslog renderer.
_DAY_CACHE: dict = {}


def format_timestamp(sim_seconds: float, epoch: _dt.datetime = EPOCH) -> str:
    """Render a simulation timestamp as an ISO-8601 syslog timestamp.

    Millisecond precision (RFC 5424 style), matching the resolution the
    paper's persistence analysis requires — Table 1 reports P50 persistence
    values of 0.12 s, which whole-second syslog could not resolve.
    """
    whole = int(sim_seconds)
    millis = int(round((sim_seconds - whole) * 1000.0))
    if millis >= 1000:  # rounding carried into the next second
        whole += 1
        millis -= 1000
    if epoch.hour == 0 and epoch.minute == 0 and epoch.second == 0:
        day, rem = divmod(whole, 86400)
        key = (day, epoch)
        date_str = _DAY_CACHE.get(key)
        if date_str is None:
            date_str = (epoch + _dt.timedelta(days=day)).strftime("%Y-%m-%d")
            _DAY_CACHE[key] = date_str
        hours, rem = divmod(rem, 3600)
        minutes, seconds = divmod(rem, 60)
        return f"{date_str}T{hours:02d}:{minutes:02d}:{seconds:02d}.{millis:03d}"
    moment = epoch + _dt.timedelta(seconds=whole)
    return f"{moment.strftime(_SYSLOG_FORMAT)}.{millis:03d}"


#: Per-(date, epoch) cache of midnight offsets; parsing is the hottest loop
#: of Stage I, and ``strptime`` is ~10x slower than fixed-width slicing.
_MIDNIGHT_CACHE: dict = {}


def parse_timestamp(text: str, epoch: _dt.datetime = EPOCH) -> float:
    """Parse an ISO-8601 syslog timestamp back to simulation seconds.

    Accepts both fractional (``...T12:00:00.123``) and whole-second forms.
    Uses fixed-width slicing with a per-date cache; falls back to
    ``strptime`` for anything unusual.
    """
    try:
        key = (text[:10], epoch)
        midnight = _MIDNIGHT_CACHE.get(key)
        if midnight is None:
            day = _dt.datetime(int(text[0:4]), int(text[5:7]), int(text[8:10]))
            midnight = (day - epoch).total_seconds()
            _MIDNIGHT_CACHE[key] = midnight
        seconds = (
            int(text[11:13]) * 3600 + int(text[14:16]) * 60 + int(text[17:19])
        )
        fraction = float(text[19:]) if len(text) > 19 else 0.0
        return midnight + seconds + fraction
    except (ValueError, IndexError):
        fraction = 0.0
        if "." in text:
            text, frac_text = text.split(".", 1)
            fraction = float(f"0.{frac_text}")
        moment = _dt.datetime.strptime(text, _SYSLOG_FORMAT)
        return (moment - epoch).total_seconds() + fraction


def format_duration(seconds: float) -> str:
    """Human-readable duration: ``"2d 03h 04m"`` / ``"03h 04m"`` / ``"12.3s"``.

    Used by report renderers; never parsed back.
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds!r}")
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    days, rem = divmod(seconds, DAY)
    hours, rem = divmod(rem, HOUR)
    minutes = rem / MINUTE
    if days >= 1:
        return f"{int(days)}d {int(hours):02d}h {int(minutes):02d}m"
    if hours >= 1:
        return f"{int(hours):02d}h {int(minutes):02d}m"
    return f"{minutes:.1f}m"
