"""Shared utilities: time handling, RNG streams, statistics, table rendering.

These helpers are deliberately dependency-light (NumPy + stdlib only) so that
every other subpackage can import them without cycles.
"""

from repro.util.rng import RngStreams, spawn_rng
from repro.util.stats import (
    empirical_cdf,
    lognormal_from_mean_p50,
    percentile,
    summarize_durations,
)
from repro.util.tables import Table, format_cell
from repro.util.timeutil import (
    HOUR,
    MINUTE,
    DAY,
    SECONDS_PER_HOUR,
    format_duration,
    format_timestamp,
    parse_timestamp,
)
from repro.util.validation import check_fraction, check_positive, check_probability

__all__ = [
    "RngStreams",
    "spawn_rng",
    "empirical_cdf",
    "lognormal_from_mean_p50",
    "percentile",
    "summarize_durations",
    "Table",
    "format_cell",
    "HOUR",
    "MINUTE",
    "DAY",
    "SECONDS_PER_HOUR",
    "format_duration",
    "format_timestamp",
    "parse_timestamp",
    "check_fraction",
    "check_positive",
    "check_probability",
]
