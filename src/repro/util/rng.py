"""Deterministic random-number stream management.

Every stochastic component of the substrate (fault injector, workload
generator, scheduler jitter, repair sampling, ...) draws from its own named
child stream of a single root seed.  This gives two properties the test suite
and benchmarks rely on:

* **Reproducibility** — a dataset is fully determined by ``(seed, config)``.
* **Stream independence** — adding draws to one component does not perturb
  the sequences seen by any other component, so calibrating one subsystem
  never silently shifts another subsystem's output.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _stable_hash(name: str) -> int:
    """A platform-stable 64-bit FNV-1a hash (``hash()`` is salted per process)."""
    acc = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 1099511628211) % (1 << 64)
    return acc


def spawn_rng(seed: int, *names: str) -> np.random.Generator:
    """Create an independent generator for a named component.

    The component path (e.g. ``spawn_rng(7, "faults", "nvlink")``) is folded
    into the seed sequence, so equal paths yield equal streams and distinct
    paths yield statistically independent streams.
    """
    tokens = [int(seed)] + [_stable_hash(name) for name in names]
    return np.random.default_rng(np.random.SeedSequence(tokens))


class RngStreams:
    """A lazily-populated registry of named child streams under one seed.

    Example::

        streams = RngStreams(seed=42)
        streams.get("faults", "gsp").poisson(3.0)
        streams.get("workload").uniform()

    ``fork("faults")`` returns a view whose ``get("gsp")`` resolves to the
    parent's ``("faults", "gsp")`` stream, letting a subsystem hand a private
    namespace to a helper without the helper knowing the full path.
    """

    def __init__(self, seed: int, _prefix: Tuple[str, ...] = ()) -> None:
        self.seed = int(seed)
        self._prefix = _prefix
        self._streams: Dict[Tuple[str, ...], np.random.Generator] = {}

    def get(self, *names: str) -> np.random.Generator:
        """Return (creating if needed) the stream for a component path."""
        key = self._prefix + tuple(names)
        if key not in self._streams:
            self._streams[key] = spawn_rng(self.seed, *key)
        return self._streams[key]

    def fork(self, *names: str) -> "RngStreams":
        """A child registry whose stream paths are nested under ``names``."""
        return RngStreams(self.seed, self._prefix + tuple(names))

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, prefix={'/'.join(self._prefix) or '<root>'})"
