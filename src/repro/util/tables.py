"""Minimal ASCII table rendering for paper-style report output.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned monospace tables without any third-party
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


def format_cell(value: object, precision: int = 2) -> str:
    """Format a table cell: floats get fixed precision, ints get separators."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 10000:
            return f"{value:,.1f}"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """An aligned ASCII table with a title, headers, and typed rows."""

    title: str
    headers: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)
    precision: int = 2

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        cells = [[format_cell(c, self.precision) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(parts: Sequence[str]) -> str:
            return "| " + " | ".join(p.ljust(w) for p, w in zip(parts, widths)) + " |"

        sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        lines = [self.title, sep, fmt_line(list(self.headers)), sep]
        lines.extend(fmt_line(row) for row in cells)
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
