"""Argument validation helpers with consistent error messages."""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for inline use."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for inline use."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float, *, allow_zero: bool = True) -> float:
    """Require a fraction in [0, 1] (or (0, 1] when ``allow_zero=False``)."""
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")
    return value
