"""Small statistics helpers shared by the fault models and the analyzers.

The paper reports persistence distributions by mean / P50 / P95, and the
generative side of this reproduction needs to *invert* such summaries into
samplable distributions.  ``lognormal_from_mean_p50`` performs that inversion
for the log-normal family, which fits the heavy-tailed, strictly-positive
durations seen in GPU error persistence data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a sequence.

    Thin wrapper over :func:`numpy.percentile` that rejects empty input with
    a clear error instead of a NaN warning.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class DurationSummary:
    """Mean / median / tail summary of a duration sample, in seconds."""

    count: int
    mean: float
    p50: float
    p95: float
    total: float

    def as_row(self) -> tuple:
        return (self.count, self.mean, self.p50, self.p95)


def summarize_durations(values: Sequence[float]) -> DurationSummary:
    """Summarize a sample of durations the way Table 1 reports persistence."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return DurationSummary(count=0, mean=0.0, p50=0.0, p95=0.0, total=0.0)
    return DurationSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        total=float(arr.sum()),
    )


@dataclass(frozen=True)
class LognormalParams:
    """Parameters ``(mu, sigma)`` of ``lognormal`` in log-space."""

    mu: float
    sigma: float

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    @property
    def median(self) -> float:
        return math.exp(self.mu)


def lognormal_from_mean_p50(mean: float, p50: float) -> LognormalParams:
    """Invert a (mean, median) pair into log-normal parameters.

    For a log-normal, ``median = exp(mu)`` and ``mean = exp(mu + sigma^2/2)``;
    hence ``sigma = sqrt(2 ln(mean/median))``.  When the reported mean is at
    or below the median (possible after rounding in the paper's tables) we
    fall back to a narrow distribution centred on the median.
    """
    if mean <= 0 or p50 <= 0:
        raise ValueError(f"mean and p50 must be positive, got mean={mean}, p50={p50}")
    mu = math.log(p50)
    ratio = mean / p50
    if ratio <= 1.0:
        return LognormalParams(mu=mu, sigma=0.05)
    sigma = math.sqrt(2.0 * math.log(ratio))
    return LognormalParams(mu=mu, sigma=sigma)


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cdf)`` for plotting-style CDF summaries."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return arr, arr
    cdf = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, cdf


def histogram_by_bins(
    values: Sequence[float], edges: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    """Counts per bin for pre-specified edges (used by the Figure-9 renders)."""
    arr = np.asarray(values, dtype=float)
    counts, out_edges = np.histogram(arr, bins=np.asarray(edges, dtype=float))
    return counts, out_edges
