"""Benign syslog noise.

Production system logs are overwhelmingly *not* GPU errors — the paper's
pipeline had to extract XID lines from 202 GB of mixed traffic.  This module
generates representative non-GPU lines (systemd, Lustre, sshd, NetworkManager
chatter) so the extraction regexes in :mod:`repro.core.parsing` are exercised
against realistic clutter, including near-miss lines that *mention* GPUs
without being NVRM Xid records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.util.rng import spawn_rng
from repro.util.timeutil import format_timestamp

_TEMPLATES: Sequence[str] = (
    "systemd[1]: Started Session {n} of user u{n2}.",
    "sshd[{n}]: Accepted publickey for u{n2} from 141.142.{n3}.{n4}",
    "kernel: Lustre: {n}:0:(client.c:2289) Request sent has timed out",
    "slurmd[{n}]: launch task StepId={n2}.0 request from UID:{n3}",
    "kernel: perf: interrupt took too long ({n} > {n2}), lowering rate",
    "NetworkManager[{n}]: <info> dhcp4 (hsn0): state changed",
    "kernel: nvidia-uvm: Loaded the UVM driver, major device number {n3}.",
    "gpumond[{n}]: GPU {n4} utilization sample ok",  # near-miss: mentions GPU
    "kernel: EXT4-fs (sda1): mounted filesystem with ordered data mode",
    "prometheus-node-exporter[{n}]: level=info msg=scrape ok",
)


@dataclass(frozen=True)
class NoiseConfig:
    """Volume and identity of benign noise lines."""

    lines_per_node_hour: float = 2.0
    seed: int = 0


def generate_noise_lines(
    node_ids: Sequence[str],
    window_seconds: float,
    config: NoiseConfig | None = None,
) -> Iterator[str]:
    """Yield benign syslog lines across nodes over the window."""
    config = config or NoiseConfig()
    rng = spawn_rng(config.seed, "noise")
    hours = window_seconds / 3600.0
    for node_id in node_ids:
        n_lines = int(rng.poisson(config.lines_per_node_hour * hours))
        times = rng.uniform(0.0, window_seconds, size=n_lines)
        picks = rng.integers(0, len(_TEMPLATES), size=n_lines)
        numbers = rng.integers(1, 60000, size=(max(n_lines, 1), 4))
        for i in range(n_lines):
            body = _TEMPLATES[int(picks[i])].format(
                n=int(numbers[i, 0]),
                n2=int(numbers[i, 1]),
                n3=int(numbers[i, 2]) % 255,
                n4=int(numbers[i, 3]) % 255,
            )
            yield f"{format_timestamp(float(times[i]))} {node_id} {body}"
