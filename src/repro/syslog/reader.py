"""Reading log files back as line streams."""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Sequence


def iter_log_lines(path: str | Path) -> Iterator[str]:
    """Stream lines from one log file (plain or ``.gz``), newline-stripped."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as handle:  # type: ignore[operator]
        for line in handle:
            yield line.rstrip("\n")


def read_log_directory(directory: str | Path) -> Iterator[str]:
    """Stream lines from every ``*.log`` / ``*.log.gz`` file in a directory.

    Files are visited in sorted order; within a file, lines stream in file
    order.  No global time ordering is implied (the pipeline sorts).
    """
    directory = Path(directory)
    paths: Sequence[Path] = sorted(
        p for p in directory.iterdir() if p.name.endswith((".log", ".log.gz"))
    )
    for path in paths:
        yield from iter_log_lines(path)
