"""Reading log files back as line streams."""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, List, Sequence


#: File suffixes the collection side recognizes as node syslogs.
LOG_SUFFIXES = (".log", ".log.gz")


def iter_log_lines(path: str | Path) -> Iterator[str]:
    """Stream lines from one log file (plain or ``.gz``), newline-stripped."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as handle:  # type: ignore[operator]
        for line in handle:
            yield line.rstrip("\n")


def list_log_files(directory: str | Path) -> List[Path]:
    """Every ``*.log`` / ``*.log.gz`` file in a directory, in sorted order.

    The single definition of "which files are node logs" — the batch
    reader, the pipeline's file-set source, and the fleet tailers all
    partition the same list.
    """
    directory = Path(directory)
    return sorted(p for p in directory.iterdir() if p.name.endswith(LOG_SUFFIXES))


def read_log_directory(directory: str | Path) -> Iterator[str]:
    """Stream lines from every ``*.log`` / ``*.log.gz`` file in a directory.

    Files are visited in sorted order; within a file, lines stream in file
    order.  No global time ordering is implied (the pipeline sorts).
    """
    paths: Sequence[Path] = list_log_files(directory)
    for path in paths:
        yield from iter_log_lines(path)
