"""Syslog substrate: render ground-truth fault events into raw NVRM Xid text.

This is the artifact boundary of the reproduction: everything downstream of
this package (the analysis pipeline in :mod:`repro.core`) sees only these
text lines, exactly as the paper's pipeline saw Delta's 202 GB of syslog.
"""

from repro.syslog.format import (
    XID_MESSAGES,
    render_event_lines,
    render_line,
    render_trace,
)
from repro.syslog.noise import NoiseConfig, generate_noise_lines
from repro.syslog.reader import (
    LOG_SUFFIXES,
    iter_log_lines,
    list_log_files,
    read_log_directory,
)
from repro.syslog.writer import write_node_logs

__all__ = [
    "XID_MESSAGES",
    "render_event_lines",
    "render_line",
    "render_trace",
    "NoiseConfig",
    "generate_noise_lines",
    "LOG_SUFFIXES",
    "iter_log_lines",
    "list_log_files",
    "read_log_directory",
    "write_node_logs",
]
