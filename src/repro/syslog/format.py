"""Rendering fault events as NVIDIA-driver kernel log lines.

Line shape (mirroring production ``NVRM: Xid`` messages)::

    2022-03-14T02:11:09.113 gpub042 kernel: NVRM: Xid (PCI:0000:C7:00): 119, pid=8821, Timeout after 6s of waiting for RPC response from GPU0 GSP!

An event with a nonzero *persistence* renders as a duplicate burst: the same
message repeated with inter-line gaps strictly below the pipeline's 5-second
coalescing window, first line at the event's start and last line exactly at
``start + persistence`` — so a correct Algorithm-1 implementation recovers
one error with the generated persistence.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, Iterable, Iterator, List

import numpy as np

from repro.faults.events import ErrorEvent
from repro.faults.xid import Xid
from repro.util.timeutil import format_timestamp

#: Inter-line gaps inside a duplicate burst (seconds); strictly below the
#: 5-second coalescing window so a burst always coalesces into one error.
BURST_GAP_LOW = 2.4
BURST_GAP_HIGH = 4.9

#: One human-readable message template per XID (``{pci}`` / ``{detail}``
#: placeholders).  Templates intentionally mimic the phrasing of NVIDIA's
#: XID documentation so the extraction regexes face realistic text.
XID_MESSAGES: Dict[Xid, str] = {
    Xid.GENERAL_SW: "Graphics Exception: ESR 0x{detail:x}, general software error",
    Xid.MMU: "MMU Fault: ENGINE GRAPHICS GPCCLIENT faulted @ 0x7f{detail:07x}_00000000",
    Xid.RESET_CHANNEL: "Reset Channel Verification Error on channel {detail}",
    Xid.DBE: "DBE (Double Bit Error) ECC Error detected at row 0x{detail:x}",
    Xid.RRE: "Row Remapping Event: row 0x{detail:x} remapped to spare",
    Xid.RRF: "Row Remapping Failure: no spare rows for bank 0x{detail:x}",
    Xid.NVLINK: "NVLink: fatal error detected on link {detail}",
    Xid.FALLEN_OFF_BUS: "GPU has fallen off the bus",
    Xid.CONTAINED: "Contained ECC error: uncorrectable error contained, process terminated",
    Xid.UNCONTAINED: "Uncontained ECC error: uncorrectable error could not be contained",
    Xid.GSP: "Timeout after 6s of waiting for RPC response from GSP! "
    "Expected function {detail} (GSP_RM_CONTROL)",
    Xid.PMU_SPI: "PMU SPI RPC read failure, communication with PMU lost (cmd 0x{detail:x})",
    # XID 136 is undocumented in NVIDIA's manual; production logs show a
    # bare status word, which is what we render.
    Xid.XID_136: "Status 0x{detail:x}",
}


def _event_detail(event: ErrorEvent) -> int:
    """A deterministic per-event detail word (stable across renders)."""
    acc = 1469598103934665603
    for token in (event.node_id, event.pci_bus, str(int(event.xid)), f"{event.time:.3f}"):
        for byte in token.encode():
            acc ^= byte
            acc = (acc * 1099511628211) % (1 << 64)
    return acc % 0xFFFF


def render_line(event: ErrorEvent, at_time: float, pid: int | None = None) -> str:
    """One syslog line for ``event`` stamped at ``at_time``."""
    message = XID_MESSAGES[event.xid].format(detail=_event_detail(event), pci=event.pci_bus)
    pid_text = str(pid) if pid is not None else "'<unknown>'"
    return (
        f"{format_timestamp(at_time)} {event.node_id} kernel: "
        f"NVRM: Xid (PCI:{event.pci_bus}): {int(event.xid)}, pid={pid_text}, {message}"
    )


def burst_offsets(persistence: float, rng: np.random.Generator) -> np.ndarray:
    """Line offsets for a duplicate burst spanning ``persistence`` seconds.

    Always includes 0.0; for positive persistence the last offset is exactly
    ``persistence`` and consecutive offsets differ by less than the
    coalescing window.
    """
    if persistence <= 0.0:
        return np.zeros(1)
    # Enough gaps that their cumulative sum is guaranteed to cover the span
    # (sizing by the mean gap can leave a >window hole at the burst's end,
    # which would split the error in two during coalescing).
    n_gaps = max(1, int(math.ceil(persistence / BURST_GAP_LOW)) + 1)
    gaps = rng.uniform(BURST_GAP_LOW, BURST_GAP_HIGH, size=n_gaps)
    offsets = np.concatenate(([0.0], np.cumsum(gaps)))
    offsets = offsets[offsets < persistence]
    return np.concatenate((offsets, [persistence]))


def _event_seed(seed: int, event: ErrorEvent) -> int:
    key = f"{seed}|{event.node_id}|{event.pci_bus}|{int(event.xid)}|{event.time:.3f}"
    return zlib.crc32(key.encode())


def render_event_lines(
    event: ErrorEvent,
    seed: int = 0,
    pid: int | None = None,
) -> List[str]:
    """All syslog lines (the duplicate burst) for one event.

    The message body is computed once per event (duplicate lines are
    byte-identical except for their timestamps, exactly like the driver's
    repeated logging), and burst gaps come from a cheap per-event-seeded
    RNG so output is deterministic regardless of rendering order.
    """
    message = XID_MESSAGES[event.xid].format(detail=_event_detail(event), pci=event.pci_bus)
    pid_text = str(pid) if pid is not None else "'<unknown>'"
    suffix = (
        f" {event.node_id} kernel: NVRM: Xid (PCI:{event.pci_bus}): "
        f"{int(event.xid)}, pid={pid_text}, {message}"
    )
    start = event.time
    if event.persistence <= 0.0:
        return [format_timestamp(start) + suffix]
    rnd = random.Random(_event_seed(seed, event))
    lines = [format_timestamp(start) + suffix]
    offset = rnd.uniform(BURST_GAP_LOW, BURST_GAP_HIGH)
    while offset < event.persistence:
        lines.append(format_timestamp(start + offset) + suffix)
        offset += rnd.uniform(BURST_GAP_LOW, BURST_GAP_HIGH)
    lines.append(format_timestamp(start + event.persistence) + suffix)
    return lines


def render_trace(
    events: Iterable[ErrorEvent],
    seed: int = 0,
    pids: Dict[int, int] | None = None,
) -> Iterator[str]:
    """Render a full trace, streaming lines event-by-event.

    Lines are *not* globally time-ordered (overlapping bursts from different
    events interleave in real logs too; the per-node log files the paper
    mined are only approximately ordered).  The analysis pipeline sorts
    parsed records itself and must never rely on input ordering.

    ``pids`` optionally maps an event's index (enumeration order) to the
    owning process ID for job-attributed errors.
    """
    for index, event in enumerate(events):
        pid = pids.get(index) if pids else None
        yield from render_event_lines(event, seed=seed, pid=pid)
