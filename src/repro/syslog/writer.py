"""Writing rendered log lines to per-node files (optionally gzip-compressed).

The paper collected "system logs from all compute nodes"; we mirror that as
one file per node under a directory, so the reading side
(:mod:`repro.syslog.reader`) and the extraction stage face the same file
layout a real collection pipeline would.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Dict, Iterable, List


def _node_of(line: str) -> str:
    """Extract the hostname field (second token) of a syslog line."""
    try:
        return line.split(" ", 2)[1]
    except IndexError:
        return "unknown"


def write_node_logs(
    lines: Iterable[str],
    directory: str | Path,
    *,
    compress: bool = False,
    sort_within_node: bool = True,
) -> List[Path]:
    """Write lines into ``<directory>/<node>.log[.gz]``, one file per node.

    Returns the written paths.  With ``sort_within_node`` each node's lines
    are ordered by their timestamp prefix (ISO-8601 sorts lexically), as a
    node-local syslog daemon would produce.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    buckets: Dict[str, List[str]] = {}
    for line in lines:
        buckets.setdefault(_node_of(line), []).append(line)

    paths: List[Path] = []
    for node_id, node_lines in sorted(buckets.items()):
        if sort_within_node:
            node_lines.sort()  # timestamp-prefixed => chronological
        suffix = ".log.gz" if compress else ".log"
        path = directory / f"{node_id}{suffix}"
        if compress:
            with gzip.open(path, "wt", encoding="utf-8") as handle:
                _write_all(handle, node_lines)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                _write_all(handle, node_lines)
        paths.append(path)
    return paths


def _write_all(handle: io.TextIOBase, lines: List[str]) -> None:
    for line in lines:
        handle.write(line)
        handle.write("\n")
