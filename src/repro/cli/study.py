"""Dataset and characterization commands: synthesize, study, figures,
overprovision."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli.common import write_result_dir
from repro.cli.registry import Command, ExitCase, Flags, register

#: The experiments the ``study`` report prints, in paper order.
STUDY_SEQUENCE = (
    "table1", "fig5", "fig6", "fig7", "table2", "table3", "fig9", "sec5.5",
)


def _configure_synthesize(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("output", type=Path, help="output directory")
    parser.add_argument("--compress", action="store_true",
                        help="gzip the log files")


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.datasets import synthesize_delta

    dataset = synthesize_delta(scale=args.scale, seed=args.seed)
    args.output.mkdir(parents=True, exist_ok=True)
    paths = dataset.write_logs(args.output / "logs", compress=args.compress)
    dataset.save_slurm_db(args.output / "slurm.jsonl")
    print(f"wrote {len(paths)} node log files and slurm.jsonl under {args.output}")
    return 0


def _configure_study(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", type=Path, default=None,
                        help="directory written by 'synthesize' "
                        "(default: in-memory)")
    parser.add_argument("--h100", action="store_true",
                        help="also run the Section-6 H100 analysis")


def _cmd_study(args: argparse.Namespace) -> int:
    import json as _json

    from repro.session import Session

    session = Session.from_args(args)
    sequence = STUDY_SEQUENCE + (("sec6",) if args.h100 else ())
    results = session.run_many(sequence)
    if args.output_dir is not None:
        for result in results:
            write_result_dir(result, args.output_dir)
    if args.format == "json":
        print(_json.dumps([r.to_dict() for r in results], indent=2))
    else:
        print("\n\n".join(r.render_text() for r in results))
    return 0


def _configure_overprovision(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=800)


def _cmd_overprovision(args: argparse.Namespace) -> int:
    from repro.core import OverprovisionConfig, OverprovisionSimulator
    from repro.core.report import render_overprovision

    simulator = OverprovisionSimulator(
        OverprovisionConfig(n_nodes=args.nodes, seed=args.seed)
    )
    results = simulator.sweep(
        recovery_minutes=(5.0, 10.0, 20.0, 40.0),
        availabilities=(0.995, 0.9987),
    )
    print(render_overprovision(results))
    return 0


def _configure_figures(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--output", type=Path, default=Path("figures"))


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.core import OverprovisionConfig, OverprovisionSimulator
    from repro.session import Session
    from repro.viz import render_all_figures

    study = Session.from_args(args).study
    sweep = OverprovisionSimulator(OverprovisionConfig(n_trials=2)).sweep(
        recovery_minutes=(5.0, 20.0, 40.0), availabilities=(0.995, 0.9987)
    )
    paths = render_all_figures(
        stats=study.error_statistics(),
        impact=study.job_impact(),
        availability=study.availability(),
        graph=study.propagation().analyze(),
        sweep=sweep,
        directory=args.output,
    )
    for path in paths:
        print(path)
    return 0


register(Command(
    name="synthesize",
    help="generate a dataset to a directory",
    run=_cmd_synthesize,
    flags=Flags(scale=True),
    configure=_configure_synthesize,
    cases=(
        ExitCase("writes logs and slurm db",
                 ("synthesize", "{tmp}/data", "--scale", "0.004",
                  "--seed", "3"), 0),
        ExitCase("missing output directory argument", ("synthesize",), 2),
    ),
))

register(Command(
    name="study",
    help="run the characterization and print reports",
    run=_cmd_study,
    flags=Flags(
        scale=True,
        workers="processes for sharded log extraction over an on-disk "
                "--dataset (default: all cores; 1 forces the serial path; "
                "identical results either way)",
        jobs=True,
        store=True,
        output=True,
        trace=True,
    ),
    configure=_configure_study,
    cases=(
        ExitCase("in-memory study",
                 ("study", "--scale", "0.004", "--seed", "3"), 0),
        ExitCase("nonpositive workers",
                 ("study", "--scale", "0.004", "--workers", "0"), 2),
    ),
))

register(Command(
    name="overprovision",
    help="run the Section-5.4 sweep",
    run=_cmd_overprovision,
    flags=Flags(seed=7),
    configure=_configure_overprovision,
    cases=(
        ExitCase("small sweep",
                 ("overprovision", "--nodes", "120", "--seed", "3"), 0),
        ExitCase("non-integer nodes", ("overprovision", "--nodes", "x"), 2),
    ),
))

register(Command(
    name="figures",
    help="render the paper's figures as SVG",
    run=_cmd_figures,
    flags=Flags(scale=True),
    configure=_configure_figures,
    cases=(
        ExitCase("renders SVGs",
                 ("figures", "--scale", "0.004", "--seed", "3",
                  "--output", "{tmp}/figs"), 0),
        ExitCase("non-numeric scale", ("figures", "--scale", "big"), 2),
    ),
))
