"""What-if engine command: simulate."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli.registry import Command, ExitCase, Flags, register


def _configure_simulate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="a100-512",
                        help="preset fleet+job (see --list-scenarios)")
    parser.add_argument("--policy", default="ckpt",
                        help="recovery policy: none | ckpt[:h] | "
                        "spare[:n][:h] | elastic[:h]")
    parser.add_argument("--replicas", type=int, default=16,
                        help="Monte-Carlo replicas to run")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (aggregates are identical "
                        "for any worker count)")
    parser.add_argument("--gpus", type=int, default=None,
                        help="override the scenario's job size")
    parser.add_argument("--useful-hours", type=float, default=None,
                        help="override the scenario's job length")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="cache replica results here (resumable sweeps)")
    parser.add_argument("--format", choices=("text", "json"), default=None,
                        help="table (text) or the aggregate as JSON")
    parser.add_argument("--json", action="store_true",
                        help="alias for --format json")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="write result.json + manifest.json for the sweep")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list scenario presets and exit")


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.sim import AGGREGATE_FIELDS, SweepConfig, list_scenarios, run_sweep

    if args.list_scenarios:
        for name, description in list_scenarios():
            print(f"{name:<20} {description}")
        return 0
    output_format = args.format or ("json" if args.json else "text")
    try:
        config = SweepConfig(
            scenario=args.scenario,
            policy=args.policy,
            replicas=args.replicas,
            seed=args.seed,
            n_gpus=args.gpus,
            useful_hours=args.useful_hours,
        )
        config.build()  # fail fast on bad scenario/policy specs
    except ValueError as error:
        print(f"error: {error}")
        return 2
    result = run_sweep(
        config,
        workers=args.workers,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
    )
    if args.output_dir is not None:
        directory = args.output_dir / f"sweep_{result.config_hash}"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "result.json").write_text(
            _json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        if result.manifest is not None:
            (directory / "manifest.json").write_text(
                _json.dumps(result.manifest.to_dict(), indent=2) + "\n",
                encoding="utf-8",
            )
    if output_format == "json":
        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    aggregate = result.aggregate
    print(f"scenario {config.scenario}  policy {config.policy}  "
          f"replicas {config.replicas} (cached {result.n_from_cache})  "
          f"seed {config.seed}")
    print(f"completed fraction: {aggregate['completed_fraction']:.2f}")
    for name in AGGREGATE_FIELDS:
        cell = aggregate[name]
        print(f"  {name:<24} {cell['mean']:12.3f} +/- {cell['ci95']:.3f}")
    return 0


register(Command(
    name="simulate",
    help="what-if engine: Monte-Carlo sweep of a training job against "
    "the measured failure process under a recovery policy",
    run=_cmd_simulate,
    flags=Flags(seed=7, trace=True),
    configure=_configure_simulate,
    cases=(
        ExitCase("tiny sweep",
                 ("simulate", "--scenario", "a100-256", "--policy", "none",
                  "--replicas", "1", "--seed", "5", "--gpus", "16",
                  "--useful-hours", "6"), 0),
        ExitCase("unknown scenario", ("simulate", "--scenario", "z9000"), 2),
        ExitCase("unknown policy", ("simulate", "--policy", "teleport"), 2),
    ),
))
