"""Command-line entry point: ``repro-delta``.

Subcommands (one module per subsystem, declared in the command
registry — see :mod:`repro.cli.registry`):

* ``synthesize`` — generate a dataset (logs + Slurm DB) to a directory;
* ``study`` — run the full characterization over a generated dataset (or
  synthesize one in-memory) and print the paper-style report;
* ``experiment`` — run one registered table/figure experiment (or
  ``--all``);
* ``verify`` — check measured metrics against the paper's tolerance bands
  and exit non-zero on any miss;
* ``overprovision`` — run the Section-5.4 sweep;
* ``figures`` — render the study's SVG charts;
* ``simulate`` — the Monte-Carlo what-if engine;
* ``monitor`` / ``serve`` — the live watchdog and fleet health service;
* ``store`` — build / inspect / query the persistent columnar event
  store (``store build|stats|query|compact``);
* ``replay`` — deterministic replay & backtest over stored history;
* ``trace`` — aggregate a ``--trace`` directory: per-subsystem wall
  time, span trees, Chrome trace-event export
  (``trace summary|tree|export``).

Every run-wiring command goes through the session layer
(:mod:`repro.session`): ``study``, ``experiment`` and ``verify`` accept
``--store DIR`` (read-through: the store is built from the dataset on
first use and reused — Stage I becomes a columnar decode — with the
store content hash recorded in the run manifest), ``--workers N``
(Stage-I extraction parallelism) and ``--jobs N`` (independent
experiments fanned over a process pool; results and reports are
byte-identical to a serial run).

``study``, ``experiment`` and ``simulate`` accept ``--format text|json``
and ``--output-dir DIR`` (which writes ``result.json`` + ``manifest.json``
per run, plus ``result.svg`` where a chart is meaningful); ``verify
--output-dir DIR`` archives the same artifacts per verified experiment.

``study``, ``experiment``, ``verify``, ``simulate``, ``store`` and
``replay`` accept ``--trace DIR`` (on ``store``/``replay`` it goes
*before* the nested subcommand): the run writes a hierarchical span
trace into DIR — one JSONL file per participating process, fan-out
workers included — without changing a single output byte.  Inspect with
``repro-delta trace summary|tree|export DIR``.

Exit codes: 0 = success, 1 = a tolerance/gate failure (``verify``),
2 = bad input or a store error.
"""

from __future__ import annotations

from typing import List, Optional

# Importing the command modules registers their commands; registration
# order is presentation order in --help.
from repro.cli import experiment as _experiment  # noqa: F401
from repro.cli import fleet as _fleet  # noqa: F401
from repro.cli import replay as _replay  # noqa: F401
from repro.cli import sim as _sim  # noqa: F401
from repro.cli import store as _store  # noqa: F401
from repro.cli import study as _study  # noqa: F401
from repro.cli import trace as _trace  # noqa: F401
from repro.cli.registry import COMMANDS, CliError, build_parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro import obs
    from repro.session import SessionError
    from repro.store import StoreError

    parser = build_parser(__doc__)
    args = parser.parse_args(argv)
    command = COMMANDS.get(args.command)
    if command is None:
        return 2
    trace_dir = getattr(args, "trace", None)
    try:
        if trace_dir is not None:
            obs.activate(trace_dir)
            with obs.span(f"cli.{args.command}"):
                return command.run(args)
        return command.run(args)
    except (CliError, SessionError, StoreError) as error:
        print(f"error: {error}")
        return 2
    finally:
        obs.deactivate()
