"""Live fleet commands: monitor (streaming watchdog) and serve."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli.registry import CliError, Command, ExitCase, Flags, register


def _configure_monitor(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("logs", type=Path, help="directory of *.log files")
    parser.add_argument("--alarm-minutes", type=float, default=30.0)


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.pipeline import FileSetSource, IngestPipeline, StreamingCoalesce
    from repro.util.timeutil import format_duration, format_timestamp

    if not args.logs.is_dir():
        raise CliError(f"{args.logs} is not a directory")

    # The same staged pipeline the batch study rides, with the streaming
    # coalescer as the Coalesce stage: records stream through the k-way
    # time merge (which preserves each node file's per-GPU order), alarms
    # fire the moment an open run crosses the threshold, and
    # keep_closed=False keeps memory O(open runs).
    def _print_alarm(alarm) -> None:
        print(
            f"ALARM {format_timestamp(alarm.start_time)} {alarm.node_id} "
            f"{alarm.pci_bus} XID {alarm.xid}: error open for "
            f"{format_duration(alarm.open_persistence)} "
            f"({alarm.n_raw:,} duplicate lines so far)"
        )

    pipeline = IngestPipeline(
        FileSetSource(args.logs),
        coalesce=StreamingCoalesce(
            alarm_after_seconds=args.alarm_minutes * 60.0,
            keep_closed=False,
            on_alarm=_print_alarm,
            # A watched directory can legitimately regress in time (clock
            # reset, a demo/emitter re-run appending a fresh window): the
            # live watchdog restarts the affected run instead of dying.
            time_regression="restart",
        ),
    )
    result = pipeline.run()
    print(
        f"stream complete: {result.n_errors:,} coalesced errors, "
        f"{len(result.alarms)} persistence alarms"
    )
    return 0


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("logs", type=Path,
                        help="directory of per-node *.log files to follow "
                        "(created when --simulate writes into it)")
    parser.add_argument("--simulate", action="store_true",
                        help="run a live fault-injection demo: inject a small "
                        "cluster's trace and replay it into the log directory "
                        "while the service follows it")
    parser.add_argument("--speedup", type=float, default=None,
                        help="simulated seconds per wall second for the "
                        "replay (default: flat out)")
    parser.add_argument("--port", type=int, default=0,
                        help="metrics endpoint port (0 = ephemeral)")
    parser.add_argument("--alarm-minutes", type=float, default=10.0,
                        help="open-persistence alarm threshold")
    parser.add_argument("--alerts-jsonl", type=Path, default=None,
                        help="also append alerts to this JSON-lines file")
    parser.add_argument("--duration", type=float, default=None,
                        help="follow for this many seconds then exit "
                        "(without --simulate the default is to run forever)")
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="persist ingested records into a columnar event "
                        "store at DIR; on restart the registry warm-starts "
                        "from it and only new log appends are tailed")
    parser.add_argument("--trained-risk", action="store_true",
                        help="fit the Section-4.3 persistence predictor on a "
                        "synthesized window and use it for risk scores "
                        "(default: static-prior heuristic)")


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.fleet import (
        FleetHealthService,
        FleetServiceConfig,
        JsonLinesSink,
        LiveLogEmitter,
        StdoutSink,
    )

    if args.speedup is not None and args.speedup <= 0:
        raise CliError("--speedup must be positive")
    if args.alarm_minutes <= 0:
        raise CliError("--alarm-minutes must be positive")

    risk_scorer = None
    if args.trained_risk:
        from repro.fleet.risk import fit_risk_model, predictor_scorer

        print("fitting persistence-risk model on a synthesized window...")
        risk_scorer = predictor_scorer(fit_risk_model(seed=args.seed))

    sinks = [StdoutSink()]
    jsonl_sink = None
    if args.alerts_jsonl is not None:
        jsonl_sink = JsonLinesSink(args.alerts_jsonl)
        sinks.append(jsonl_sink)

    emitter = None
    if args.simulate:
        from repro.fleet.demo import demo_trace

        trace = demo_trace(seed=args.seed)
        args.logs.mkdir(parents=True, exist_ok=True)
        emitter = LiveLogEmitter.from_trace(
            trace, args.logs, seed=args.seed, speedup=args.speedup
        )
        print(
            f"simulating {len(trace):,} injected events over "
            f"{trace.window_seconds / 86_400.0:.1f} days on "
            f"{len(trace.node_ids)} nodes -> {args.logs}"
        )
    elif not args.logs.is_dir():
        raise CliError(f"{args.logs} is not a directory "
                       "(use --simulate to create one)")

    service = FleetHealthService(
        FleetServiceConfig(
            logs_dir=args.logs,
            alarm_after_seconds=args.alarm_minutes * 60.0,
            metrics_port=args.port,
            store_dir=args.store,
        ),
        sinks=sinks,
        risk_scorer=risk_scorer,
    )
    service.start()
    if service.store is not None and service.records_replayed:
        print(f"warm start: replayed {service.records_replayed:,} records "
              f"from {args.store}; tailing new appends only")
    print(f"metrics: {service.metrics_url}")
    try:
        if emitter is not None:
            emitter.start()
            emitter.join()
            service.wait_idle(timeout=60.0)
            if args.duration:
                _time.sleep(args.duration)
        elif args.duration is not None:
            _time.sleep(args.duration)
        else:
            print("following logs; Ctrl-C to stop")
            while True:
                _time.sleep(3600.0)
    except KeyboardInterrupt:
        print("stopping...")
    finally:
        if emitter is not None:
            emitter.stop()
        metrics_text = service.render_metrics()
        service.stop()  # drains the queue and flushes the store writer
        summary = service.summary()
        if jsonl_sink is not None:
            jsonl_sink.close()

    print()
    print("session summary:")
    for key in ("records_ingested", "tracked_gpus", "error_onsets",
                "open_runs", "persistence_alarms", "alerts_fired"):
        print(f"  {key}: {summary[key]}")
    if summary.get("store"):
        store_state = summary["store"]
        print(f"  store: {store_state['n_records']:,} records in "
              f"{store_state['n_segments']} segment(s) at "
              f"{store_state['directory']}")
    if summary["alerts_by_rule"]:
        for rule, count in summary["alerts_by_rule"].items():
            print(f"    {rule}: {count}")
    print()
    print("final /metrics scrape (excerpt):")
    for line in metrics_text.splitlines():
        if line.startswith(("repro_fleet_error_onsets_total",
                            "repro_fleet_alerts_total",
                            "repro_fleet_open_runs",
                            "repro_fleet_records_ingested_total")):
            print(f"  {line}")
    return 0


register(Command(
    name="monitor",
    help="stream a log directory through the live coalescer and print "
    "persistence alarms (the Section-4.3 watchdog)",
    run=_cmd_monitor,
    flags=Flags(),
    configure=_configure_monitor,
    cases=(
        ExitCase("watchdog over synthesized logs",
                 ("monitor", "{logs}", "--alarm-minutes", "30"), 0),
        ExitCase("missing log directory", ("monitor", "{absent}"), 2),
    ),
))

register(Command(
    # The demo seed differs from the analysis default on purpose: it picks
    # a window with a photogenic offender GPU.
    name="serve",
    help="run the fleet health service: tail per-node logs live, "
    "maintain per-GPU health, fire operator alerts, expose /metrics",
    run=_cmd_serve,
    flags=Flags(seed=11),
    configure=_configure_serve,
    cases=(
        ExitCase("live demo, flat out",
                 ("serve", "{tmp}/srv_logs", "--simulate", "--seed", "11",
                  "--alarm-minutes", "10"), 0),
        ExitCase("non-positive speedup",
                 ("serve", "{tmp}/srv_logs", "--simulate",
                  "--speedup", "0"), 2),
        ExitCase("missing logs without --simulate",
                 ("serve", "{absent}"), 2),
    ),
))
