"""Declarative command registry for ``repro-delta``.

Every subcommand is a :class:`Command`: a name, a help line, a handler,
a :class:`Flags` declaration of which *shared* flag groups it takes, an
optional ``configure`` hook for command-specific arguments, and a tuple
of :class:`ExitCase` examples pinning the exit-code contract (0 =
success, 1 = tolerance/gate failure, 2 = bad input or store error).

The shared flag groups — run knobs (``--scale``/``--seed``), extraction
``--workers``, fan-out ``--jobs``, ``--store`` read-through and
``--format``/``--output-dir`` — are declared *once* here; command
modules never hand-roll them.  :func:`build_parser` assembles the full
argparse tree from the registry, and the exit-code test suite iterates
``COMMANDS`` so a newly registered command is covered automatically.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple


class CliError(Exception):
    """Bad input detected by a command handler; exits with code 2."""


@dataclass(frozen=True)
class ExitCase:
    """One executable example of the exit-code contract.

    ``argv`` may reference fixture placeholders (``{dataset}``,
    ``{logs}``, ``{built_store}``, ``{demo_store}``, ``{tmp}``,
    ``{absent}``) that the contract tests resolve against a small
    shared dataset.
    """

    label: str
    argv: Tuple[str, ...]
    expect: int


@dataclass(frozen=True)
class Flags:
    """Which shared flag groups a command takes."""

    scale: bool = False
    #: Default value for ``--seed`` (``None`` = the command has no seed).
    seed: Optional[int] = None
    #: Help text for ``--workers`` (``None`` = no flag).  The flag's
    #: default is ``None`` ("all cores"), resolved by ``RunConfig``.
    workers: Optional[str] = None
    jobs: bool = False
    store: bool = False
    output: bool = False
    trace: bool = False


@dataclass(frozen=True)
class Command:
    name: str
    help: str
    run: Callable[[argparse.Namespace], int]
    flags: Flags = field(default_factory=Flags)
    configure: Optional[Callable[[argparse.ArgumentParser], None]] = None
    cases: Tuple[ExitCase, ...] = ()


#: Registration order is presentation order in ``--help``.
COMMANDS: Dict[str, Command] = {}


def register(command: Command) -> Command:
    if command.name in COMMANDS:
        raise ValueError(f"command {command.name!r} registered twice")
    COMMANDS[command.name] = command
    return command


# ---------------------------------------------------------------------------
# The shared flag groups (each exists exactly once, here)
# ---------------------------------------------------------------------------


def add_common(
    parser: argparse.ArgumentParser, *, scale: bool = True, seed: int = 7
) -> None:
    """The shared run knobs; every subcommand gets its seed from here."""
    if scale:
        parser.add_argument("--scale", type=float, default=0.05,
                            help="observation-window scale "
                            "(1.0 = the paper's 855 days)")
    parser.add_argument("--seed", type=int, default=seed)


def add_workers(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument("--workers", type=int, default=None, help=help_text)


def add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="run experiments over this many worker "
                        "processes (results and reports are byte-identical "
                        "for any job count)")


def add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="read records through a columnar event store "
                        "at DIR (built from the dataset on first use, "
                        "reused thereafter)")


def add_output(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="print the paper-style text or the structured "
                        "JSON artifact")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="also write result.json + manifest.json "
                        "(+ result.svg where applicable) per run")


def add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", type=Path, default=None, metavar="DIR",
                        help="write a span/counter trace of this run into "
                        "DIR (JSONL, one file per process; inspect with "
                        "'repro-delta trace'; never changes results)")


def _apply_flags(parser: argparse.ArgumentParser, flags: Flags) -> None:
    if flags.scale or flags.seed is not None:
        add_common(parser, scale=flags.scale,
                   seed=flags.seed if flags.seed is not None else 7)
    if flags.workers is not None:
        add_workers(parser, flags.workers)
    if flags.jobs:
        add_jobs(parser)
    if flags.store:
        add_store(parser)
    if flags.output:
        add_output(parser)
    if flags.trace:
        add_trace(parser)


# ---------------------------------------------------------------------------
# Parser assembly
# ---------------------------------------------------------------------------


def build_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-delta", description=description
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in COMMANDS.values():
        command_parser = sub.add_parser(command.name, help=command.help)
        _apply_flags(command_parser, command.flags)
        if command.configure is not None:
            command.configure(command_parser)
    return parser
