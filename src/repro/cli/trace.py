"""Trace inspection commands: trace summary|tree|export.

Aggregates a directory written by ``--trace DIR``: ``summary`` prints
per-subsystem self time, per-span totals and the store's pushdown
ratios; ``tree`` prints the stitched cross-process span forest;
``export`` writes Chrome trace-event JSON loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cli.registry import CliError, Command, ExitCase, Flags, register


def _configure_trace(parser: argparse.ArgumentParser) -> None:
    trace_sub = parser.add_subparsers(dest="trace_command", required=True)

    p_summary = trace_sub.add_parser(
        "summary",
        help="aggregate a trace directory: per-subsystem wall time, "
        "span totals, store pruning ratios, counters",
    )
    p_summary.add_argument("trace_dir", type=Path)
    p_summary.add_argument("--json", action="store_true",
                           help="print the aggregate as JSON")

    p_tree = trace_sub.add_parser(
        "tree", help="print the span tree (fan-out workers re-parented "
        "under their dispatching span)",
    )
    p_tree.add_argument("trace_dir", type=Path)
    p_tree.add_argument("--depth", type=int, default=None,
                        help="limit printed nesting depth")

    p_export = trace_sub.add_parser(
        "export",
        help="write Chrome trace-event JSON (open in Perfetto)",
    )
    p_export.add_argument("trace_dir", type=Path)
    p_export.add_argument("--output", type=Path, default=None,
                          help="output file (default: "
                          "<trace_dir>/trace.chrome.json)")


def _load(directory: Path):
    from repro.obs import read_trace_dir

    try:
        data = read_trace_dir(directory)
    except FileNotFoundError as error:
        raise CliError(str(error)) from None
    if not data.metas and not data.spans:
        raise CliError(f"no *.trace.jsonl files under {directory}")
    return data


def _warn_problems(data) -> None:
    for name, lineno, message in data.problems:
        print(f"warning: {name}:{lineno}: {message}", file=sys.stderr)


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summary":
        return _trace_summary(args)
    if args.trace_command == "tree":
        return _trace_tree(args)
    if args.trace_command == "export":
        return _trace_export(args)
    return 2


def _trace_summary(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import render_summary, summarize

    data = _load(args.trace_dir)
    _warn_problems(data)
    summary = summarize(data)
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _trace_tree(args: argparse.Namespace) -> int:
    from repro.obs import render_tree

    data = _load(args.trace_dir)
    _warn_problems(data)
    print(render_tree(data, max_depth=args.depth))
    return 0


def _trace_export(args: argparse.Namespace) -> int:
    from repro.obs import write_chrome_trace

    data = _load(args.trace_dir)
    _warn_problems(data)
    output = args.output
    if output is None:
        output = args.trace_dir / "trace.chrome.json"
    path = write_chrome_trace(data, output)
    print(f"wrote {len(data.spans)} span event(s) to {path}")
    return 0


register(Command(
    name="trace",
    help="inspect a --trace directory: per-subsystem timing summary, "
    "span tree, Chrome trace-event export",
    run=_cmd_trace,
    flags=Flags(),
    configure=_configure_trace,
    cases=(
        ExitCase("summary over a traced run",
                 ("trace", "summary", "{traced}"), 0),
        ExitCase("span tree over a traced run",
                 ("trace", "tree", "{traced}"), 0),
        ExitCase("chrome export",
                 ("trace", "export", "{traced}",
                  "--output", "{tmp}/chrome.json"), 0),
        ExitCase("missing trace directory",
                 ("trace", "summary", "{absent}"), 2),
    ),
))
