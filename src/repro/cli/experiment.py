"""Experiment execution and the paper-fidelity gate: experiment, verify.

Both commands run through the session layer, so Stage-I extraction
honours ``--workers`` and ``--jobs N`` fans independent experiments over
a process pool — with reports byte-identical to a serial run.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli.common import emit_result, write_result_dir
from repro.cli.registry import CliError, Command, ExitCase, Flags, register

_WORKERS_HELP = ("processes for sharded log extraction over an on-disk "
                 "--dataset or --store build (identical results for any "
                 "count)")


def _configure_experiment(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("id", nargs="?", default=None,
                        help="experiment id (omit to list)")
    parser.add_argument("--all", action="store_true",
                        help="run every registered experiment")
    parser.add_argument("--dataset", type=Path, default=None,
                        help="directory written by 'synthesize' "
                        "(default: in-memory)")


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, list_experiments
    from repro.session import Session

    if args.all and args.id is not None:
        raise CliError("pass an experiment id or --all, not both")
    if args.id is None and not args.all:
        # Listing mode: flags that only affect a *run* would be silently
        # ignored — reject the combination instead of surprising the user.
        ignored = [flag for flag, value in (
            ("--store", args.store),
            ("--output-dir", args.output_dir),
            ("--dataset", args.dataset),
        ) if value is not None]
        if args.jobs != 1:
            ignored.append("--jobs")
        if ignored:
            raise CliError(
                f"{', '.join(ignored)} has no effect without an experiment "
                "id (pass an id, or --all to run every experiment)"
            )
        for experiment in list_experiments():
            marker = "*" if experiment.verified else " "
            print(f"{experiment.identifier:<16} "
                  f"{experiment.paper_artifact:<22} "
                  f"{marker} {experiment.description}")
        return 0

    identifiers = ([e.identifier for e in list_experiments()] if args.all
                   else [args.id])
    unknown = [i for i in identifiers if i not in EXPERIMENTS]
    if unknown:
        raise CliError(f"unknown experiment ids: {', '.join(unknown)}")

    session = Session.from_args(args)
    results = session.run_many(identifiers)
    if args.all:
        if args.output_dir is not None:
            for result in results:
                write_result_dir(result, args.output_dir)
        if args.format == "json":
            import json as _json

            print(_json.dumps([r.to_dict() for r in results], indent=2))
        else:
            print("\n\n".join(r.render_text() for r in results))
        return 0
    emit_result(results[0], args)
    return 0


def _configure_verify(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("ids", nargs="*", default=[],
                        help="experiment ids to verify (default: all "
                        "tolerance-annotated experiments)")
    parser.add_argument("--dataset", type=Path, default=None,
                        help="directory written by 'synthesize' "
                        "(default: in-memory)")
    parser.add_argument("--tolerance-scale", type=float, default=1.0,
                        help="widen every band by this factor (small-scale "
                        "smoke runs need slack)")
    parser.add_argument("--min-support", type=int, default=None,
                        help="skip checks whose metric was estimated from "
                        "fewer samples than this")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="also write result.json + manifest.json per "
                        "verified experiment (CI artifact archival)")


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, verified_experiments
    from repro.results import DEFAULT_MIN_SUPPORT, verify_results
    from repro.session import Session

    if args.ids:
        unknown = [i for i in args.ids if i not in EXPERIMENTS]
        if unknown:
            raise CliError(f"unknown experiment ids: {', '.join(unknown)}")
        identifiers = list(args.ids)
    else:
        identifiers = [e.identifier for e in verified_experiments()]
    min_support = (DEFAULT_MIN_SUPPORT if args.min_support is None
                   else args.min_support)

    session = Session.from_args(args)
    results = session.run_many(identifiers)
    if args.output_dir is not None:
        for result in results:
            write_result_dir(result, args.output_dir)
    report = verify_results(
        results,
        tolerance_scale=args.tolerance_scale,
        min_support=min_support,
    )
    print(report.render_table())
    if not report.ok:
        print(f"\nFAIL: {report.n_fail} metric(s) outside their paper "
              "tolerance bands")
        return 1
    return 0


register(Command(
    name="experiment",
    help="run one registered table/figure experiment (--all for every one)",
    run=_cmd_experiment,
    flags=Flags(scale=True, workers=_WORKERS_HELP, jobs=True, store=True,
                output=True, trace=True),
    configure=_configure_experiment,
    cases=(
        ExitCase("lists experiments", ("experiment",), 0),
        ExitCase("runs one experiment",
                 ("experiment", "fig5", "--scale", "0.004", "--seed", "3"), 0),
        ExitCase("unknown id",
                 ("experiment", "nope", "--scale", "0.004"), 2),
        ExitCase("run flags without an id",
                 ("experiment", "--output-dir", "{tmp}/out"), 2),
        ExitCase("id and --all together",
                 ("experiment", "fig5", "--all"), 2),
    ),
))

register(Command(
    name="verify",
    help="run the tolerance-annotated experiments and check every "
    "measured metric against its paper band (non-zero exit on a miss)",
    run=_cmd_verify,
    flags=Flags(scale=True, workers=_WORKERS_HELP, jobs=True, store=True,
                trace=True),
    configure=_configure_verify,
    cases=(
        ExitCase("passes with relaxed bands",
                 ("verify", "table1", "--scale", "0.02", "--seed", "1234",
                  "--tolerance-scale", "4"), 0),
        ExitCase("gate failure on near-zero bands",
                 ("verify", "table1", "--scale", "0.02", "--seed", "1234",
                  "--tolerance-scale", "1e-6"), 1),
        ExitCase("unknown ids", ("verify", "nope", "--scale", "0.02"), 2),
    ),
))
