"""Columnar event-store commands: store build|stats|query|compact."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cli.common import parse_query_args
from repro.cli.registry import (
    CliError,
    Command,
    ExitCase,
    Flags,
    add_common,
    register,
)


def _configure_store(parser: argparse.ArgumentParser) -> None:
    store_sub = parser.add_subparsers(dest="store_command", required=True)

    p_build = store_sub.add_parser(
        "build", help="ingest a dataset's logs into a store directory"
    )
    p_build.add_argument("dataset", type=Path,
                         help="dataset directory written by 'synthesize' "
                         "(or a bare log directory)")
    p_build.add_argument("store_dir", type=Path,
                         help="store directory to create")
    p_build.add_argument("--workers", type=int, default=1,
                         help="processes for sharded log extraction")
    p_build.add_argument("--segment-records", type=int, default=None,
                         help="records per segment (default 50,000)")
    add_common(p_build)

    p_stats = store_sub.add_parser("stats", help="describe a store")
    p_stats.add_argument("store_dir", type=Path)
    p_stats.add_argument("--json", action="store_true")

    p_query = store_sub.add_parser(
        "query",
        help="slice the store: pushdown by time window, XID, node, serial",
    )
    p_query.add_argument("store_dir", type=Path)
    p_query.add_argument("--since", default=None,
                         help="ISO timestamp or epoch seconds (inclusive)")
    p_query.add_argument("--until", default=None,
                         help="ISO timestamp or epoch seconds (inclusive)")
    p_query.add_argument("--xids", default=None,
                         help="comma-separated XID codes (e.g. 48,63,79)")
    p_query.add_argument("--nodes", default=None,
                         help="comma-separated node ids")
    p_query.add_argument("--serials", default=None,
                         help="comma-separated GPU serials (<node>/<pci-bus>)")
    p_query.add_argument("--limit", type=int, default=None,
                         help="print at most this many records")
    p_query.add_argument("--count", action="store_true",
                         help="print only the matching-record count")

    p_compact = store_sub.add_parser(
        "compact", help="merge small segments (content and order preserved)"
    )
    p_compact.add_argument("store_dir", type=Path)
    p_compact.add_argument("--threshold", type=int, default=None,
                           help="segments smaller than this merge "
                           "(default 10,000)")


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command == "build":
        return _store_build(args)
    if args.store_command == "stats":
        return _store_stats(args)
    if args.store_command == "query":
        return _store_query(args)
    if args.store_command == "compact":
        return _store_compact(args)
    return 2


def _store_build(args: argparse.Namespace) -> int:
    from repro.faults import AMPERE_CALIBRATION
    from repro.pipeline import FileSetSource
    from repro.store import DEFAULT_SEGMENT_RECORDS, EventStore

    logs_dir = (args.dataset / "logs" if (args.dataset / "logs").is_dir()
                else args.dataset)
    if not logs_dir.is_dir():
        raise CliError(f"{logs_dir} is not a directory")
    if EventStore.exists(args.store_dir) and EventStore.open(args.store_dir).n_records:
        raise CliError(f"store at {args.store_dir} is already built "
                       "(query it, or choose a new directory)")
    meta = {
        "scale": args.scale,
        "seed": args.seed,
        "window_hours": AMPERE_CALIBRATION.window_days * 24.0 * args.scale,
        "n_nodes": AMPERE_CALIBRATION.reference_node_count,
        "dataset": str(args.dataset),
    }
    store = EventStore.open_or_create(args.store_dir, meta=meta)
    segments = store.ingest(
        FileSetSource(logs_dir),
        workers=max(1, args.workers),
        segment_records=args.segment_records or DEFAULT_SEGMENT_RECORDS,
    )
    print(f"ingested {store.n_records:,} records into {len(segments)} "
          f"segment(s) under {args.store_dir} "
          f"(content hash {store.content_hash()})")
    return 0


def _store_stats(args: argparse.Namespace) -> int:
    import json as _json

    from repro.store import EventStore

    stats = EventStore.open(args.store_dir).stats()
    if args.json:
        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0
    from repro.util.timeutil import format_timestamp

    print(f"store     : {stats['directory']}")
    print(f"schema    : {stats['schema']}")
    print(f"segments  : {stats['n_segments']}  "
          f"({stats['n_bytes']:,} bytes)")
    print(f"records   : {stats['n_records']:,}")
    print(f"nodes     : {stats['n_nodes']}  "
          f"gpus: {stats['n_serials']}")
    if stats["time_min"] is not None:
        print(f"window    : {format_timestamp(stats['time_min'])} "
              f"-> {format_timestamp(stats['time_max'])}")
    print(f"hash      : {stats['content_hash']}")
    counts = ", ".join(f"{x}:{c:,}" for x, c in
                       stats["counts_by_xid"].items())
    print(f"xid counts: {counts}")
    return 0


def _store_query(args: argparse.Namespace) -> int:
    from repro.store import EventStore
    from repro.util.timeutil import format_timestamp

    store = EventStore.open(args.store_dir)
    query = parse_query_args(args)
    candidates, skipped = store.plan(query)
    if args.count:
        print(store.count(query))
        print(f"({len(candidates)} segment(s) read, {skipped} pruned by "
              "zone maps)", file=sys.stderr)
        return 0
    printed = 0
    for record in store.query(query):
        pid = "-" if record.pid is None else str(record.pid)
        print(f"{format_timestamp(record.time)}\t{record.node_id}\t"
              f"{record.pci_bus}\t{record.xid}\t{pid}\t{record.message}")
        printed += 1
        if args.limit is not None and printed >= args.limit:
            break
    print(f"({printed} record(s); {len(candidates)} segment(s) read, "
          f"{skipped} pruned by zone maps)", file=sys.stderr)
    return 0


def _store_compact(args: argparse.Namespace) -> int:
    from repro.store import EventStore
    from repro.store.store import DEFAULT_COMPACT_THRESHOLD

    store = EventStore.open(args.store_dir)
    threshold = (DEFAULT_COMPACT_THRESHOLD if args.threshold is None
                 else args.threshold)
    merged = store.compact(threshold=threshold)
    print(f"compacted {merged} segments away; store now holds "
          f"{store.n_segments} segment(s), {store.n_records:,} records")
    return 0


register(Command(
    name="store",
    help="persistent columnar event store: build once, slice by time "
    "window / XID / node / GPU without re-parsing raw logs",
    run=_cmd_store,
    # NB: --trace goes before the nested subcommand
    # (repro-delta store --trace DIR query ...).
    flags=Flags(trace=True),
    configure=_configure_store,
    cases=(
        ExitCase("stats on a built store",
                 ("store", "stats", "{built_store}"), 0),
        ExitCase("stats on a missing store",
                 ("store", "stats", "{absent}"), 2),
        ExitCase("rebuilding an already-built store",
                 ("store", "build", "{dataset}", "{built_store}",
                  "--scale", "0.004", "--seed", "3"), 2),
    ),
))
