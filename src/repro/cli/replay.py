"""Deterministic replay & backtest commands: replay demo|backtest|run."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli.common import emit_result, parse_query_args
from repro.cli.registry import CliError, Command, ExitCase, Flags, register


def _add_replay_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="replay from a columnar event store")
    parser.add_argument("--logs", type=Path, default=None, metavar="DIR",
                        help="replay from a directory of *.log files")
    parser.add_argument("--workers", type=int, default=1,
                        help="extraction workers (scorecard identical "
                        "for any count)")
    parser.add_argument("--speed", type=float, default=None,
                        help="simulated seconds per wall second "
                        "(1 = real time; default: unbounded)")
    parser.add_argument("--window-hours", type=float, default=6.0,
                        help="store replay-cursor window size")
    parser.add_argument("--since", default=None,
                        help="ISO timestamp or epoch seconds (inclusive)")
    parser.add_argument("--until", default=None,
                        help="ISO timestamp or epoch seconds (inclusive)")
    parser.add_argument("--xids", default=None,
                        help="comma-separated XID codes to replay")
    parser.add_argument("--nodes", default=None,
                        help="comma-separated node ids")
    parser.add_argument("--serials", default=None,
                        help="comma-separated GPU serials (<node>/<pci-bus>)")


def _configure_replay(parser: argparse.ArgumentParser) -> None:
    replay_sub = parser.add_subparsers(dest="replay_command", required=True)

    p_demo = replay_sub.add_parser(
        "demo",
        help="write the demo cluster's two-day trace as per-node log "
        "files, flat-out (a backtest fixture: build a store from it)",
    )
    p_demo.add_argument("logs_dir", type=Path)
    p_demo.add_argument("--seed", type=int, default=11)

    p_backtest = replay_sub.add_parser(
        "backtest",
        help="replay history through the real stack and emit the typed "
        "scorecard: per-rule precision/recall vs XID-79 incidents, "
        "lead times, false-alarm rates, predictor PR curve",
    )
    _add_replay_source(p_backtest)
    p_backtest.add_argument("--horizon-minutes", type=float, default=60.0,
                            help="forward window an alert has to call an "
                            "incident")
    p_backtest.add_argument("--format", choices=("text", "json"),
                            default="text",
                            help="print the paper-style text or the "
                            "structured JSON artifact")
    p_backtest.add_argument("--output-dir", type=Path, default=None,
                            help="also write result.json + manifest.json")

    p_run = replay_sub.add_parser(
        "run",
        help="replay history through the stack, printing alerts as they "
        "fire (paced by --speed)",
    )
    _add_replay_source(p_run)
    p_run.add_argument("--alerts-jsonl", type=Path, default=None,
                       help="also append alerts to this JSON-lines file")


def _record_source(args: argparse.Namespace):
    """Resolve ``--store``/``--logs`` into ``(factory, label, fingerprint)``.

    The factory yields a *fresh* time-ordered record stream per call
    (the backtest reads the history twice).  The fingerprint identifies
    the content under test — store content hash plus the pushdown query,
    or the log file set — and deliberately excludes worker counts and
    replay speed, which must not perturb the scorecard's run id.
    """
    import hashlib

    from repro.pipeline import FileSetSource
    from repro.pipeline.extract import iter_source_records
    from repro.results import config_digest
    from repro.store import EventStore, ReplayCursor

    if (args.store is None) == (args.logs is None):
        raise CliError("pass exactly one of --store DIR or --logs DIR")
    if args.workers < 1:
        raise CliError("--workers must be >= 1")
    query = parse_query_args(args)
    if args.store is not None:
        store = EventStore.open(args.store)
        window_seconds = args.window_hours * 3_600.0

        def factory():
            return ReplayCursor(
                store, query=query, window_seconds=window_seconds
            ).iter_records()

        fingerprint = store.content_hash()
        if not query.unconstrained:
            fingerprint += "+" + config_digest(query.to_dict())
        return factory, f"store:{args.store}", fingerprint

    if not args.logs.is_dir():
        raise CliError(f"{args.logs} is not a directory")
    workers = args.workers
    source = FileSetSource(args.logs)
    if not source.paths:
        raise CliError(f"{args.logs} holds no log files")
    names = hashlib.sha256(
        "\n".join(sorted(p.name for p in source.paths)).encode()
    ).hexdigest()[:12]

    def factory():
        stream = iter_source_records(FileSetSource(args.logs), workers=workers)
        if query.unconstrained:
            return stream
        return (r for r in stream if query.matches_record(r))

    return factory, f"logs:{args.logs}", f"files-{names}"


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.replay_command == "demo":
        return _replay_demo(args)
    factory, label, fingerprint = _record_source(args)
    if args.speed is not None and args.speed <= 0:
        raise CliError("--speed must be positive")
    if args.replay_command == "backtest":
        return _replay_backtest(args, factory, label, fingerprint)
    if args.replay_command == "run":
        return _replay_run(args, factory)
    return 2


def _replay_demo(args: argparse.Namespace) -> int:
    from repro.fleet import LiveLogEmitter
    from repro.fleet.demo import demo_trace

    trace = demo_trace(seed=args.seed)
    emitter = LiveLogEmitter.from_trace(
        trace, args.logs_dir, seed=args.seed, speedup=None
    )
    lines = emitter.run()
    print(f"wrote {lines:,} log lines ({len(trace):,} events over "
          f"{trace.window_seconds / 86_400.0:.1f} days, "
          f"{len(trace.node_ids)} nodes) under {args.logs_dir}")
    return 0


def _replay_backtest(
    args: argparse.Namespace, factory, label: str, fingerprint: str
) -> int:
    from repro.replay import BacktestConfig, ReplayPacer, run_backtest

    config = BacktestConfig(horizon_seconds=args.horizon_minutes * 60.0)
    result = run_backtest(
        factory,
        config,
        pacer=ReplayPacer(args.speed),
        source_label=label,
        source_fingerprint=fingerprint,
    )
    emit_result(result, args)
    return 0


def _replay_run(args: argparse.Namespace, factory) -> int:
    from repro.fleet import JsonLinesSink, StdoutSink
    from repro.replay import ReplayEngine, ReplayPacer

    sinks = [StdoutSink()]
    jsonl_sink = None
    if args.alerts_jsonl is not None:
        jsonl_sink = JsonLinesSink(args.alerts_jsonl)
        sinks.append(jsonl_sink)
    engine = ReplayEngine(pacer=ReplayPacer(args.speed), sinks=sinks)
    try:
        outcome = engine.replay(factory())
    except KeyboardInterrupt:
        print("interrupted")
        return 130
    finally:
        if jsonl_sink is not None:
            jsonl_sink.close()
    speed = ("flat-out" if outcome.wall_seconds <= 0
             else f"{outcome.speedup:,.0f}x")
    print(f"replayed {outcome.records:,} records "
          f"({outcome.span_seconds / 86_400.0:.2f} days of history) "
          f"in {outcome.wall_seconds:.2f} s [{speed}]: "
          f"{outcome.onsets:,} onsets, {outcome.alarms} alarms, "
          f"{len(outcome.alerts)} alerts")
    return 0


register(Command(
    name="replay",
    help="deterministic replay & backtest: drive the live fleet stack "
    "from stored history and score alerts/predictions against "
    "ground truth",
    run=_cmd_replay,
    # NB: --trace goes before the nested subcommand
    # (repro-delta replay --trace DIR backtest ...).
    flags=Flags(trace=True),
    configure=_configure_replay,
    cases=(
        ExitCase("demo trace to log files",
                 ("replay", "demo", "{tmp}/demo_logs", "--seed", "11"), 0),
        ExitCase("backtest needs exactly one source",
                 ("replay", "backtest"), 2),
        ExitCase("backtest over the demo store",
                 ("replay", "backtest", "--store", "{demo_store}"), 0),
    ),
))
