"""Helpers shared by command modules: result output and query parsing."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional


def write_result_dir(result, output_dir: Path) -> List[Path]:
    """Persist one structured result: JSON artifact, manifest, SVG."""
    import json as _json

    directory = output_dir / result.experiment_id.replace(".", "_")
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    result_path = directory / "result.json"
    result_path.write_text(result.render_json() + "\n", encoding="utf-8")
    written.append(result_path)

    if result.manifest is not None:
        manifest_path = directory / "manifest.json"
        manifest_path.write_text(
            _json.dumps(result.manifest.to_dict(), indent=2) + "\n",
            encoding="utf-8",
        )
        written.append(manifest_path)

    svg = result.render_svg()
    if svg is not None:
        svg_path = directory / "result.svg"
        svg_path.write_text(svg, encoding="utf-8")
        written.append(svg_path)
    return written


def emit_result(result, args: argparse.Namespace) -> None:
    """The standard single-result output path: files, then text or JSON."""
    if getattr(args, "output_dir", None) is not None:
        for path in write_result_dir(result, args.output_dir):
            print(f"wrote {path}", file=sys.stderr)
    if getattr(args, "format", "text") == "json":
        print(result.render_json())
    else:
        print(result.render_text())


def parse_query_args(args: argparse.Namespace):
    """``--since/--until/--xids/--nodes/--serials`` into a store Query."""
    from repro.cli.registry import CliError
    from repro.store import Query
    from repro.util.timeutil import parse_timestamp

    def _moment(text: Optional[str]) -> Optional[float]:
        if text is None:
            return None
        try:
            return float(text)
        except ValueError:
            pass
        try:
            # Date-only form ("2022-03-01") means midnight that day.
            return parse_timestamp(
                text if "T" in text else f"{text}T00:00:00"
            )
        except (ValueError, IndexError):
            raise CliError(
                f"bad timestamp {text!r}: expected seconds, YYYY-MM-DD, "
                "or YYYY-MM-DDTHH:MM:SS"
            ) from None

    def _split(text: Optional[str]) -> Optional[List[str]]:
        if text is None:
            return None
        return [part.strip() for part in text.split(",") if part.strip()]

    since, until = _moment(args.since), _moment(args.until)
    xids = _split(args.xids)
    return Query(
        time_range=(since, until) if (since is not None or until is not None)
        else None,
        xids=[int(x) for x in xids] if xids else None,
        nodes=_split(args.nodes),
        serials=_split(args.serials),
    )
