"""Deterministic replay & backtest: drive the live stack from history.

The offline twin of :mod:`repro.fleet`: stream stored history — a
columnar event store (via :class:`~repro.store.ReplayCursor` windows or
pushdown queries) or a raw log directory — through the *same* registry,
rule engine, and risk scorer the live service runs, paced by a virtual
clock at any speed from 1x to unbounded, and score what fired against
ground truth.  Because every piece of alerting state keys off event
time, the resulting scorecard is byte-identical across replay speeds,
store-ingest worker counts, and repeated runs.  See ``docs/replay.md``.
"""

from repro.replay.backtest import (
    BacktestConfig,
    DEFAULT_THRESHOLDS,
    Incident,
    RuleScore,
    extract_incidents,
    run_backtest,
)
from repro.replay.clock import ReplayPacer, VirtualClock
from repro.replay.engine import OnsetEvent, ReplayEngine, ReplayOutcome

__all__ = [
    "BacktestConfig",
    "DEFAULT_THRESHOLDS",
    "Incident",
    "OnsetEvent",
    "ReplayEngine",
    "ReplayOutcome",
    "ReplayPacer",
    "RuleScore",
    "VirtualClock",
    "extract_incidents",
    "run_backtest",
]
