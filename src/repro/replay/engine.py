"""Drive the *real* fleet stack from stored history.

:class:`ReplayEngine` feeds a time-ordered record stream — a store
cursor, a pushdown query, a parsed log directory — through the very
objects the live service runs: a sharded
:class:`~repro.fleet.registry.HealthRegistry` (streaming coalescing,
persistence alarms, online risk scores) and a
:class:`~repro.fleet.rules.RuleEngine` (the paper's operator guidance).
No forked logic, no "replay mode" branches in the stack itself: what
fires here is exactly what would have fired live, because every piece
of alerting state keys off event time.

Delivery is single-threaded and paced by a
:class:`~repro.replay.clock.ReplayPacer`; the pacer's speed factor
changes *when* records arrive, never *what* they produce — the
:class:`ReplayOutcome` is identical at 1x, 100x, and unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.parsing import RawXidRecord
from repro.fleet.registry import HealthRegistry, RiskScorer
from repro.fleet.rules import (
    Alert,
    AlertRule,
    AlertSink,
    MemorySink,
    RuleEngine,
    default_rules,
)
from repro.replay.clock import ReplayPacer


@dataclass(frozen=True)
class OnsetEvent:
    """One coalesced-run start observed during replay (ground-truth feed)."""

    time: float
    node_id: str
    pci_bus: str
    xid: int


@dataclass
class ReplayOutcome:
    """Everything one replay produced, in delivery order."""

    records: int = 0
    onsets: int = 0
    alarms: int = 0
    time_min: Optional[float] = None
    time_max: Optional[float] = None
    alerts: Tuple[Alert, ...] = ()
    onset_events: Tuple[OnsetEvent, ...] = ()
    serials: Tuple[Tuple[str, str], ...] = ()
    #: Wall seconds the replay took on the pacer's clock (virtual under a
    #: virtual clock); 0.0 when nothing was replayed.
    wall_seconds: float = 0.0

    @property
    def span_seconds(self) -> float:
        if self.time_min is None or self.time_max is None:
            return 0.0
        return self.time_max - self.time_min

    @property
    def speedup(self) -> float:
        """Achieved simulated-seconds per wall-second."""
        if self.wall_seconds <= 0:
            return float("inf") if self.span_seconds > 0 else 0.0
        return self.span_seconds / self.wall_seconds

    def alerts_of(self, rule: str) -> List[Alert]:
        return [a for a in self.alerts if a.rule == rule]


class ReplayEngine:
    """One replay session over a record stream.

    The engine owns fresh registry/rule-engine instances per session, so
    repeated replays never share state.  ``sinks`` receive alerts live
    (paced), exactly as the service's sinks would; the outcome always
    carries the full alert list regardless.
    """

    def __init__(
        self,
        *,
        rules: Optional[Iterable[AlertRule]] = None,
        sinks: Sequence[AlertSink] = (),
        risk_scorer: Optional[RiskScorer] = None,
        pacer: Optional[ReplayPacer] = None,
        n_shards: int = 8,
        window_seconds: float = 5.0,
        max_persistence: float = 86_400.0,
        alarm_after_seconds: float = 1_800.0,
        rate_window_seconds: float = 3_600.0,
    ) -> None:
        self.pacer = pacer if pacer is not None else ReplayPacer(None)
        self.registry = HealthRegistry(
            n_shards=n_shards,
            window_seconds=window_seconds,
            max_persistence=max_persistence,
            alarm_after_seconds=alarm_after_seconds,
            rate_window_seconds=rate_window_seconds,
            risk_scorer=risk_scorer,
            clock=self.pacer.monotonic,
        )
        self._memory = MemorySink()
        self.engine = RuleEngine(
            default_rules() if rules is None else rules,
            sinks=(self._memory, *sinks),
        )

    @property
    def rule_names(self) -> Tuple[str, ...]:
        return tuple(rule.name for rule in self.engine.rules)

    def replay(self, records: Iterable[RawXidRecord]) -> ReplayOutcome:
        """Deliver the stream; returns the complete outcome."""
        from repro import obs

        pacer = self.pacer
        outcome = ReplayOutcome()
        onset_events: List[OnsetEvent] = []
        serials: Dict[Tuple[str, str], None] = {}
        wall_start: Optional[float] = None
        waited_before = pacer.waited
        with obs.span("replay.replay", speed=pacer.speed) as span:
            for record in records:
                pacer.wait_until(record.time)
                if wall_start is None:
                    wall_start = pacer.monotonic()
                result = self.registry.ingest(record)
                outcome.records += 1
                serials.setdefault(record.gpu_key)
                if outcome.time_min is None or record.time < outcome.time_min:
                    outcome.time_min = record.time
                if outcome.time_max is None or record.time > outcome.time_max:
                    outcome.time_max = record.time
                if result.onset:
                    outcome.onsets += 1
                    onset_events.append(
                        OnsetEvent(
                            time=record.time,
                            node_id=record.node_id,
                            pci_bus=record.pci_bus,
                            xid=record.xid,
                        )
                    )
                    self.engine.observe_onset(record, result.health)
                if result.alarm is not None:
                    outcome.alarms += 1
                    self.engine.observe_alarm(result.alarm)
            if wall_start is not None:
                outcome.wall_seconds = pacer.monotonic() - wall_start
            outcome.alerts = tuple(self._memory.alerts)
            outcome.onset_events = tuple(onset_events)
            # Insertion (= first-seen) order keeps the tuple deterministic.
            outcome.serials = tuple(serials)
            span.add("replay.records", outcome.records)
            span.add("replay.onsets", outcome.onsets)
            span.add("replay.alarms", outcome.alarms)
            span.add("replay.alerts", len(outcome.alerts))
            span.add("replay.waited_seconds", pacer.waited - waited_before)
        return outcome
