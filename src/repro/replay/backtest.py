"""Score the fleet stack's alerts and predictions against ground truth.

A backtest replays stored history through the real stack
(:class:`~repro.replay.engine.ReplayEngine`) and grades what came out:

* **ground truth** — critical failures are XID-79 (GPU fallen off the
  bus) onsets, merged per node into *incidents* (one hardware loss can
  emit several onsets while the node thrashes);
* **alert scoring** — an alert is *matched* when an incident lands on
  its node within the forward ``horizon_seconds`` (an alert at the
  incident instant matches with zero lead); per-rule precision, incident
  recall, and the false-alarm rate per GPU-day fall out;
* **lead time** — per incident, every in-horizon alert contributes
  ``incident - alert`` seconds; the distribution is reported per rule
  and as the per-incident best (earliest alert) summary;
* **prediction scoring** — a second pass over the same history extracts
  completed runs, fits the Section-4.3 persistence predictor on the
  earlier ``train_fraction`` and sweeps a fixed threshold grid on the
  held-out tail (PR curve + average precision).

The scorecard is a standard :class:`~repro.results.ExperimentResult`
(schema ``repro.results/1``), and it is *reproducible to the byte*: the
run id digests the scoring config and the source fingerprint, the
manifest timestamp is the history's own ``time_max``, and nothing in the
scoring path reads the wall clock or an RNG — so the same history gives
the same bytes at any replay speed, on any worker count, on any day.
"""

from __future__ import annotations

import statistics
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import __version__
from repro.core.parsing import RawXidRecord
from repro.core.prediction import (
    PersistencePredictor,
    average_precision,
    extract_runs,
    pr_curve,
)
from repro.replay.clock import ReplayPacer
from repro.replay.engine import OnsetEvent, ReplayEngine, ReplayOutcome
from repro.results import (
    ExperimentResult,
    Metric,
    ResultTable,
    RunManifest,
    config_digest,
)

#: A fresh, re-iterable view of the history under test.  Called twice:
#: once for the replay pass, once for the prediction pass.
RecordStreamFactory = Callable[[], Iterable[RawXidRecord]]

#: Fixed operating-point grid for the predictor sweep — explicit so the
#: PR table's shape (and bytes) never depends on the score values.
DEFAULT_THRESHOLDS: Tuple[float, ...] = tuple(
    round(0.05 * step, 2) for step in range(1, 20)
)


@dataclass(frozen=True)
class BacktestConfig:
    """Scoring knobs.  Pacing speed is deliberately *not* here: speed
    changes delivery timing, never results, so it must not perturb the
    run id."""

    #: The ground-truth critical failure code (XID 79, hardware loss).
    critical_xid: int = 79
    #: Per-node onsets of the critical code closer than this merge into
    #: one incident.
    incident_merge_seconds: float = 3_600.0
    #: Forward window an alert has to "call" an incident.
    horizon_seconds: float = 3_600.0
    #: Stack knobs (mirror the live service defaults).
    n_shards: int = 8
    coalesce_window_seconds: float = 5.0
    alarm_after_seconds: float = 1_800.0
    #: Predictor pass.
    long_threshold_seconds: float = 600.0
    observe_seconds: float = 300.0
    train_fraction: float = 0.5
    thresholds: Tuple[float, ...] = DEFAULT_THRESHOLDS

    def __post_init__(self) -> None:
        if self.incident_merge_seconds <= 0 or self.horizon_seconds <= 0:
            raise ValueError("merge and horizon windows must be positive")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")


@dataclass(frozen=True)
class Incident:
    """One ground-truth critical failure (merged XID-79 episode)."""

    node_id: str
    time: float
    last_time: float
    n_onsets: int


def extract_incidents(
    onset_events: Sequence[OnsetEvent],
    *,
    critical_xid: int,
    merge_seconds: float,
) -> Tuple[Incident, ...]:
    """Merge per-node critical onsets into incidents (gap rule)."""
    per_node: Dict[str, List[float]] = {}
    for event in onset_events:
        if event.xid == critical_xid:
            per_node.setdefault(event.node_id, []).append(event.time)
    incidents: List[Incident] = []
    for node_id in sorted(per_node):
        times = sorted(per_node[node_id])
        start = last = times[0]
        count = 1
        for moment in times[1:]:
            if moment - last > merge_seconds:
                incidents.append(Incident(node_id, start, last, count))
                start, count = moment, 0
            last = moment
            count += 1
        incidents.append(Incident(node_id, start, last, count))
    incidents.sort(key=lambda i: (i.time, i.node_id))
    return tuple(incidents)


@dataclass(frozen=True)
class RuleScore:
    """One rule's scorecard row."""

    rule: str
    alerts: int
    matched: int
    recalled_incidents: int
    leads: Tuple[float, ...]

    @property
    def precision(self) -> float:
        return self.matched / self.alerts if self.alerts else 0.0

    def recall(self, n_incidents: int) -> float:
        return self.recalled_incidents / n_incidents if n_incidents else 0.0


def _score_rules(
    outcome: ReplayOutcome,
    incidents: Sequence[Incident],
    rule_names: Sequence[str],
    horizon: float,
) -> List[RuleScore]:
    scores: List[RuleScore] = []
    for name in rule_names:
        alerts = outcome.alerts_of(name)
        matched = 0
        leads: List[float] = []
        recalled = set()
        for alert in alerts:
            hit = False
            for index, incident in enumerate(incidents):
                if incident.node_id != alert.node_id:
                    continue
                lead = incident.time - alert.time
                if 0.0 <= lead <= horizon:
                    hit = True
                    leads.append(lead)
                    recalled.add(index)
            if hit:
                matched += 1
        scores.append(
            RuleScore(
                rule=name,
                alerts=len(alerts),
                matched=matched,
                recalled_incidents=len(recalled),
                leads=tuple(sorted(leads)),
            )
        )
    return scores


def _best_leads(
    outcome: ReplayOutcome, incidents: Sequence[Incident], horizon: float
) -> List[float]:
    """Per incident: the earliest in-horizon alert's lead (its best call)."""
    best: List[float] = []
    for incident in incidents:
        leads = [
            incident.time - alert.time
            for alert in outcome.alerts
            if alert.node_id == incident.node_id
            and 0.0 <= incident.time - alert.time <= horizon
        ]
        if leads:
            best.append(max(leads))
    return best


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def _lead_row(name: str, leads: Sequence[float]) -> Tuple:
    if not leads:
        return (name, 0, 0.0, 0.0, 0.0, 0.0)
    return (
        name,
        len(leads),
        _round(min(leads)),
        _round(statistics.median(leads)),
        _round(statistics.fmean(leads)),
        _round(max(leads)),
    )


def run_backtest(
    source_factory: RecordStreamFactory,
    config: BacktestConfig = BacktestConfig(),
    *,
    pacer: Optional[ReplayPacer] = None,
    source_label: str = "",
    source_fingerprint: str = "",
) -> ExperimentResult:
    """Replay, score, and return the typed scorecard."""
    engine = ReplayEngine(
        pacer=pacer,
        n_shards=config.n_shards,
        window_seconds=config.coalesce_window_seconds,
        alarm_after_seconds=config.alarm_after_seconds,
    )
    outcome = engine.replay(source_factory())

    incidents = extract_incidents(
        outcome.onset_events,
        critical_xid=config.critical_xid,
        merge_seconds=config.incident_merge_seconds,
    )
    rule_scores = _score_rules(
        outcome, incidents, engine.rule_names, config.horizon_seconds
    )
    matched_total = sum(s.matched for s in rule_scores)
    alerts_total = len(outcome.alerts)
    recalled_any = set()
    for index, incident in enumerate(incidents):
        for alert in outcome.alerts:
            if (
                alert.node_id == incident.node_id
                and 0.0 <= incident.time - alert.time <= config.horizon_seconds
            ):
                recalled_any.add(index)
                break
    span_days = outcome.span_seconds / 86_400.0
    gpu_days = len(outcome.serials) * span_days
    false_alarms = alerts_total - matched_total
    best_leads = _best_leads(outcome, incidents, config.horizon_seconds)

    # ---- prediction pass -------------------------------------------------
    examples = extract_runs(
        source_factory(),
        window_seconds=config.coalesce_window_seconds,
        observe_seconds=config.observe_seconds,
    )
    n_train = int(len(examples) * config.train_fraction)
    train, test = examples[:n_train], examples[n_train:]
    pr_rows: List[Tuple] = []
    ap = 0.0
    test_positives = 0
    if train and test:
        predictor = PersistencePredictor(
            long_threshold_seconds=config.long_threshold_seconds
        )
        predictor.fit(train)
        labels = [bool(v) for v in predictor.labels(test)]
        scores = [float(s) for s in predictor.predict_proba(test)]
        test_positives = sum(labels)
        for point in pr_curve(labels, scores, config.thresholds):
            pr_rows.append(
                (
                    point.threshold,
                    _round(point.precision),
                    _round(point.recall),
                    point.predicted_positives,
                )
            )
        ap = average_precision(labels, scores)

    # ---- the scorecard ---------------------------------------------------
    n_incidents = len(incidents)
    scorecard_rows = tuple(
        (
            s.rule,
            s.alerts,
            s.matched,
            _round(s.precision),
            _round(s.recall(n_incidents)),
            _round((s.alerts - s.matched) / gpu_days) if gpu_days else 0.0,
            _round(statistics.median(s.leads)) if s.leads else 0.0,
        )
        for s in rule_scores
    )
    lead_rows = tuple(
        _lead_row(s.rule, s.leads) for s in rule_scores if s.leads
    ) + ((_lead_row("(per-incident best)", best_leads),) if best_leads else ())

    run_id = "replay-" + config_digest(
        {
            "backtest": asdict(config),
            "rules": list(engine.rule_names),
            "source": source_fingerprint,
        }
    )
    manifest = RunManifest(
        run_id=run_id,
        workers=None,
        window_hours=_round(outcome.span_seconds / 3_600.0),
        n_nodes=len({node for node, _ in outcome.serials}),
        n_gpus=len(outcome.serials),
        engine="replay",
        dataset=source_label or None,
        config_hashes={
            "backtest": config_digest(config),
            "source": source_fingerprint,
        },
        package_version=__version__,
        # Event time, not wall time: the artifact's bytes must not
        # depend on when the backtest ran.
        created_unix=outcome.time_max,
    )
    metrics = (
        Metric("records_replayed", outcome.records),
        Metric("error_onsets", outcome.onsets),
        Metric("persistence_alarms", outcome.alarms),
        Metric("gpu_serials", len(outcome.serials)),
        Metric("window_days", _round(span_days), unit="days"),
        Metric("gpu_days", _round(gpu_days), unit="GPU-days"),
        Metric("incidents", n_incidents,
               support=n_incidents),
        Metric("alerts_total", alerts_total),
        Metric("alerts_matched", matched_total),
        Metric(
            "alert_precision",
            _round(matched_total / alerts_total) if alerts_total else 0.0,
            support=alerts_total,
        ),
        Metric(
            "incident_recall",
            _round(len(recalled_any) / n_incidents) if n_incidents else 0.0,
            support=n_incidents,
        ),
        Metric(
            "false_alarms_per_gpu_day",
            _round(false_alarms / gpu_days) if gpu_days else 0.0,
            unit="/GPU-day",
        ),
        Metric(
            "median_lead_seconds",
            _round(statistics.median(best_leads)) if best_leads else 0.0,
            unit="s",
            support=len(best_leads),
        ),
        Metric(
            "max_lead_seconds",
            _round(max(best_leads)) if best_leads else 0.0,
            unit="s",
        ),
        Metric("predictor_runs_train", len(train)),
        Metric("predictor_runs_test", len(test)),
        Metric("predictor_test_positives", test_positives),
        Metric(
            "predictor_average_precision",
            _round(ap),
            support=len(test),
        ),
    )
    tables = (
        ResultTable(
            title="Per-rule alert scorecard",
            headers=("rule", "alerts", "matched", "precision", "recall",
                     "false/GPU-day", "median lead (s)"),
            rows=scorecard_rows,
        ),
        ResultTable(
            title="Lead-time distribution (alert -> critical failure)",
            headers=("rule", "pairs", "min (s)", "median (s)", "mean (s)",
                     "max (s)"),
            rows=lead_rows,
        ),
        ResultTable(
            title="Predictor PR curve (held-out runs)",
            headers=("threshold", "precision", "recall", "predicted"),
            rows=tuple(pr_rows),
        ),
    )
    return ExperimentResult(
        experiment_id="replay.backtest",
        paper_artifact="Section 4 operator guidance (backtested)",
        title="Replay backtest: alerts and predictions vs ground truth",
        renderer="replay_backtest",
        metrics=metrics,
        tables=tables,
        manifest=manifest,
    )
