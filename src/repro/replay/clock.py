"""Virtual clocks and the replay pacer.

Determinism contract: nothing in the replay stack *computes* with the
wall clock — every analytic decision keys off record event time.  The
only job of wall time is *pacing*: deciding when the next stored record
is delivered.  :class:`ReplayPacer` owns that mapping (event seconds ->
wall seconds at a chosen speed factor), and both of its time primitives
are injectable, so a test can drive a 2-day trace through a 1x "real
time" replay in microseconds with a :class:`VirtualClock` — and prove
the results are byte-identical to the unbounded run.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class VirtualClock:
    """A controllable ``(monotonic, sleep)`` pair for deterministic tests.

    ``sleep`` advances the clock instead of blocking, so code paced
    against a virtual clock runs flat-out in wall time while *believing*
    it waited.  Thread-safety is intentionally out of scope: replay
    delivery is single-threaded by design (that is what makes it
    deterministic).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.total_slept = 0.0

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds
            self.total_slept += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without counting it as sleep."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds


class ReplayPacer:
    """Map event time onto wall time at a fixed speed factor.

    ``speed`` is simulated seconds per wall second: ``1.0`` replays in
    real time, ``100.0`` compresses 100x, ``None`` (or ``inf``) delivers
    flat-out with no waiting at all.  The first event anchors the
    mapping; a backward jump in event time (a seek, a restarted feed)
    simply re-anchors — pacing never blocks on the past.
    """

    def __init__(
        self,
        speed: Optional[float] = None,
        *,
        monotonic: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if speed is not None and speed <= 0:
            raise ValueError("speed must be positive (or None for unbounded)")
        if speed is not None and speed == float("inf"):
            speed = None
        self.speed = speed
        self.monotonic = monotonic
        self.sleep = sleep
        self._wall_anchor: Optional[float] = None
        self._event_anchor: Optional[float] = None
        #: Total wall seconds spent waiting (virtual seconds under a
        #: :class:`VirtualClock`).
        self.waited = 0.0

    @property
    def unbounded(self) -> bool:
        return self.speed is None

    def reset(self) -> None:
        """Forget the anchor; the next event re-anchors the mapping."""
        self._wall_anchor = None
        self._event_anchor = None

    def wait_until(self, event_time: float) -> None:
        """Block (via the injected ``sleep``) until ``event_time`` is due."""
        if self.speed is None:
            return
        if self._event_anchor is None or event_time < self._event_anchor:
            # First event, or an event-time regression: re-anchor "now".
            self._event_anchor = event_time
            self._wall_anchor = self.monotonic()
            return
        due = self._wall_anchor + (event_time - self._event_anchor) / self.speed
        delay = due - self.monotonic()
        if delay > 0:
            self.sleep(delay)
            self.waited += delay
