"""The DVFS control loop and the PMU->MMU failure cascade.

Healthy operation: every control tick the driver reads temperature and
power over SPI and programs the next (frequency, voltage) operating point.
When an SPI read fails (XID 122), the loop is flying blind: clocks cannot
be changed ("inability to change the GPU core clock frequency", paper
finding ii), so the part keeps running at a *stale* operating point while
thermal/power conditions move on.  Running memory traffic at a mismatched
voltage-frequency point makes address-translation logic marginal — MMU
faults (XID 31) follow with high probability.  This module derives the
paper's PMU->MMU ~0.82 edge from that mechanism instead of assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.pmu.spi import SpiBus, SpiResult
from repro.util.validation import check_probability


@dataclass(frozen=True)
class OperatingPoint:
    """A DVFS state: core clock (MHz) with its matched voltage (mV)."""

    frequency_mhz: int
    voltage_mv: int

    def mismatch(self, demanded: "OperatingPoint") -> float:
        """Relative operating-point error vs what conditions demand."""
        df = abs(self.frequency_mhz - demanded.frequency_mhz) / max(
            demanded.frequency_mhz, 1
        )
        dv = abs(self.voltage_mv - demanded.voltage_mv) / max(demanded.voltage_mv, 1)
        return df + dv


#: The A100-style DVFS table, low to high.
DVFS_TABLE: Tuple[OperatingPoint, ...] = (
    OperatingPoint(765, 700),
    OperatingPoint(1_065, 775),
    OperatingPoint(1_275, 825),
    OperatingPoint(1_410, 875),
)

#: PMU register numbers on the SPI bus.
REG_TEMPERATURE = 0x10
REG_POWER = 0x11
REG_PSTATE = 0x20


@dataclass
class DvfsReport:
    ticks: int = 0
    spi_failures: int = 0  # XID 122 events
    stale_ticks: int = 0
    mmu_faults: int = 0  # XID 31 events caused by stale operation
    #: Per-cascade bookkeeping: SPI failures whose stale window produced at
    #: least one MMU fault (the paper's 0.82 numerator).
    failures_with_mmu: int = 0

    @property
    def p_mmu_given_spi_failure(self) -> float:
        if self.spi_failures == 0:
            return float("nan")
        return self.failures_with_mmu / self.spi_failures


class DvfsController:
    """The driver-side control loop over one GPU's PMU.

    ``mmu_hazard_per_mismatch`` converts operating-point error into a
    per-tick MMU-fault probability while memory traffic runs; the stale
    window after an SPI failure lasts ``stale_ticks_after_failure`` ticks
    (until the driver re-establishes communication).
    """

    def __init__(
        self,
        bus: SpiBus | None = None,
        *,
        mmu_hazard_per_mismatch: float = 1.2,
        stale_ticks_after_failure: int = 3,
    ) -> None:
        self.bus = bus or SpiBus()
        self.mmu_hazard_per_mismatch = mmu_hazard_per_mismatch
        self.stale_ticks_after_failure = stale_ticks_after_failure
        self.current = DVFS_TABLE[0]
        self.report = DvfsReport()
        self._stale_remaining = 0
        self._current_cascade_faulted: Optional[bool] = None

    # ------------------------------------------------------------------

    @staticmethod
    def demanded_point(load: float) -> OperatingPoint:
        """The operating point conditions demand at a given load in [0,1]."""
        check_probability("load", load)
        index = min(int(load * len(DVFS_TABLE)), len(DVFS_TABLE) - 1)
        return DVFS_TABLE[index]

    def tick(self, load: float, rng: np.random.Generator) -> List[int]:
        """One control interval; returns XIDs logged during it."""
        self.report.ticks += 1
        xids: List[int] = []
        demanded = self.demanded_point(load)

        if self._stale_remaining > 0:
            self._stale_remaining -= 1
            self.report.stale_ticks += 1
            if self._stale_remaining == 0:
                self._end_cascade()
        else:
            status, _temp = self.bus.read(REG_TEMPERATURE, rng)
            if status is SpiResult.READ_FAILURE:
                xids.append(122)
                self.report.spi_failures += 1
                self._stale_remaining = self.stale_ticks_after_failure
                self._current_cascade_faulted = False
            else:
                # Healthy: program the demanded point.
                self.bus.write(REG_PSTATE, demanded.frequency_mhz, rng)
                self.current = demanded

        # Memory traffic runs every tick; a stale operating point is a
        # hazard proportional to the mismatch.
        mismatch = self.current.mismatch(demanded)
        if mismatch > 0:
            hazard = min(1.0, self.mmu_hazard_per_mismatch * mismatch)
            if rng.random() < hazard:
                xids.append(31)
                self.report.mmu_faults += 1
                if self._current_cascade_faulted is False:
                    self._current_cascade_faulted = True
        return xids

    def _end_cascade(self) -> None:
        if self._current_cascade_faulted:
            self.report.failures_with_mmu += 1
        self._current_cascade_faulted = None

    # ------------------------------------------------------------------

    def run(
        self,
        n_ticks: int,
        rng: np.random.Generator,
        *,
        load_profile: Optional[np.ndarray] = None,
    ) -> DvfsReport:
        """Run the loop under a (varying) load profile."""
        if load_profile is None:
            load_profile = rng.uniform(0.0, 1.0, size=n_ticks)
        for i in range(n_ticks):
            self.tick(float(load_profile[i % len(load_profile)]), rng)
        # Close any cascade still open at the end of the run.
        if self._stale_remaining > 0:
            self._end_cascade()
            self._stale_remaining = 0
        return self.report
