"""A Serial Peripheral Interface bus with fault injection.

The PMU talks to the driver over SPI; a transaction is a small framed
register read/write.  Corruption (electrical noise, marginal wiring — the
class of integration fault the paper attributes peripheral errors to) is
caught by a frame parity/echo check and retried; a read that exhausts its
retries is the "PMU SPI RPC read failure" of XID 122.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.util.validation import check_probability


class SpiResult(enum.Enum):
    OK = "ok"
    READ_FAILURE = "read_failure"  # XID 122 after retries


@dataclass
class SpiConfig:
    #: Per-transaction corruption probability (healthy bus ~1e-9; a
    #: marginal connector orders of magnitude worse).
    corruption_prob: float = 1e-6
    max_retries: int = 2

    def __post_init__(self) -> None:
        check_probability("corruption_prob", self.corruption_prob)
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


@dataclass
class SpiBus:
    """The bus plus the PMU's register file behind it."""

    config: SpiConfig = field(default_factory=SpiConfig)
    registers: Dict[int, int] = field(default_factory=dict)
    transactions: int = 0
    corruptions: int = 0
    read_failures: int = 0

    def write(self, register: int, value: int, rng: np.random.Generator) -> SpiResult:
        ok = self._transact(rng)
        if ok:
            self.registers[register] = value
            return SpiResult.OK
        return SpiResult.READ_FAILURE

    def read(self, register: int, rng: np.random.Generator) -> Tuple[SpiResult, Optional[int]]:
        if self._transact(rng):
            return SpiResult.OK, self.registers.get(register, 0)
        return SpiResult.READ_FAILURE, None

    def _transact(self, rng: np.random.Generator) -> bool:
        """One framed transaction with retry; False = XID-122-class failure."""
        for _attempt in range(self.config.max_retries + 1):
            self.transactions += 1
            if rng.random() >= self.config.corruption_prob:
                return True
            self.corruptions += 1
        self.read_failures += 1
        return False
