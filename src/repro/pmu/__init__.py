"""Power Management Unit (PMU) substrate.

Paper finding (iii)/(ii): communication failures with the PMU over the
Serial Peripheral Interface ("PMU SPI errors", XID 122) cause power
management issues — "inability to change the GPU core clock frequency and
memory clock frequency" — and propagate to MMU errors with probability
0.82, almost always killing the job.  Incident 2 (Figure 8) narrates one
such cascade.

The mechanism, modelled:

* :mod:`repro.pmu.spi` — an SPI bus whose transactions can corrupt; a
  failed read after retries is the XID-122 event;
* :mod:`repro.pmu.dvfs` — the DVFS control loop: the driver reads
  temperature/power over SPI and programs clocks; when SPI fails, the
  clock state goes *stale*, and running memory traffic at a stale
  voltage/frequency operating point makes MMU faults (XID 31) likely —
  the PMU→MMU edge, derived rather than assumed.
"""

from repro.pmu.spi import SpiBus, SpiConfig, SpiResult
from repro.pmu.dvfs import DvfsController, DvfsReport, OperatingPoint

__all__ = [
    "SpiBus",
    "SpiConfig",
    "SpiResult",
    "DvfsController",
    "DvfsReport",
    "OperatingPoint",
]
