"""Read, aggregate and render trace directories.

A trace directory holds one ``*.trace.jsonl`` file per participating
process.  The reader stitches them back together: span ids are globally
unique (``pid.seq``), and worker files carry a ``parent`` meta pointing
at the dispatching span, so the cross-process tree reassembles without
any coordination at write time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.core import TRACE_FILE_SUFFIX
from repro.obs.schema import validate_record


@dataclass
class TraceData:
    """Everything parsed out of one trace directory."""

    spans: List[dict] = field(default_factory=list)
    metas: List[dict] = field(default_factory=list)
    counter_records: List[dict] = field(default_factory=list)
    #: ``(file, line_number, message)`` for malformed lines/records.
    problems: List[Tuple[str, int, str]] = field(default_factory=list)

    @property
    def trace_ids(self) -> List[str]:
        return sorted({m.get("trace") for m in self.metas if m.get("trace")})

    def counters(self) -> Dict[str, float]:
        """All counters in the trace, merged (span-scoped + orphans)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            for key, value in (span.get("counters") or {}).items():
                totals[key] = totals.get(key, 0) + value
        for record in self.counter_records:
            for key, value in (record.get("counters") or {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals


def read_trace_dir(directory: str | Path) -> TraceData:
    """Parse every trace file under ``directory`` (non-recursive)."""
    directory = Path(directory)
    data = TraceData()
    if not directory.is_dir():
        raise FileNotFoundError(f"trace directory not found: {directory}")
    for path in sorted(directory.glob(f"*{TRACE_FILE_SUFFIX}")):
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    data.problems.append((path.name, lineno, f"bad JSON: {exc}"))
                    continue
                issues = validate_record(record)
                if issues:
                    data.problems.append(
                        (path.name, lineno, "; ".join(issues))
                    )
                    continue
                kind = record["kind"]
                if kind == "span":
                    data.spans.append(record)
                elif kind == "meta":
                    data.metas.append(record)
                else:
                    data.counter_records.append(record)
    return data


# -- aggregation -----------------------------------------------------------


def subsystem_of(name: str) -> str:
    """Span names are dotted; the prefix before the first dot groups them."""
    return name.split(".", 1)[0]


def summarize(data: TraceData) -> dict:
    """Aggregate a trace: per-span and per-subsystem wall time, counters.

    Subsystem seconds use **self time** (span duration minus the summed
    duration of its direct children), so nested spans are not double
    counted and the per-subsystem column adds up to real wall time.
    """
    by_id = {s["id"]: s for s in data.spans}
    child_seconds: Dict[str, float] = {}
    for span in data.spans:
        parent = span.get("parent")
        if parent in by_id:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + span["dur"]

    per_span: Dict[str, dict] = {}
    per_subsystem: Dict[str, dict] = {}
    for span in data.spans:
        self_seconds = max(0.0, span["dur"] - child_seconds.get(span["id"], 0.0))
        entry = per_span.setdefault(
            span["name"], {"calls": 0, "seconds": 0.0, "self_seconds": 0.0}
        )
        entry["calls"] += 1
        entry["seconds"] += span["dur"]
        entry["self_seconds"] += self_seconds
        sub = per_subsystem.setdefault(
            subsystem_of(span["name"]), {"spans": 0, "self_seconds": 0.0}
        )
        sub["spans"] += 1
        sub["self_seconds"] += self_seconds

    roots = [s for s in data.spans if s.get("parent") not in by_id]
    wall = 0.0
    if roots:
        start = min(s["start"] for s in roots)
        end = max(s["start"] + s["dur"] for s in roots)
        wall = end - start

    counters = data.counters()
    summary = {
        "trace_ids": data.trace_ids,
        "processes": len(data.metas),
        "n_spans": len(data.spans),
        "wall_seconds": wall,
        "spans": per_span,
        "subsystems": per_subsystem,
        "counters": counters,
        "pruning": pruning_ratios(counters),
        "problems": len(data.problems),
    }
    return summary


def pruning_ratios(counters: Dict[str, float]) -> dict:
    """The store's pushdown effectiveness, from its counters."""
    planned = counters.get("store.segments_planned", 0)
    pruned = counters.get("store.segments_pruned", 0)
    scanned = counters.get("store.rows_scanned", 0)
    matched = counters.get("store.rows_matched", 0)
    return {
        "segments_planned": planned,
        "segments_pruned": pruned,
        "segments_pruned_fraction": (pruned / planned) if planned else None,
        "rows_scanned": scanned,
        "rows_matched": matched,
        "rows_matched_fraction": (matched / scanned) if scanned else None,
    }


# -- rendering -------------------------------------------------------------


def render_summary(summary: dict) -> str:
    lines: List[str] = []
    ids = ", ".join(summary["trace_ids"]) or "(none)"
    lines.append(f"trace {ids}")
    lines.append(
        f"  {summary['n_spans']} spans over {summary['processes']} process(es), "
        f"wall {summary['wall_seconds']:.3f} s"
    )
    lines.append("")
    lines.append("per-subsystem self time")
    lines.append(f"  {'subsystem':<12} {'spans':>7} {'self s':>10}")
    for name in sorted(
        summary["subsystems"],
        key=lambda n: -summary["subsystems"][n]["self_seconds"],
    ):
        sub = summary["subsystems"][name]
        lines.append(
            f"  {name:<12} {sub['spans']:>7} {sub['self_seconds']:>10.3f}"
        )
    lines.append("")
    lines.append("per-span totals")
    lines.append(f"  {'span':<32} {'calls':>7} {'total s':>10} {'self s':>10}")
    for name in sorted(
        summary["spans"], key=lambda n: -summary["spans"][n]["seconds"]
    ):
        entry = summary["spans"][name]
        lines.append(
            f"  {name:<32} {entry['calls']:>7} "
            f"{entry['seconds']:>10.3f} {entry['self_seconds']:>10.3f}"
        )
    pruning = summary["pruning"]
    if pruning["segments_planned"] or pruning["rows_scanned"]:
        lines.append("")
        lines.append("store pushdown")
        frac = pruning["segments_pruned_fraction"]
        lines.append(
            f"  segments pruned : {pruning['segments_pruned']:.0f} / "
            f"{pruning['segments_planned']:.0f}"
            + (f"  ({frac:.1%})" if frac is not None else "")
        )
        frac = pruning["rows_matched_fraction"]
        lines.append(
            f"  rows matched    : {pruning['rows_matched']:.0f} / "
            f"{pruning['rows_scanned']:.0f}"
            + (f"  ({frac:.1%})" if frac is not None else "")
        )
    if summary["counters"]:
        lines.append("")
        lines.append("counters")
        for key in sorted(summary["counters"]):
            value = summary["counters"][key]
            rendered = f"{value:.6g}" if value != int(value) else f"{int(value):,}"
            lines.append(f"  {key:<32} {rendered:>14}")
    if summary["problems"]:
        lines.append("")
        lines.append(f"WARNING: {summary['problems']} malformed record(s)")
    return "\n".join(lines)


def build_tree(data: TraceData) -> List[dict]:
    """Nest spans into forests keyed by parent id (cross-process too).

    Returns the root nodes, each ``{"span": record, "children": [...]}``,
    ordered by start time.
    """
    nodes = {
        s["id"]: {"span": s, "children": []} for s in data.spans
    }
    roots: List[dict] = []
    for span in data.spans:
        node = nodes[span["id"]]
        parent = span.get("parent")
        if parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    def sort(children: List[dict]) -> None:
        children.sort(key=lambda n: n["span"]["start"])
        for child in children:
            sort(child["children"])
    sort(roots)
    return roots


def render_tree(data: TraceData, *, max_depth: Optional[int] = None) -> str:
    labels = {m.get("pid"): m.get("label", "?") for m in data.metas}
    lines: List[str] = []

    def walk(node: dict, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        span = node["span"]
        indent = "  " * depth
        extra = ""
        if span.get("counters"):
            bits = ", ".join(
                f"{k}={v:g}" for k, v in sorted(span["counters"].items())
            )
            extra = f"  [{bits}]"
        proc = labels.get(span["pid"], "?")
        lines.append(
            f"{indent}{span['name']}  {span['dur']*1000:.1f} ms"
            f"  ({proc}/{span['pid']}){extra}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in build_tree(data):
        walk(root, 0)
    return "\n".join(lines)
