"""Chrome trace-event export (loadable in Perfetto / chrome://tracing).

One ``ph: "X"`` complete event per span, timestamps and durations in
microseconds, plus ``ph: "M"`` process-name metadata events so the
Perfetto track names read ``main`` / ``worker`` instead of bare pids.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.obs.reader import TraceData


def to_chrome_events(data: TraceData) -> List[dict]:
    events: List[dict] = []
    for meta in data.metas:
        events.append({
            "ph": "M",
            "name": "process_name",
            "pid": meta["pid"],
            "tid": 0,
            "args": {"name": f"{meta.get('label', '?')} ({meta['pid']})"},
        })
    spans = sorted(data.spans, key=lambda s: s["start"])
    for span in spans:
        args = {}
        if span.get("attrs"):
            args.update(span["attrs"])
        if span.get("counters"):
            args.update(span["counters"])
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span["name"].split(".", 1)[0],
            "pid": span["pid"],
            "tid": span["tid"],
            "ts": span["start"] * 1e6,
            "dur": span["dur"] * 1e6,
            "args": args,
        })
    return events


def write_chrome_trace(data: TraceData, path: str | Path) -> Path:
    """Write ``{"traceEvents": [...]}`` JSON; returns the path."""
    path = Path(path)
    payload = {
        "traceEvents": to_chrome_events(data),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path
