"""Hierarchical span/counter tracing with a near-zero-overhead default.

The instrumentation contract mirrors what the paper's own telemetry
stack had to solve at 202 GB scale: the *measurement* layer must cost
nothing when idle and must never perturb the *measured* results.  Two
invariants follow:

* **Disabled is the default and it is almost free.**  ``obs.span(...)``
  returns a shared ``NULL_SPAN`` singleton when no tracer is active —
  one module-global read and one identity check on the hot path, no
  allocation, no clock read.
* **Tracing never changes outputs.**  Span timings live only in trace
  files and in the optional ``RunManifest.trace`` block, which is
  excluded from default serialization, from ``config_hashes`` and from
  every identity gate.  Reports, ``result.json`` and manifests are
  byte-identical with tracing on or off, serial or fanned out.

Process model: each process writes its **own** JSONL file inside the
trace directory (``{label}-{pid}-{token}.trace.jsonl``), so no
cross-process lock is ever taken.  Workers inherit a picklable
:class:`TraceContext` through pool initializers; their root spans are
parented under the dispatching span's id, which is how the trace reader
stitches a fan-out back into one tree.  A ``fork()`` while a tracer is
active abandons the inherited file handle in the child (the parent owns
it); pool initializers then activate a fresh per-process sink.

Records are written eagerly — one ``json.dumps`` + ``flush`` per
completed span — so a trace survives ``Pool.terminate()`` and crashed
workers with at most the in-flight span missing.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional

#: Version tag stamped into every trace file's ``meta`` record.
SCHEMA_VERSION = "repro.obs/1"

#: Every per-process trace file ends with this suffix.
TRACE_FILE_SUFFIX = ".trace.jsonl"


class _NullSpan:
    """The disabled-tracing span: every operation is a no-op.

    A single shared instance (``NULL_SPAN``) is returned by
    :func:`span` whenever no tracer is active, so the disabled path
    allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def add(self, name: str, value: float = 1) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed region, emitted as a ``span`` record when it closes."""

    __slots__ = (
        "tracer", "name", "span_id", "parent_id",
        "start_unix", "_start_perf", "attrs", "counters", "_tid",
    )

    def __init__(self, tracer: "Tracer", name: str, parent_id: Optional[str],
                 tid: int, **attrs) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = tracer._next_span_id()
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.counters: Dict[str, float] = {}
        self._tid = tid
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def add(self, name: str, value: float = 1) -> None:
        """Bump a named counter scoped to this span."""
        self.counters[name] = self.counters.get(name, 0) + value

    def __enter__(self) -> "Span":
        self.tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._finish(self)
        return False


@dataclass(frozen=True)
class TraceContext:
    """The picklable slice of a tracer shipped to worker processes.

    Pool initializers call :func:`activate_context` with one of these;
    the worker then writes its own trace file into the same directory,
    with root spans parented under ``parent_id`` (the dispatching span).
    """

    directory: str
    trace_id: str
    parent_id: Optional[str] = None
    label: str = "worker"


class Tracer:
    """An active trace: one JSONL sink for this process.

    Thread-safe: span stacks are thread-local, file writes serialize on
    one lock, counters merge under the same lock.  Not shared across
    processes — each process activates its own tracer (see
    :class:`TraceContext`).
    """

    def __init__(self, directory: str | Path, *, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None, label: str = "main") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.parent_id = parent_id
        self.label = label
        self.pid = os.getpid()
        token = uuid.uuid4().hex[:8]
        self.path = self.directory / (
            f"{label}-{self.pid}-{token}{TRACE_FILE_SUFFIX}"
        )
        # Span ids carry the per-tracer token, not just the pid: two
        # tracers can live in one process (worker contexts activated
        # in-process, pid reuse across a long fan-out), and a bare
        # pid.seq would collide and knot the reassembled tree.
        self._id_prefix = f"{self.pid:x}.{token}"
        self._file = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0
        self._local = threading.local()
        self._thread_aliases: Dict[int, int] = {}
        self._span_totals: Dict[str, list] = {}
        self._counter_totals: Dict[str, float] = {}
        self._orphan_counters: Dict[str, float] = {}
        self.closed = False
        self._write({
            "kind": "meta",
            "schema": SCHEMA_VERSION,
            "trace": self.trace_id,
            "pid": self.pid,
            "parent": self.parent_id,
            "label": self.label,
            "created": time.time(),
        })

    # -- plumbing ----------------------------------------------------------

    def _write(self, record: dict) -> None:
        with self._lock:
            if self._file is None:
                return
            self._file.write(json.dumps(record, default=str) + "\n")
            self._file.flush()

    def _next_span_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{self._id_prefix}.{self._seq:x}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_alias(self) -> int:
        ident = threading.get_ident()
        alias = self._thread_aliases.get(ident)
        if alias is None:
            with self._lock:
                alias = self._thread_aliases.setdefault(
                    ident, len(self._thread_aliases)
                )
        return alias

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        stack = self._stack()
        parent = stack[-1].span_id if stack else self.parent_id
        return Span(self, name, parent, self._thread_alias(), **attrs)

    def _begin(self, span: Span) -> None:
        self._stack().append(span)

    def _finish(self, span: Span) -> None:
        duration = time.perf_counter() - span._start_perf
        stack = self._stack()
        # Identity scan instead of a blind pop: a suspended generator's
        # span (span_iter) can close out of LIFO order.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break
        record = {
            "kind": "span",
            "trace": self.trace_id,
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start_unix,
            "dur": duration,
            "pid": self.pid,
            "tid": span._tid,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if span.counters:
            record["counters"] = span.counters
        self._write(record)
        with self._lock:
            total = self._span_totals.setdefault(span.name, [0, 0.0])
            total[0] += 1
            total[1] += duration
            for key, value in span.counters.items():
                self._counter_totals[key] = (
                    self._counter_totals.get(key, 0) + value
                )

    def add(self, name: str, value: float = 1) -> None:
        """Bump a counter outside any span (flushed on close)."""
        stack = self._stack()
        if stack:
            stack[-1].add(name, value)
            return
        with self._lock:
            self._orphan_counters[name] = self._orphan_counters.get(name, 0) + value
            self._counter_totals[name] = self._counter_totals.get(name, 0) + value

    # -- aggregate views ---------------------------------------------------

    def snapshot(self) -> dict:
        """Aggregate span/counter totals so far (for manifest stamping)."""
        with self._lock:
            return {
                "spans": {
                    name: {"calls": calls, "seconds": seconds}
                    for name, (calls, seconds) in self._span_totals.items()
                },
                "counters": dict(self._counter_totals),
            }

    def delta(self, before: dict) -> dict:
        """What happened since ``before`` (an earlier :meth:`snapshot`)."""
        now = self.snapshot()
        spans = {}
        for name, total in now["spans"].items():
            prior = before["spans"].get(name, {"calls": 0, "seconds": 0.0})
            calls = total["calls"] - prior["calls"]
            if calls > 0:
                spans[name] = {
                    "calls": calls,
                    "seconds": total["seconds"] - prior["seconds"],
                }
        counters = {}
        for name, value in now["counters"].items():
            diff = value - before["counters"].get(name, 0)
            if diff:
                counters[name] = diff
        return {"spans": spans, "counters": counters}

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._orphan_counters:
            self._write({
                "kind": "counters",
                "trace": self.trace_id,
                "pid": self.pid,
                "counters": dict(self._orphan_counters),
            })
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def _abandon(self) -> None:
        """Forget the sink without touching it (forked child's view)."""
        self.closed = True
        self._file = None


# -- module-level active tracer -------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The process's active tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def span(name: str, **attrs):
    """Open a span under the active tracer, or ``NULL_SPAN`` when off.

    The disabled path is the hot path: one global read, one ``is None``
    check, return a shared singleton.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def add(name: str, value: float = 1) -> None:
    """Bump a counter on the current span (no-op when tracing is off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.add(name, value)


def span_iter(name: str, iterable: Iterable, *, counter: Optional[str] = None,
              **attrs) -> Iterator:
    """Wrap an iterable in a span, optionally counting items.

    When tracing is off the iterable is returned untouched — zero
    per-item overhead.  When on, the span covers first ``next()`` to
    exhaustion (or abandonment: ``GeneratorExit`` closes it too).
    """
    tracer = _ACTIVE
    if tracer is None:
        return iter(iterable)
    return _traced_iter(tracer, name, iterable, counter, attrs)


def _traced_iter(tracer, name, iterable, counter, attrs):
    active_span = tracer.span(name, **attrs)
    active_span.__enter__()
    n = 0
    try:
        for item in iterable:
            n += 1
            yield item
    except BaseException as exc:  # noqa: BLE001 — GeneratorExit included
        if counter:
            active_span.add(counter, n)
        active_span.__exit__(type(exc), exc, exc.__traceback__)
        raise
    else:
        if counter:
            active_span.add(counter, n)
        active_span.__exit__(None, None, None)


def current_context(label: str = "worker") -> Optional[TraceContext]:
    """Capture the active tracer as a picklable worker context.

    Parents the worker under the innermost open span on the calling
    thread (or the tracer's own parent when none is open).
    """
    tracer = _ACTIVE
    if tracer is None:
        return None
    stack = tracer._stack()
    parent = stack[-1].span_id if stack else tracer.parent_id
    return TraceContext(
        directory=str(tracer.directory),
        trace_id=tracer.trace_id,
        parent_id=parent,
        label=label,
    )


def activate(directory: str | Path, *, label: str = "main") -> Tracer:
    """Start tracing into ``directory``; replaces any active tracer."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = Tracer(directory, label=label)
    return _ACTIVE


def activate_context(context: Optional[TraceContext]) -> Optional[Tracer]:
    """Worker-side activation from a shipped :class:`TraceContext`.

    ``None`` is accepted and ignored so pool initializers can pass the
    context through unconditionally.  Registers an ``atexit`` hook so
    long-lived pool workers flush their orphan counters on interpreter
    exit.
    """
    global _ACTIVE
    if context is None:
        return None
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = Tracer(
        context.directory,
        trace_id=context.trace_id,
        parent_id=context.parent_id,
        label=context.label,
    )
    atexit.register(deactivate)
    return _ACTIVE


def deactivate() -> None:
    """Stop tracing and close the sink (idempotent)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


def _forget_in_child() -> None:
    # A forked child inherits the parent's open file object; writing to
    # it would interleave with the parent.  Abandon (not close: closing
    # would flush buffered parent state twice) and start clean — pool
    # initializers re-activate from a TraceContext.
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE._abandon()
        _ACTIVE = None


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_forget_in_child)
