"""Thread-safe named counters for long-running services.

Traces are per-run artifacts; a fleet service needs *cumulative*
counters it can expose over ``/metrics`` for the life of the process.
:class:`CounterSet` is that: a lock-guarded name → float map the store
writer and registry feed increment, and the Prometheus exposition
renders.  Independent of the span tracer — no trace directory needed.
"""

from __future__ import annotations

import threading
from typing import Dict


class CounterSet:
    """Monotonic named counters, safe to bump from any thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, float] = {}

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def get(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._values.get(name, default)

    def values(self) -> Dict[str, float]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._values)
