"""repro.obs: run tracing and self-instrumentation.

Hierarchical spans and counters with a near-zero-overhead disabled
default, per-process JSONL sinks, picklable contexts for process-pool
fan-outs, trace-directory aggregation (summary / tree / Chrome
trace-event export), manifest stamping that stays out of every identity
gate, and :class:`CounterSet` for long-running services' ``/metrics``.

Instrumenting code imports the module and calls the three hot-path
functions — nothing else::

    from repro import obs

    with obs.span("store.segment.scan", segment=path.name) as s:
        s.add("store.rows_scanned", n)

CLI entry points activate/deactivate; workers activate from a shipped
:class:`TraceContext` in their pool initializer.
"""

from repro.obs.core import (
    NULL_SPAN,
    SCHEMA_VERSION,
    TRACE_FILE_SUFFIX,
    Span,
    TraceContext,
    Tracer,
    activate,
    activate_context,
    active,
    add,
    current_context,
    deactivate,
    enabled,
    span,
    span_iter,
)
from repro.obs.export import to_chrome_events, write_chrome_trace
from repro.obs.metrics import CounterSet
from repro.obs.reader import (
    TraceData,
    build_tree,
    read_trace_dir,
    render_summary,
    render_tree,
    summarize,
)
from repro.obs.schema import validate_record
from repro.obs.stamp import stamp_result, write_trace_manifest

__all__ = [
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "TRACE_FILE_SUFFIX",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "activate_context",
    "active",
    "add",
    "current_context",
    "deactivate",
    "enabled",
    "span",
    "span_iter",
    "to_chrome_events",
    "write_chrome_trace",
    "CounterSet",
    "TraceData",
    "build_tree",
    "read_trace_dir",
    "render_summary",
    "render_tree",
    "summarize",
    "validate_record",
    "stamp_result",
    "write_trace_manifest",
]
