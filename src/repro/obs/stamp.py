"""Stamp run manifests with trace summaries — outside the identity path.

``stamp_result`` attaches ``{trace id, spans, counters}`` to a result's
manifest and mirrors the stamped manifest into
``<trace dir>/manifests/<experiment id>.manifest.json``.  The returned
result still serializes byte-identically to an untraced run, because
``RunManifest.trace`` is excluded from default serialization — the
stamped view lives only in the trace directory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.obs.core import Tracer, active

if TYPE_CHECKING:  # pragma: no cover
    from repro.results.artifact import ExperimentResult, RunManifest

#: Subdirectory of a trace dir holding trace-stamped manifests.
MANIFEST_SUBDIR = "manifests"


def stamp_result(
    result: "ExperimentResult",
    *,
    tracer: Optional[Tracer] = None,
    before: Optional[dict] = None,
) -> "ExperimentResult":
    """Attach this run's span/counter delta to the result's manifest.

    ``before`` is a :meth:`Tracer.snapshot` taken when the experiment
    started; the stamp covers only what happened in between.  A no-op
    (returns ``result`` unchanged) when tracing is off or the result has
    no manifest.
    """
    tracer = tracer or active()
    if tracer is None or result.manifest is None:
        return result
    summary = tracer.delta(before) if before is not None else tracer.snapshot()
    stamped = result.manifest.stamped({
        "trace_id": tracer.trace_id,
        "spans": summary["spans"],
        "counters": summary["counters"],
    })
    result = result.with_manifest(stamped)
    write_trace_manifest(result, tracer)
    return result


def write_trace_manifest(result: "ExperimentResult", tracer: Tracer) -> Path:
    """Write the trace-stamped manifest into the trace directory."""
    directory = Path(tracer.directory) / MANIFEST_SUBDIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.manifest.json"
    assert result.manifest is not None
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.manifest.to_dict(with_trace=True), handle,
                  indent=2, sort_keys=False)
        handle.write("\n")
    return path
