"""Schema validation for trace records (``repro.obs/1``).

Hand-rolled like the results schema: one function per record kind,
returning a list of problems (empty = valid).  The trace CLI and the
identity tests both run every emitted record through this.
"""

from __future__ import annotations

from typing import List, Mapping

#: Record kinds a trace file may contain.
RECORD_KINDS = ("meta", "span", "counters")

_META_REQUIRED = {
    "kind": str,
    "schema": str,
    "trace": str,
    "pid": int,
    "label": str,
    "created": (int, float),
}

_SPAN_REQUIRED = {
    "kind": str,
    "trace": str,
    "id": str,
    "name": str,
    "start": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
}

_COUNTERS_REQUIRED = {
    "kind": str,
    "trace": str,
    "pid": int,
    "counters": dict,
}


def _check_fields(record: Mapping, required: Mapping, problems: List[str]) -> None:
    for field, types in required.items():
        if field not in record:
            problems.append(f"missing field {field!r}")
        elif not isinstance(record[field], types):
            problems.append(
                f"field {field!r} has type {type(record[field]).__name__}"
            )


def validate_record(record: object) -> List[str]:
    """Return problems with one parsed trace record (empty = valid)."""
    if not isinstance(record, Mapping):
        return ["record is not an object"]
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        return [f"unknown record kind {kind!r}"]
    problems: List[str] = []
    if kind == "meta":
        _check_fields(record, _META_REQUIRED, problems)
        from repro.obs.core import SCHEMA_VERSION

        if record.get("schema") not in (None, SCHEMA_VERSION):
            problems.append(
                f"unsupported schema {record.get('schema')!r}"
            )
    elif kind == "span":
        _check_fields(record, _SPAN_REQUIRED, problems)
        if isinstance(record.get("dur"), (int, float)) and record["dur"] < 0:
            problems.append("negative duration")
        if "attrs" in record and not isinstance(record["attrs"], dict):
            problems.append("field 'attrs' is not an object")
        if "counters" in record and not isinstance(record["counters"], dict):
            problems.append("field 'counters' is not an object")
        counters = record.get("counters")
        if isinstance(counters, dict):
            for key, value in counters.items():
                if not isinstance(value, (int, float)):
                    problems.append(f"counter {key!r} is not numeric")
    else:  # counters
        _check_fields(record, _COUNTERS_REQUIRED, problems)
        counters = record.get("counters")
        if isinstance(counters, dict):
            for key, value in counters.items():
                if not isinstance(value, (int, float)):
                    problems.append(f"counter {key!r} is not numeric")
    return problems
