"""Row remapping: spare-row bookkeeping (paper Section 2.3, Figure 3).

Ampere/Hopper HBM banks carry spare rows; when a row accumulates an
uncorrectable error (one DBE, or two SBEs at the same address), the GPU
remaps it onto a spare — a *row remapping event* (RRE, XID 63).  When the
bank's spares are exhausted the remap fails — a *row remapping failure*
(RRF, XID 64).  Remapping requires a GPU reset to take effect; an Ampere
GPU supports up to 512 remaps in total (Table 1 footnote).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

RowAddress = Tuple[int, int]  # (bank, row)


class RemapOutcome(enum.Enum):
    REMAPPED = "remapped"  # RRE (XID 63)
    FAILED = "failed"  # RRF (XID 64): no spare row available
    ALREADY_REMAPPED = "already_remapped"  # duplicate request, no event


@dataclass
class RowRemapper:
    """Spare-row accounting for one GPU's memory.

    ``spares_per_bank`` models the per-bank spare pool; ``max_total_remaps``
    is the device-wide Ampere budget of 512.
    """

    n_banks: int = 32
    spares_per_bank: int = 8
    max_total_remaps: int = 512
    _used: Dict[int, int] = field(default_factory=dict)
    _remapped: Set[RowAddress] = field(default_factory=set)
    _pending_reset: bool = False

    def __post_init__(self) -> None:
        if self.n_banks <= 0 or self.spares_per_bank < 0:
            raise ValueError("invalid remapper geometry")

    # ------------------------------------------------------------------

    @property
    def total_remapped(self) -> int:
        return len(self._remapped)

    @property
    def pending_reset(self) -> bool:
        """Remaps are staged until the next GPU reset (Figure 3's note)."""
        return self._pending_reset

    def spares_left(self, bank: int) -> int:
        self._check_bank(bank)
        return self.spares_per_bank - self._used.get(bank, 0)

    def is_remapped(self, address: RowAddress) -> bool:
        return address in self._remapped

    # ------------------------------------------------------------------

    def request_remap(self, address: RowAddress) -> RemapOutcome:
        """Attempt to remap a faulty row; returns the logged outcome."""
        bank, _row = address
        self._check_bank(bank)
        if address in self._remapped:
            return RemapOutcome.ALREADY_REMAPPED
        if self.total_remapped >= self.max_total_remaps:
            return RemapOutcome.FAILED
        if self.spares_left(bank) <= 0:
            return RemapOutcome.FAILED
        self._used[bank] = self._used.get(bank, 0) + 1
        self._remapped.add(address)
        self._pending_reset = True
        return RemapOutcome.REMAPPED

    def acknowledge_reset(self) -> None:
        """A GPU reset activates staged remaps."""
        self._pending_reset = False

    def exhaust_bank(self, bank: int) -> None:
        """Test/diagnostic helper: burn every spare of one bank.

        Stops early if the device-wide remap budget runs out first (the
        bank then cannot be exhausted further — every remap fails anyway).
        """
        self._check_bank(bank)
        row = 10_000
        while self.spares_left(bank) > 0:
            if self.request_remap((bank, row)) is not RemapOutcome.REMAPPED:
                break
            row += 1

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.n_banks:
            raise ValueError(f"bank out of range: {bank}")
