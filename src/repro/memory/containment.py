"""Uncorrectable-error containment and dynamic page offlining.

A100/H100 only (paper Section 2.3.2, Figure 3's dashed boxes): when an
uncorrectable error reaches a memory page, the GPU tries to *contain* it by
terminating exactly the processes using the poisoned address (XID 94) and
*offlining* the page so it is never allocated again — all without a GPU
reset.  If containment fails, the error is *uncontained* (XID 95) and the
GPU sits in an error state until a manual reset.

A40-class parts support neither mechanism: any DBE surfaces directly to the
application and the GPU needs a reset (the pre-Ampere behaviour the paper
contrasts against, citing Blue Waters/Titan).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

import numpy as np


class ContainmentOutcome(enum.Enum):
    CONTAINED = "contained"  # XID 94: affected process terminated
    UNCONTAINED = "uncontained"  # XID 95: GPU in error state, reset needed
    UNSUPPORTED = "unsupported"  # A40-class: no containment hardware


@dataclass(frozen=True)
class ContainmentResult:
    outcome: ContainmentOutcome
    page: int
    #: Process terminated by successful containment (None when the page was
    #: idle — containment still succeeds, nothing to kill).
    killed_pid: Optional[int] = None
    page_offlined: bool = False


@dataclass
class ContainmentUnit:
    """The containment + page-offlining state machine for one GPU.

    ``success_prob`` models the hardware's imperfect ability to fence the
    poisoned address before it propagates (the paper measures containment
    succeeding ~43% of the time after an RRF, with failures showing up as
    bursty uncontained errors).
    """

    supported: bool = True
    offlining_supported: bool = True
    success_prob: float = 0.43
    max_offlined_pages: int = 512
    _offlined: Set[int] = field(default_factory=set)
    _error_state: bool = False

    # ------------------------------------------------------------------

    @property
    def offlined_pages(self) -> int:
        return len(self._offlined)

    @property
    def in_error_state(self) -> bool:
        return self._error_state

    def is_offlined(self, page: int) -> bool:
        return page in self._offlined

    # ------------------------------------------------------------------

    def contain(
        self,
        page: int,
        rng: np.random.Generator,
        owning_pid: Optional[int] = None,
    ) -> ContainmentResult:
        """Attempt to contain an uncorrectable error on ``page``."""
        if not self.supported:
            self._error_state = True
            return ContainmentResult(ContainmentOutcome.UNSUPPORTED, page)
        if rng.random() >= self.success_prob:
            self._error_state = True
            return ContainmentResult(ContainmentOutcome.UNCONTAINED, page)
        offlined = False
        if self.offlining_supported and len(self._offlined) < self.max_offlined_pages:
            self._offlined.add(page)
            offlined = True
        return ContainmentResult(
            ContainmentOutcome.CONTAINED,
            page,
            killed_pid=owning_pid,
            page_offlined=offlined,
        )

    def reset(self) -> None:
        """A GPU reset clears the error state (offlined pages persist)."""
        self._error_state = False
