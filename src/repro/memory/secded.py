"""A (72,64) SECDED Hamming code.

Single-Error-Correct, Double-Error-Detect: the protection the paper states
for GPU caches and memory ("SECDED protected", Section 2.3.1).  64 data bits
are extended with 7 Hamming parity bits plus one overall parity bit:

* any single flipped bit produces a nonzero syndrome and odd overall
  parity — corrected in place (an SBE: fixed silently, never logged);
* any double flip produces a nonzero syndrome with even overall parity —
  detected but uncorrectable (a DBE: XID 48);
* triple and higher flips may alias, as in real hardware.

The implementation is bit-exact and pure-integer: a codeword is a Python
int of 72 bits, data in the low 64 positions of the extraction order
defined by the Hamming layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List

DATA_BITS = 64
#: 7 Hamming parity bits (positions 1,2,4,...,64 in 1-based Hamming
#: numbering) + 1 overall parity bit.
PARITY_BITS = 8
CODEWORD_BITS = DATA_BITS + PARITY_BITS  # 72

#: 1-based Hamming positions 1..71 carry the (64,71) Hamming code; position
#: 0 (appended as the 72nd bit) carries overall parity.
_HAMMING_LENGTH = 71
_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
_DATA_POSITIONS = tuple(
    p for p in range(1, _HAMMING_LENGTH + 1) if p not in _PARITY_POSITIONS
)
assert len(_DATA_POSITIONS) == DATA_BITS


class DecodeStatus(enum.Enum):
    OK = "ok"  # clean codeword
    CORRECTED_SBE = "corrected_sbe"  # single-bit error corrected by ECC
    DETECTED_DBE = "detected_dbe"  # double-bit error: uncorrectable
    #: >=3 flips can masquerade as clean/SBE in any SECDED code; when the
    #: decoder *can* tell something is off (syndrome points outside the
    #: word) it reports this.
    DETECTED_MULTI = "detected_multi"


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def encode(data: int) -> int:
    """Encode a 64-bit word into a 72-bit SECDED codeword.

    Layout: bits 1..71 are the Hamming code (1-based positions, stored at
    the same 0-based offsets 1..71 of the returned int for clarity); bit 0
    is the overall parity of bits 1..71.
    """
    if not 0 <= data < (1 << DATA_BITS):
        raise ValueError("data must be a 64-bit unsigned value")
    word = 0
    for i, position in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            word |= 1 << position
    for parity_position in _PARITY_POSITIONS:
        covered = 0
        for position in range(1, _HAMMING_LENGTH + 1):
            if position & parity_position and (word >> position) & 1:
                covered ^= 1
        if covered:
            word |= 1 << parity_position
    overall = _parity(word >> 1)
    return word | overall


@dataclass(frozen=True)
class DecodeResult:
    data: int
    status: DecodeStatus
    corrected_position: int | None = None


def decode(codeword: int) -> DecodeResult:
    """Decode a 72-bit codeword, correcting one flip, detecting two."""
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ValueError("codeword must be a 72-bit unsigned value")
    syndrome = 0
    for position in range(1, _HAMMING_LENGTH + 1):
        if (codeword >> position) & 1:
            syndrome ^= position
    overall_ok = _parity(codeword) == 0  # stored parity makes total even

    if syndrome == 0 and overall_ok:
        return DecodeResult(_extract(codeword), DecodeStatus.OK)
    if syndrome == 0 and not overall_ok:
        # The overall parity bit itself flipped: correctable.
        return DecodeResult(
            _extract(codeword), DecodeStatus.CORRECTED_SBE, corrected_position=0
        )
    if not overall_ok:
        # Odd number of flips with a nonzero syndrome: a single data/parity
        # bit error at the syndrome position (or an uncorrectable aliasing
        # of >=3 flips, indistinguishable by construction).
        if syndrome <= _HAMMING_LENGTH:
            corrected = codeword ^ (1 << syndrome)
            return DecodeResult(
                _extract(corrected), DecodeStatus.CORRECTED_SBE,
                corrected_position=syndrome,
            )
        return DecodeResult(_extract(codeword), DecodeStatus.DETECTED_MULTI)
    # Even parity with nonzero syndrome: exactly the double-error signature.
    return DecodeResult(_extract(codeword), DecodeStatus.DETECTED_DBE)


def _extract(codeword: int) -> int:
    data = 0
    for i, position in enumerate(_DATA_POSITIONS):
        if (codeword >> position) & 1:
            data |= 1 << i
    return data


def flip_bits(codeword: int, positions: Iterable[int]) -> int:
    """Flip the given bit offsets (0..71) of a codeword (fault injection)."""
    for position in positions:
        if not 0 <= position < CODEWORD_BITS:
            raise ValueError(f"bit position out of range: {position}")
        codeword ^= 1 << position
    return codeword


def random_flips(rng, n: int) -> List[int]:
    """``n`` distinct random bit offsets for fault injection."""
    return list(rng.choice(CODEWORD_BITS, size=n, replace=False))
