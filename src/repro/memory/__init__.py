"""GPU memory resilience substrate, built from first principles.

Paper Section 2.3 describes the Ampere/Hopper memory error-management stack
(its Figure 3): SECDED ECC corrects single-bit errors silently, double-bit
errors trigger *row remapping* onto spare rows (RRE, or RRF when spares are
exhausted), and — on A100/H100 only — *error containment* kills the process
using the poisoned address while *dynamic page offlining* retires the page
without a GPU reset.

This subpackage implements each mechanism concretely:

* :mod:`repro.memory.secded` — a (72,64) SECDED Hamming code: encode,
  corrupt, decode-with-correction/detection;
* :mod:`repro.memory.remap` — per-bank spare-row bookkeeping with the
  Ampere remap budget;
* :mod:`repro.memory.containment` — the containment + page-offlining state
  machine, with the A40-vs-A100 capability split;
* :mod:`repro.memory.device` — a whole-GPU memory model that turns injected
  cell faults into the XID 48/63/64/94/95 event sequences of Figure 3,
  which is what the calibrated fault kernel abstracts.
"""

from repro.memory.secded import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    decode,
    encode,
    flip_bits,
)
from repro.memory.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.memory.remap import RemapOutcome, RowRemapper
from repro.memory.containment import ContainmentOutcome, ContainmentUnit
from repro.memory.device import GpuMemory, MemoryEvent, MemoryEventKind

__all__ = [
    "CODEWORD_BITS",
    "DATA_BITS",
    "DecodeStatus",
    "decode",
    "encode",
    "flip_bits",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "RemapOutcome",
    "RowRemapper",
    "ContainmentOutcome",
    "ContainmentUnit",
    "GpuMemory",
    "MemoryEvent",
    "MemoryEventKind",
]
