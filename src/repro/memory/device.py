"""A whole-GPU memory model: cell faults in, XID event sequences out.

``GpuMemory`` glues the SECDED code, the row remapper, and the containment
unit into the Figure-3 flow:

1. a *read* of a word with flipped bits runs the SECDED decoder;
2. a corrected single-bit error increments the SBE counter (never logged —
   exactly why the paper studies DBEs only) and, per NVIDIA's rule, two
   SBEs at one address escalate to a remap request;
3. an uncorrectable (double-bit) error logs a DBE, requests a row remap
   (RRE or RRF), and on RRF falls through to containment (Contained /
   Uncontained), mirroring the measured Figure-7 tree.

The calibrated fault kernel in :mod:`repro.faults` abstracts exactly this
machine; ``GpuMemory`` exists so the abstraction can be checked against a
mechanistic model (see ``benchmarks/test_bench_ablation_memory.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory.containment import ContainmentOutcome, ContainmentUnit
from repro.memory.remap import RemapOutcome, RowRemapper
from repro.memory.secded import DecodeStatus, decode, encode, flip_bits

Address = Tuple[int, int, int]  # (bank, row, column)


class MemoryEventKind(enum.Enum):
    """Loggable outcomes, named by their XID."""

    DBE = 48
    RRE = 63
    RRF = 64
    CONTAINED = 94
    UNCONTAINED = 95


@dataclass(frozen=True)
class MemoryEvent:
    kind: MemoryEventKind
    address: Address

    @property
    def xid(self) -> int:
        return self.kind.value


@dataclass
class GpuMemory:
    """One GPU's protected memory.

    ``supports_containment`` distinguishes A100/H100 (True) from A40-class
    parts (False): without containment, every remap failure leaves the GPU
    inoperable immediately.
    """

    supports_containment: bool = True
    containment_success_prob: float = 0.43
    #: Columns per offlinable page (sets the page granularity of
    #: containment's dynamic offlining).
    page_size_columns: int = 256
    remapper: RowRemapper = field(default_factory=RowRemapper)
    containment: ContainmentUnit = field(init=False)
    sbe_corrected: int = 0
    _stored: Dict[Address, int] = field(default_factory=dict)
    _sbe_history: Dict[Address, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.containment = ContainmentUnit(
            supported=self.supports_containment,
            offlining_supported=self.supports_containment,
            success_prob=self.containment_success_prob,
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def write(self, address: Address, data: int) -> None:
        self._stored[address] = encode(data)

    def inject_bit_flips(self, address: Address, positions: List[int]) -> None:
        """Corrupt a stored codeword (particle strike / weak cell)."""
        codeword = self._stored.get(address, encode(0))
        self._stored[address] = flip_bits(codeword, positions)

    def read(
        self,
        address: Address,
        rng: np.random.Generator,
        owning_pid: Optional[int] = None,
    ) -> Tuple[Optional[int], List[MemoryEvent]]:
        """Read a word, running the full Figure-3 recovery flow.

        Returns ``(data, events)``; ``data`` is None when the error is
        uncorrectable (the consumer sees poison).
        """
        codeword = self._stored.get(address, encode(0))
        result = decode(codeword)
        if result.status is DecodeStatus.OK:
            return result.data, []
        if result.status is DecodeStatus.CORRECTED_SBE:
            self.sbe_corrected += 1
            self._stored[address] = encode(result.data)  # scrub
            events: List[MemoryEvent] = []
            seen = self._sbe_history.get(address, 0) + 1
            self._sbe_history[address] = seen
            if seen >= 2:
                # NVIDIA's rule: 2 SBEs at one address trigger a remap
                # (an RRE without any preceding logged DBE).
                events.extend(self._remap_flow(address, log_dbe=False,
                                               rng=rng, owning_pid=owning_pid))
                self._sbe_history[address] = 0
            return result.data, events
        # Uncorrectable (DBE or aliased multi-bit): Figure 3's right side.
        return None, self._remap_flow(address, log_dbe=True, rng=rng,
                                      owning_pid=owning_pid)

    # ------------------------------------------------------------------

    def _remap_flow(
        self,
        address: Address,
        *,
        log_dbe: bool,
        rng: np.random.Generator,
        owning_pid: Optional[int],
    ) -> List[MemoryEvent]:
        events: List[MemoryEvent] = []
        if log_dbe:
            events.append(MemoryEvent(MemoryEventKind.DBE, address))
        bank, row, _column = address
        outcome = self.remapper.request_remap((bank, row))
        if outcome is RemapOutcome.REMAPPED:
            events.append(MemoryEvent(MemoryEventKind.RRE, address))
            return events
        if outcome is RemapOutcome.ALREADY_REMAPPED:
            return events
        events.append(MemoryEvent(MemoryEventKind.RRF, address))
        # Containment after a remap failure (A100/H100); A40 goes straight
        # to the error state.
        page = self._page_of(address)
        result = self.containment.contain(page, rng, owning_pid=owning_pid)
        if result.outcome is ContainmentOutcome.CONTAINED:
            events.append(MemoryEvent(MemoryEventKind.CONTAINED, address))
        elif result.outcome is ContainmentOutcome.UNCONTAINED:
            events.append(MemoryEvent(MemoryEventKind.UNCONTAINED, address))
        # UNSUPPORTED: no containment event is logged; the GPU is simply in
        # an error state (pre-Ampere behaviour).
        return events

    def _page_of(self, address: Address) -> int:
        bank, row, column = address
        return (bank << 20) | (row << 4) | (column // self.page_size_columns)

    # ------------------------------------------------------------------

    @property
    def operable(self) -> bool:
        return not self.containment.in_error_state

    def reset(self) -> None:
        """GPU reset: clears the error state and activates staged remaps."""
        self.containment.reset()
        self.remapper.acknowledge_reset()
