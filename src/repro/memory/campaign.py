"""Fault-injection campaigns against the mechanistic memory model.

A campaign drives a :class:`~repro.memory.device.GpuMemory` with a stream
of injected cell faults and tallies the Figure-3 outcomes — the
programmatic form of the SASSIFI/NVBitFI-style studies the paper's related
work surveys, but aimed at the *recovery stack* rather than application
silent-data-corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.memory.device import GpuMemory, MemoryEvent, MemoryEventKind
from repro.util.validation import check_probability


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign shape.

    ``dbe_fraction`` of injected faults are double-bit (uncorrectable);
    the rest are single-bit.  ``exhausted_bank_fraction`` of banks start
    with their spares spent (defective/aged parts), which is what makes
    remaps fail at a controlled rate.
    """

    n_faults: int = 500
    dbe_fraction: float = 0.35
    exhausted_bank_fraction: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        check_probability("dbe_fraction", self.dbe_fraction)
        check_probability("exhausted_bank_fraction", self.exhausted_bank_fraction)
        if self.n_faults <= 0:
            raise ValueError("n_faults must be positive")


@dataclass
class CampaignResult:
    events: List[MemoryEvent] = field(default_factory=list)
    sbe_corrected: int = 0
    gpu_resets: int = 0
    pages_offlined: int = 0

    def count(self, kind: MemoryEventKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    @property
    def remap_success_rate(self) -> float:
        rre = self.count(MemoryEventKind.RRE)
        rrf = self.count(MemoryEventKind.RRF)
        return rre / (rre + rrf) if rre + rrf else float("nan")

    @property
    def containment_success_rate(self) -> float:
        contained = self.count(MemoryEventKind.CONTAINED)
        uncontained = self.count(MemoryEventKind.UNCONTAINED)
        total_rrf = self.count(MemoryEventKind.RRF)
        if total_rrf == 0:
            return float("nan")
        return contained / total_rrf

    @property
    def dbe_alleviation_rate(self) -> float:
        """RRE successes + contained RRFs over DBEs — Figure 7's 70.6%."""
        dbe = self.count(MemoryEventKind.DBE)
        if dbe == 0:
            return float("nan")
        alleviated = self.count(MemoryEventKind.RRE) + self.count(
            MemoryEventKind.CONTAINED
        )
        return alleviated / dbe


def run_campaign(
    memory: Optional[GpuMemory] = None,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Run one campaign; the memory object is mutated and inspectable after."""
    memory = memory if memory is not None else GpuMemory()
    config = config or CampaignConfig()
    rng = np.random.default_rng(config.seed)

    n_exhaust = int(round(memory.remapper.n_banks * config.exhausted_bank_fraction))
    for bank in range(n_exhaust):
        memory.remapper.exhaust_bank(bank)

    result = CampaignResult()
    for index in range(config.n_faults):
        address = (
            int(rng.integers(0, memory.remapper.n_banks)),
            50_000 + index,  # fresh row per fault: no accidental 2-SBE hits
            0,
        )
        memory.write(address, int(rng.integers(0, 1 << 63)))
        if rng.random() < config.dbe_fraction:
            flips = [int(x) for x in rng.choice(72, size=2, replace=False)]
        else:
            flips = [int(rng.integers(0, 72))]
        memory.inject_bit_flips(address, flips)
        _, events = memory.read(address, rng, owning_pid=10_000 + index)
        result.events.extend(events)
        if not memory.operable:
            result.gpu_resets += 1
            memory.reset()
    result.sbe_corrected = memory.sbe_corrected
    result.pages_offlined = memory.containment.offlined_pages
    return result
