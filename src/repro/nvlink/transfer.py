"""Collective transfers over NVLink channels.

A gang of GPUs exchanging data (ring-allreduce style) dies as a whole if
*any* link suffers a fatal error — the structure behind the paper's
Incident 1, where a single NVLink error segfaulted a four-node MPI job.
``simulate_collective`` measures the survival probability of such jobs as
a function of link quality and the retry mechanism, quantifying finding
(iii): with CRC+replay most detected link errors never surface to the
application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.nvlink.link import LinkConfig, NVLinkChannel, TransmitOutcome


@dataclass(frozen=True)
class CollectiveResult:
    jobs_run: int
    jobs_survived: int
    total_crc_errors: int
    total_replays: int
    total_fatal: int
    mean_goodput: float
    jobs_with_errors: int = 0
    survived_with_errors: int = 0

    @property
    def survival_rate(self) -> float:
        return self.jobs_survived / self.jobs_run if self.jobs_run else 1.0

    @property
    def jobs_with_errors_that_survived(self) -> float:
        """Of jobs that saw at least one detected link error, the fraction
        that still completed — the paper's 34%-of-NVLink-error-jobs-survive
        statistic lives here (they saw errors; replay absorbed them)."""
        if not self.jobs_with_errors:
            return float("nan")
        return self.survived_with_errors / self.jobs_with_errors


def simulate_collective(
    *,
    n_gpus: int = 4,
    n_rounds: int = 64,
    packets_per_round: int = 4,
    config: LinkConfig | None = None,
    n_jobs: int = 100,
    seed: int = 7,
) -> CollectiveResult:
    """Run ``n_jobs`` ring-collective jobs and tally survival.

    Each job runs ``n_rounds`` of a ring exchange over ``n_gpus`` links;
    every round every link carries ``packets_per_round`` packets.
    """
    config = config or LinkConfig()
    rng = np.random.default_rng(seed)
    survived = 0
    jobs_with_errors = 0
    survived_with_errors = 0
    crc_errors = 0
    replays = 0
    fatal = 0
    goodputs: List[float] = []

    payload = bytes(range(256))[: config.packet_bytes] * (
        config.packet_bytes // min(config.packet_bytes, 256) + 1
    )
    payload = payload[: config.packet_bytes]

    for _ in range(n_jobs):
        links = [NVLinkChannel(config) for _ in range(n_gpus)]
        alive = True
        for _round in range(n_rounds):
            for link in links:
                for _ in range(packets_per_round):
                    if link.transmit(payload, rng) is TransmitOutcome.FATAL:
                        alive = False
                        break
                if not alive:
                    break
            if not alive:
                break
        job_errors = sum(l.stats.crc_errors_detected for l in links)
        crc_errors += job_errors
        replays += sum(l.stats.replays for l in links)
        fatal += sum(l.stats.fatal_errors for l in links)
        goodputs.append(
            float(np.mean([l.stats.goodput for l in links]))
        )
        if alive:
            survived += 1
        if job_errors > 0:
            jobs_with_errors += 1
            if alive:
                survived_with_errors += 1

    return CollectiveResult(
        jobs_run=n_jobs,
        jobs_survived=survived,
        total_crc_errors=crc_errors,
        total_replays=replays,
        total_fatal=fatal,
        mean_goodput=float(np.mean(goodputs)) if goodputs else 1.0,
        jobs_with_errors=jobs_with_errors,
        survived_with_errors=survived_with_errors,
    )
