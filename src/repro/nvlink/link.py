"""An NVLink channel with CRC verification and replay.

The mechanism behind the paper's finding (iii): "NVLink retries packet
transmissions from the last-known good packet upon encountering a CRC
checksum error" — which is why an XID-74 log line does not necessarily mean
a failed job (34% of NVLink-error jobs completed).

Model: the sender keeps transmitted packets in a replay buffer; the
receiver recomputes the CRC over the (possibly corrupted) payload and
NAKs on mismatch; the sender replays from the last acknowledged packet.
A packet that keeps failing beyond the retry budget escalates to a *fatal
link error* — the condition that logs XID 74 and can leave the link/GPU
needing a reset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.nvlink.crc import CRC24, CrcSpec, crc_bytes
from repro.util.validation import check_probability


class TransmitOutcome(enum.Enum):
    DELIVERED = "delivered"  # possibly after replays
    FATAL = "fatal"  # retry budget exhausted: XID-74 class event


@dataclass
class LinkConfig:
    """Channel parameters.

    ``bit_error_rate`` is the probability each payload bit flips in flight;
    production links run ~1e-12-1e-15, degraded links far worse — the
    sweep in the ablation bench covers that range (scaled up so packets are
    small enough to simulate).
    """

    bit_error_rate: float = 1e-6
    packet_bytes: int = 256
    max_replays: int = 8
    crc: CrcSpec = CRC24
    #: Retry path on/off — the ablation's knob.  With ``False`` every CRC
    #: mismatch is immediately fatal (a hypothetical NVLink without replay).
    retry_enabled: bool = True

    def __post_init__(self) -> None:
        check_probability("bit_error_rate", self.bit_error_rate)
        if self.packet_bytes <= 0 or self.max_replays < 0:
            raise ValueError("invalid link configuration")


@dataclass
class LinkStats:
    packets_sent: int = 0
    transmissions: int = 0  # including replays
    crc_errors_detected: int = 0
    replays: int = 0
    fatal_errors: int = 0
    undetected_corruptions: int = 0  # CRC escape (silent data corruption)

    @property
    def goodput(self) -> float:
        """Delivered packets per transmission (1.0 = no overhead)."""
        if self.transmissions == 0:
            return 1.0
        return self.packets_sent / self.transmissions


class NVLinkChannel:
    """One direction of one link between two GPUs."""

    def __init__(self, config: LinkConfig | None = None) -> None:
        self.config = config or LinkConfig()
        self.stats = LinkStats()
        self._replay_buffer: List[bytes] = []

    # ------------------------------------------------------------------

    def transmit(self, payload: bytes, rng: np.random.Generator) -> TransmitOutcome:
        """Send one packet, replaying on CRC mismatch."""
        config = self.config
        self.stats.packets_sent += 1
        self._replay_buffer.append(payload)
        checksum = crc_bytes(payload, config.crc)
        attempts = 0
        while True:
            attempts += 1
            self.stats.transmissions += 1
            received = self._corrupt(payload, rng)
            if crc_bytes(received, config.crc) == checksum:
                if received != payload:
                    # Corruption the CRC failed to catch: delivered wrong
                    # data silently (vanishingly rare, but modelled).
                    self.stats.undetected_corruptions += 1
                self._replay_buffer.pop()
                return TransmitOutcome.DELIVERED
            self.stats.crc_errors_detected += 1
            if not config.retry_enabled or attempts > config.max_replays:
                self.stats.fatal_errors += 1
                return TransmitOutcome.FATAL
            self.stats.replays += 1

    def transfer(
        self, payloads: List[bytes], rng: np.random.Generator
    ) -> TransmitOutcome:
        """Send a packet train; fatal on the first exhausted packet."""
        for payload in payloads:
            if self.transmit(payload, rng) is TransmitOutcome.FATAL:
                return TransmitOutcome.FATAL
        return TransmitOutcome.DELIVERED

    # ------------------------------------------------------------------

    def _corrupt(self, payload: bytes, rng: np.random.Generator) -> bytes:
        rate = self.config.bit_error_rate
        if rate <= 0.0:
            return payload
        n_bits = len(payload) * 8
        n_flips = rng.binomial(n_bits, rate)
        if n_flips == 0:
            return payload
        data = bytearray(payload)
        for position in rng.choice(n_bits, size=n_flips, replace=False):
            data[int(position) // 8] ^= 1 << (int(position) % 8)
        return bytes(data)
