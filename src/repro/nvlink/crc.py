"""Parameterized cyclic redundancy checks.

NVLink protects flits and data packets with CRCs (paper Section 2.3.1).
The exact production polynomials are not public; we implement a standard
table-driven CRC engine with a 24-bit default (matching the flit-CRC width
class) and CRC-32 for data payloads.  What matters for the resilience
substrate is the *detection behaviour*: any burst error up to the CRC width
is caught, and random corruption escapes with probability ~2^-width.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple


@dataclass(frozen=True)
class CrcSpec:
    """A CRC definition (MSB-first, non-reflected)."""

    name: str
    width: int
    polynomial: int  # without the implicit leading 1
    initial: int = 0

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


#: 24-bit CRC (OpenPGP/Bluetooth-class polynomial).
CRC24 = CrcSpec(name="crc24", width=24, polynomial=0x864CFB, initial=0xB704CE)
#: Standard CRC-32 polynomial (non-reflected variant).
CRC32 = CrcSpec(name="crc32", width=32, polynomial=0x04C11DB7, initial=0xFFFFFFFF)


@lru_cache(maxsize=8)
def _table(spec: CrcSpec) -> Tuple[int, ...]:
    top_bit = 1 << (spec.width - 1)
    table = []
    for byte in range(256):
        register = byte << (spec.width - 8)
        for _ in range(8):
            if register & top_bit:
                register = ((register << 1) ^ spec.polynomial) & spec.mask
            else:
                register = (register << 1) & spec.mask
        table.append(register)
    return tuple(table)


def crc_bytes(data: bytes, spec: CrcSpec = CRC24) -> int:
    """CRC of a byte string under the given spec."""
    table = _table(spec)
    register = spec.initial & spec.mask
    shift = spec.width - 8
    for byte in data:
        index = ((register >> shift) ^ byte) & 0xFF
        register = ((register << 8) ^ table[index]) & spec.mask
    return register
