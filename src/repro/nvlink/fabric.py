"""Topology-aware NVLink fabrics: collectives over real node layouts.

Connects the link substrate to :mod:`repro.cluster.topology`: a fabric has
one channel per NVLink edge of a node's topology, and a ring-allreduce is
only possible when the topology contains a Hamiltonian cycle — which is why
4-way A100/GH200 boards (all-to-all) and 8-way HGX boards (NVSwitch)
support efficient collectives while A40 bridge pairs cannot ring four GPUs
at all and fall back to PCIe for the cross-pair hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.topology import NVLinkTopology
from repro.nvlink.link import LinkConfig, NVLinkChannel, TransmitOutcome

Edge = Tuple[int, int]


@dataclass
class FabricResult:
    completed: bool
    steps: int
    nvlink_hops: int
    pcie_fallback_hops: int
    crc_errors: int
    fatal_link: Optional[Edge] = None

    @property
    def all_nvlink(self) -> bool:
        return self.pcie_fallback_hops == 0


class LinkFabric:
    """All NVLink channels of one node."""

    def __init__(
        self, topology: NVLinkTopology, config: LinkConfig | None = None
    ) -> None:
        self.topology = topology
        self.config = config or LinkConfig()
        self.channels: Dict[Edge, NVLinkChannel] = {
            edge: NVLinkChannel(self.config) for edge in sorted(topology.links)
        }

    def channel(self, a: int, b: int) -> Optional[NVLinkChannel]:
        return self.channels.get((min(a, b), max(a, b)))

    # ------------------------------------------------------------------

    def ring_order(self) -> Optional[List[int]]:
        """A Hamiltonian cycle over the link graph, if one exists.

        Exhaustive search is fine at <= 8 GPUs.
        """
        n = self.topology.num_gpus
        if n < 3:
            return None
        links = {tuple(sorted(edge)) for edge in self.topology.links}

        def connected(a: int, b: int) -> bool:
            return (min(a, b), max(a, b)) in links

        order = [0]

        def extend() -> bool:
            if len(order) == n:
                return connected(order[-1], order[0])
            for candidate in range(1, n):
                if candidate in order or not connected(order[-1], candidate):
                    continue
                order.append(candidate)
                if extend():
                    return True
                order.pop()
            return False

        return order if extend() else None

    # ------------------------------------------------------------------

    def ring_allreduce(
        self,
        rng: np.random.Generator,
        *,
        chunks: int = 8,
        payload: bytes | None = None,
    ) -> FabricResult:
        """One ring-allreduce pass (2·(n-1) steps of n chunk transfers).

        Hops without an NVLink edge fall back to PCIe (error-free here but
        counted — the performance penalty the topology imposes).  A fatal
        NVLink error aborts the collective, the paper's Incident-1 failure
        mode.
        """
        n = self.topology.num_gpus
        if n < 2:
            raise ValueError("a collective needs at least two GPUs")
        order = self.ring_order() or list(range(n))
        data = payload if payload is not None else bytes(self.config.packet_bytes)

        steps = 2 * (n - 1)
        nvlink_hops = 0
        pcie_hops = 0
        crc_errors = 0
        for _step in range(steps):
            for position in range(n):
                src = order[position]
                dst = order[(position + 1) % n]
                channel = self.channel(src, dst)
                if channel is None:
                    pcie_hops += chunks
                    continue
                before = channel.stats.crc_errors_detected
                for _ in range(chunks):
                    if channel.transmit(data, rng) is TransmitOutcome.FATAL:
                        crc_errors += channel.stats.crc_errors_detected - before
                        return FabricResult(
                            completed=False,
                            steps=_step + 1,
                            nvlink_hops=nvlink_hops,
                            pcie_fallback_hops=pcie_hops,
                            crc_errors=crc_errors,
                            fatal_link=(min(src, dst), max(src, dst)),
                        )
                nvlink_hops += chunks
                crc_errors += channel.stats.crc_errors_detected - before
        return FabricResult(
            completed=True,
            steps=steps,
            nvlink_hops=nvlink_hops,
            pcie_fallback_hops=pcie_hops,
            crc_errors=crc_errors,
        )
