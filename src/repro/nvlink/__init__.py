"""NVLink data-integrity substrate: CRC detection and replay.

Paper Section 2.3.1: "NVLink employs Cyclic Redundancy Checks (CRCs) to
ensure integrity of flow control digits and data. NVLink retries packet
transmissions from the last-known good packet upon encountering a CRC
checksum error."  Finding (iii) attributes the 34% of NVLink-error jobs
that *complete anyway* to exactly this mechanism.

This subpackage implements the mechanism concretely:

* :mod:`repro.nvlink.crc` — a parameterized CRC (default CRC-24, close to
  the flit CRC width NVLink uses);
* :mod:`repro.nvlink.link` — a link channel with per-bit error injection,
  CRC verification, a replay buffer with retry budget, and the fatal-error
  escalation (XID 74) when replays are exhausted;
* :mod:`repro.nvlink.transfer` — collective-style transfers over a set of
  links, measuring goodput, retries, and survival — the ablation bench
  disables the retry path to show job failures jumping.
"""

from repro.nvlink.crc import crc_bytes, CrcSpec, CRC24, CRC32
from repro.nvlink.fabric import FabricResult, LinkFabric
from repro.nvlink.link import LinkConfig, LinkStats, NVLinkChannel, TransmitOutcome
from repro.nvlink.transfer import CollectiveResult, simulate_collective

__all__ = [
    "crc_bytes",
    "CrcSpec",
    "CRC24",
    "CRC32",
    "FabricResult",
    "LinkFabric",
    "LinkConfig",
    "LinkStats",
    "NVLinkChannel",
    "TransmitOutcome",
    "CollectiveResult",
    "simulate_collective",
]
