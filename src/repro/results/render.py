"""Renderers: one :class:`ExperimentResult` in, paper-style output out.

Each registered renderer reconstructs the pre-refactor report text
byte-for-byte from the structured artifact alone — measured numbers come
from the result's metrics and tables, while the paper's published
annotations ("(paper 0.99)") are template literals, because they are
commentary on the layout, not data the experiment produced.  Golden tests
(``tests/integration/test_golden.py``) hold renderers to that contract.

``render_svg`` produces a chart for the results where one is meaningful
(Table 1 counts, Figure 9a, the Section-5.4 sweep, the what-if tables);
it returns ``None`` for text-only artifacts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.results.artifact import ExperimentResult, ResultTable
from repro.util.tables import Table


def _ascii_table(table: ResultTable) -> str:
    out = Table(table.title, list(table.headers), precision=table.precision)
    for row in table.rows:
        out.add_row(*row)
    return out.render()


# ---------------------------------------------------------------------------
# Tables 1-3
# ---------------------------------------------------------------------------


def _render_table1(result: ExperimentResult) -> str:
    footer = (
        f"\nTotal errors: {result.value('total_errors'):,} "
        "(paper 63,253 x scale)"
        f"\nOverall per-node MTBE: {result.value('overall_mtbe_node_hours'):.1f}"
        " node-hours (paper 67)"
        f"\nMemory vs hardware MTBE ratio: "
        f"{result.value('memory_vs_hardware_ratio'):.1f}x (paper: >30x)"
        f"\nExcluded user-induced records (XID 13/43): "
        f"{result.value('excluded_count'):,}"
    )
    return _ascii_table(result.tables[0]) + footer


def _render_table2(result: ExperimentResult) -> str:
    footer = (
        f"\nTotal GPU-failed jobs: {result.value('total_gpu_failed'):,} "
        "(paper 4,322 x scale)"
        f"\nJob success rate: {result.value('success_rate_pct'):.2f}% "
        "(paper 74.68%)"
    )
    return _ascii_table(result.tables[0]) + footer


def _render_table3(result: ExperimentResult) -> str:
    return _ascii_table(result.tables[0])


# ---------------------------------------------------------------------------
# Figures 5-7
# ---------------------------------------------------------------------------


def _render_fig5(result: ExperimentResult) -> str:
    v = result.values
    lines = [
        "Figure 5 - intra-GPU hardware error propagation (measured vs paper)",
        f"  GSP -> self/inoperable : {v['p_gsp_self_or_terminal']:.2f}   (paper 0.99)",
        f"  GSP -> PMU SPI         : {v['p_gsp_to_pmu']:.3f}  (paper 0.01)",
        f"  GSP isolated (no pred) : {v['p_gsp_isolated']:.2f}   (paper 0.99)",
        f"  PMU SPI -> MMU         : {v['p_pmu_to_mmu']:.2f}   (paper 0.82)"
        f"  [mean {v['t_pmu_to_mmu']:.1f}s]",
        f"  PMU SPI -> PMU SPI     : {v['p_pmu_self']:.2f}   (paper 0.18)",
    ]
    return "\n".join(lines)


def _render_fig6(result: ExperimentResult) -> str:
    v = result.values
    lines = [
        "Figure 6 - NVLink error propagation (measured vs paper)",
        f"  NVLink -> NVLink (same GPU) : {v['p_nvlink_self']:.2f}  (paper 0.66)",
        f"  NVLink -> peer GPU          : {v['p_nvlink_inter']:.2f}  (paper 0.14)",
        f"  NVLink -> GPU error state   : {v['p_nvlink_error_state']:.2f}"
        "  (paper 0.20)",
        f"  errors in single-GPU incidents : {v['single_gpu_pct']:.0f}%"
        "  (paper 84-86%)",
        f"  errors in >=2-GPU incidents    : {v['multi_gpu_pct']:.0f}%"
        "  (paper 14-16%)",
        f"  errors in >=4-GPU incidents    : {v['four_plus_gpu_pct']:.0f}%"
        "  (paper ~5%)",
        f"  errors in all-8-GPU incidents  : {v['all8_errors']}"
        "  (paper 35)",
    ]
    return "\n".join(lines)


def _render_fig7(result: ExperimentResult) -> str:
    v = result.values
    lines = [
        "Figure 7 - intra-GPU uncorrectable memory error recovery (measured vs paper)",
        f"  DBE -> RRE (remap ok)     : {v['p_dbe_to_rre']:.2f}  (paper 0.50)",
        f"  DBE -> RRF (remap failed) : {v['p_dbe_to_rrf']:.2f}  (paper ~0.47)",
        f"  RRF -> Contained          : {v['p_rrf_to_contained']:.2f}  (paper 0.43)",
        f"  RRF -> Uncontained        : {v['p_rrf_to_uncontained']:.2f}  (paper ~0.11)",
        f"  RRF -> inoperable (term.) : {v['p_rrf_terminal']:.2f}  (paper 0.46)",
        f"  DBE impact alleviated     : {v['dbe_alleviated_pct']:.1f}%  (paper 70.6%)",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 9
# ---------------------------------------------------------------------------


def _render_fig9(result: ExperimentResult) -> str:
    v = result.values
    histogram = result.table("Figure 9a")
    lines = ["Figure 9a - jobs vs elapsed time (completed / GPU-failed)"]
    for lo, hi, completed, gpu_failed in histogram.rows:
        lines.append(
            f"  {lo:>6.0f}-{hi:<6.0f} min : {completed:>9,} completed"
            f"   {gpu_failed:>6,} gpu-failed"
        )
    lines.append(
        f"  node-hours lost in GPU-failed jobs: {v['lost_node_hours']:,.0f}"
        "  (paper ~7,500 x scale)"
    )
    lines.append("Figure 9b - mean GPU errors encountered vs job duration")
    for mid, mean_completed, mean_failed in result.table("Figure 9b").rows:
        lines.append(
            f"  ~{mid:>7.0f} min : completed {mean_completed:6.2f}"
            f"   gpu-failed {mean_failed:6.2f}"
        )
    lines.extend(
        [
            "Figure 9c - node unavailability after GPU failures",
            f"  incidents: {v['n_incidents']:,}   mean: "
            f"{v['mean_unavailability_hours']:.2f} h  (paper 0.3 h)",
            f"  P50 {v['p50_unavailability_hours']:.2f} h   "
            f"P95 {v['p95_unavailability_hours']:.2f} h"
            f"   P99 {v['p99_unavailability_hours']:.2f} h   "
            f"max {v['max_unavailability_hours']:.1f} h",
            f"  total downtime: {v['total_downtime_node_hours']:,.0f} node-hours"
            "  (paper ~5,700 x scale)",
            f"  MTTF {v['mttf_hours']:.1f} h, MTTR {v['mttr_hours']:.2f} h"
            f" -> availability {v['availability_pct']:.2f}%  (paper 99.5%)",
            f"  downtime per node-day: {v['downtime_minutes_per_day']:.1f} min"
            "  (paper ~7 min)",
        ]
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Sections 4-7
# ---------------------------------------------------------------------------


def _render_overprovision(result: ExperimentResult) -> str:
    return _ascii_table(result.tables[0])


def _render_counterfactual(result: ExperimentResult) -> str:
    v = result.values
    lines = [
        "Section 5.5 - counterfactual resilience improvements",
        f"  baseline MTBE             : {v['baseline_mtbe_node_hours']:.1f} node-h"
        "  (paper 67)",
        f"  without top offenders     : "
        f"{v['without_offenders_mtbe_node_hours']:.1f}"
        f" node-h ({v['offender_improvement']:.1f}x)  (paper 190, 3x)",
        f"  also w/o GSP/PMU/NVLink   : "
        f"{v['without_offenders_and_hw_mtbe_node_hours']:.1f} node-h"
        f" (+{v['hardware_additional_improvement_pct']:.0f}%)  (paper 223, +16%)",
        f"  availability              : {v['baseline_availability_pct']:.2f}% ->"
        f" {v['improved_availability_pct']:.2f}%  (paper 99.5% -> 99.9%)",
        f"  offender GPUs removed     : {v['removed_gpus']}",
    ]
    return "\n".join(lines)


def _render_spatial(result: ExperimentResult) -> str:
    return _ascii_table(result.tables[0])


def _render_h100(result: ExperimentResult) -> str:
    counts = result.table("Per-XID counts")
    counts_repr = "{" + ", ".join(f"{xid}: {count}" for xid, count in counts.rows) + "}"
    return (
        "Section 6 - emerging H100 errors\n"
        f"  counts: {counts_repr}\n"
        "          (paper: 18 MMU, 10 DBE, 5 RRF, 9 contained, 70 XID-136)\n"
        f"  MTBE  : {result.value('mtbe_node_hours'):,.0f} node-hours (paper 4,114)\n"
        f"  DBE/RRF-without-RRE anomaly: {result.value('has_remap_anomaly')}"
    )


def _render_generations(result: ExperimentResult) -> str:
    modes = "\n".join(
        f"  - {row[0]}" for row in result.table("New Ampere-era failure modes").rows
    )
    return (
        _ascii_table(result.tables[0])
        + "\nNew Ampere-era failure modes:\n"
        + modes
    )


# ---------------------------------------------------------------------------
# What-if engine + methodology
# ---------------------------------------------------------------------------


def _render_sim_table(result: ExperimentResult) -> str:
    table = result.tables[0]
    axis = table.headers[0]
    lines = [
        result.title,
        f"  {axis:<22} {'goodput':>9} {'ettr h':>8} {'wasted GPU-h':>13} {'done':>6}",
    ]
    for label, goodput, ettr, wasted, done in table.rows:
        lines.append(
            f"  {label:<22} {goodput:>9.3f} {ettr:>8.2f} {wasted:>13.0f} {done:>6.2f}"
        )
    return "\n".join(lines)


def _render_pipeline_parity(result: ExperimentResult) -> str:
    v = result.values
    lines = [
        "Unified pipeline: Coalesce-stage parity (Algorithm 1)",
        f"  raw records           : {v['raw_records']:,}",
        f"  batch      errors     : {v['batch_errors']:,}  "
        f"(MTBE {v['batch_mtbe_node_hours']:,.0f} node-hours)",
        f"  streaming  errors     : {v['streaming_errors']:,}  "
        f"(MTBE {v['streaming_mtbe_node_hours']:,.0f} node-hours)",
        f"  sequences identical   : {v['sequences_identical']}",
        f"  streaming alarms seen : {v['streaming_alarms']}",
    ]
    return "\n".join(lines)


def _render_replay_backtest(result: ExperimentResult) -> str:
    v = result.values
    header = [
        result.title,
        f"  history : {v['records_replayed']:,} records over "
        f"{v['window_days']:.2f} days, {v['gpu_serials']} GPUs "
        f"({v['gpu_days']:.1f} GPU-days)",
        f"  truth   : {v['incidents']} critical incident(s) "
        f"(XID-79 episodes)",
        f"  alerts  : {v['alerts_total']} fired, {v['alerts_matched']} "
        f"matched -> precision {v['alert_precision']:.2f}, "
        f"incident recall {v['incident_recall']:.2f}",
        f"  noise   : {v['false_alarms_per_gpu_day']:.4f} false alarms "
        f"per GPU-day",
        f"  lead    : median {v['median_lead_seconds']:.0f} s, "
        f"max {v['max_lead_seconds']:.0f} s (per-incident best alert)",
        f"  model   : AP {v['predictor_average_precision']:.3f} on "
        f"{v['predictor_runs_test']} held-out runs "
        f"({v['predictor_test_positives']} long-persisting; "
        f"{v['predictor_runs_train']} trained on)",
    ]
    parts = ["\n".join(header)]
    for table in result.tables:
        if table.rows:
            parts.append(_ascii_table(table))
    return "\n\n".join(parts)


RENDERERS: Dict[str, Callable[[ExperimentResult], str]] = {
    "replay_backtest": _render_replay_backtest,
    "table1": _render_table1,
    "table2": _render_table2,
    "table3": _render_table3,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig9": _render_fig9,
    "overprovision": _render_overprovision,
    "counterfactual": _render_counterfactual,
    "spatial": _render_spatial,
    "h100": _render_h100,
    "generations": _render_generations,
    "sim_table": _render_sim_table,
    "pipeline_parity": _render_pipeline_parity,
}


def render_text(result: ExperimentResult) -> str:
    """The paper-style text report for a structured result."""
    renderer = RENDERERS.get(result.renderer)
    if renderer is None:
        known = ", ".join(sorted(RENDERERS))
        raise KeyError(f"unknown renderer {result.renderer!r}; known: {known}")
    return renderer(result)


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------


def _svg_table1(result: ExperimentResult) -> str:
    from repro.viz.charts import bar_chart

    rows = result.tables[0].rows
    return bar_chart(
        result.title,
        [str(row[0]) for row in rows],
        [float(row[2]) for row in rows],
        log_y=True,
        y_label="errors",
    ).render()


def _svg_fig9(result: ExperimentResult) -> str:
    from repro.viz.charts import grouped_bar_chart

    rows = result.table("Figure 9a").rows
    labels = [f"{row[0]:.0f}-{row[1]:.0f}" for row in rows]
    return grouped_bar_chart(
        result.title,
        labels,
        [
            ("completed", [float(row[2]) for row in rows]),
            ("gpu-failed", [float(row[3]) for row in rows]),
        ],
        log_y=True,
        y_label="jobs",
    ).render()


def _svg_overprovision(result: ExperimentResult) -> str:
    from repro.viz.charts import line_chart

    series: Dict[float, List] = {}
    for recovery, availability_pct, fraction_pct, _ in result.tables[0].rows:
        series.setdefault(float(availability_pct), []).append(
            (float(recovery), float(fraction_pct))
        )
    return line_chart(
        result.title,
        [
            (f"availability {availability:.2f}%", points)
            for availability, points in sorted(series.items())
        ],
        x_label="recovery (min)",
        y_label="overprovision %",
    ).render()


def _svg_sim_table(result: ExperimentResult) -> str:
    from repro.viz.charts import bar_chart

    rows = result.tables[0].rows
    return bar_chart(
        result.title,
        [str(row[0]) for row in rows],
        [float(row[1]) for row in rows],
        y_label="goodput",
    ).render()


SVG_RENDERERS: Dict[str, Callable[[ExperimentResult], str]] = {
    "table1": _svg_table1,
    "fig9": _svg_fig9,
    "overprovision": _svg_overprovision,
    "sim_table": _svg_sim_table,
}


def render_svg(result: ExperimentResult) -> Optional[str]:
    """An SVG chart for the result, or ``None`` when text-only."""
    renderer = SVG_RENDERERS.get(result.renderer)
    return renderer(result) if renderer else None
