"""Structured experiment artifacts, renderers, and paper-fidelity gates.

* :mod:`repro.results.artifact` — the typed result model
  (:class:`ExperimentResult`, :class:`Metric`, :class:`PaperExpectation`,
  :class:`RunManifest`) plus schema validation;
* :mod:`repro.results.render` — byte-identical paper-style text, and SVG
  where a chart is meaningful;
* :mod:`repro.results.verify` — tolerance-band verification against the
  paper's published numbers (``repro-delta verify``).
"""

from repro.results.artifact import (
    ExperimentResult,
    Metric,
    PaperExpectation,
    ResultTable,
    RunManifest,
    SCHEMA_VERSION,
    Tolerance,
    config_digest,
    validate_result_dict,
)
from repro.results.render import RENDERERS, SVG_RENDERERS, render_svg, render_text
from repro.results.verify import (
    Check,
    DEFAULT_MIN_SUPPORT,
    VerificationReport,
    verify_result,
    verify_results,
)

__all__ = [
    "ExperimentResult",
    "Metric",
    "PaperExpectation",
    "ResultTable",
    "RunManifest",
    "SCHEMA_VERSION",
    "Tolerance",
    "config_digest",
    "validate_result_dict",
    "RENDERERS",
    "SVG_RENDERERS",
    "render_svg",
    "render_text",
    "Check",
    "DEFAULT_MIN_SUPPORT",
    "VerificationReport",
    "verify_result",
    "verify_results",
]
