"""Paper-fidelity verification: tolerance-gated paper-vs-measured checks.

Every metric that carries a :class:`PaperExpectation` becomes one check:
the measured value must land inside the expectation's tolerance band
(optionally widened by ``tolerance_scale`` for small-scale smoke runs).
Checks whose metric's ``support`` — the sample count the value was
estimated from — falls below ``min_support`` are *skipped* rather than
failed: at small window scales, rare codes (DBE, RRF, PMU SPI) produce a
handful of events and their branch probabilities are pure noise.

``repro-delta verify`` drives this over the registered experiments and
exits non-zero when any check fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.results.artifact import ExperimentResult
from repro.util.tables import Table

#: Below this many supporting samples a tolerance check is meaningless.
DEFAULT_MIN_SUPPORT = 10

PASS = "pass"
FAIL = "fail"
SKIP = "skip"


@dataclass(frozen=True)
class Check:
    """One paper-vs-measured comparison."""

    experiment_id: str
    metric: str
    measured: float
    expected: float
    lower: Optional[float]
    upper: Optional[float]
    status: str
    support: Optional[int] = None
    reason: str = ""

    @property
    def band(self) -> str:
        lo = "-inf" if self.lower is None else f"{self.lower:g}"
        hi = "+inf" if self.upper is None else f"{self.upper:g}"
        return f"[{lo}, {hi}]"


@dataclass
class VerificationReport:
    """All checks from one verify run."""

    checks: List[Check] = field(default_factory=list)
    tolerance_scale: float = 1.0
    min_support: int = DEFAULT_MIN_SUPPORT

    @property
    def n_pass(self) -> int:
        return sum(1 for c in self.checks if c.status == PASS)

    @property
    def n_fail(self) -> int:
        return sum(1 for c in self.checks if c.status == FAIL)

    @property
    def n_skip(self) -> int:
        return sum(1 for c in self.checks if c.status == SKIP)

    @property
    def ok(self) -> bool:
        return self.n_fail == 0

    def failures(self) -> List[Check]:
        return [c for c in self.checks if c.status == FAIL]

    def extend(self, checks: Iterable[Check]) -> None:
        self.checks.extend(checks)

    def render_table(self) -> str:
        table = Table(
            "Paper-fidelity verification (measured vs paper tolerance bands)",
            ["Experiment", "Metric", "Measured", "Paper", "Band", "Support",
             "Status"],
            precision=3,
        )
        for check in self.checks:
            table.add_row(
                check.experiment_id,
                check.metric,
                check.measured,
                check.expected,
                check.band,
                "-" if check.support is None else check.support,
                check.status + (f" ({check.reason})" if check.reason else ""),
            )
        summary = (
            f"\n{self.n_pass} passed, {self.n_fail} failed, "
            f"{self.n_skip} skipped (support < {self.min_support})"
            f"  [tolerance x{self.tolerance_scale:g}]"
        )
        return table.render() + summary


def verify_result(
    result: ExperimentResult,
    *,
    tolerance_scale: float = 1.0,
    min_support: int = DEFAULT_MIN_SUPPORT,
) -> List[Check]:
    """Check every expectation-annotated metric of one result."""
    checks: List[Check] = []
    for metric in result.expected_metrics():
        expectation = metric.expectation
        assert expectation is not None
        measured = metric.numeric
        lower, upper = expectation.tolerance.bounds(
            expectation.value, relax=tolerance_scale
        )
        if metric.support is not None and metric.support < min_support:
            status, reason = SKIP, f"support {metric.support} < {min_support}"
        elif math.isnan(measured):
            status, reason = FAIL, "measured value is NaN"
        elif (lower is not None and measured < lower) or (
            upper is not None and measured > upper
        ):
            status, reason = FAIL, ""
        else:
            status, reason = PASS, ""
        checks.append(
            Check(
                experiment_id=result.experiment_id,
                metric=metric.name,
                measured=measured,
                expected=expectation.value,
                lower=lower,
                upper=upper,
                status=status,
                support=metric.support,
                reason=reason,
            )
        )
    return checks


def verify_results(
    results: Iterable[ExperimentResult],
    *,
    tolerance_scale: float = 1.0,
    min_support: int = DEFAULT_MIN_SUPPORT,
) -> VerificationReport:
    """Aggregate checks over many results into one report."""
    report = VerificationReport(
        tolerance_scale=tolerance_scale, min_support=min_support
    )
    for result in results:
        report.extend(
            verify_result(
                result,
                tolerance_scale=tolerance_scale,
                min_support=min_support,
            )
        )
    return report
