"""Typed experiment artifacts.

The repo's deliverable used to be rendered text; this module makes it
*data*.  An :class:`ExperimentResult` carries named scalar metrics (each
optionally annotated with the paper's expected value and a tolerance
band), typed tables (the rows that used to go straight into the ASCII
renderer), and a :class:`RunManifest` recording the provenance of the
run — seed, scale, worker count, config hashes, package version — so a
stored ``result.json`` is a verifiable, reproducible statement rather
than prose.

Everything here is plain stdlib: no dependency on the analyzers, the
calibration constants, or numpy, so any layer (calibration, sim, core,
cli) may import it without cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, is_dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

Scalar = Union[int, float, bool, str]

#: Version tag embedded in every serialized result.
SCHEMA_VERSION = "repro.results/1"


def config_digest(payload: object) -> str:
    """Short stable digest of a configuration object (dataclass or dict)."""
    if is_dataclass(payload) and not isinstance(payload, type):
        payload = asdict(payload)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Expectations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Tolerance:
    """A band around an expected value.

    ``rel`` and ``abs`` each contribute a slack (``rel`` as a fraction of
    the expected magnitude); the effective slack is the larger of the two,
    optionally widened by a ``relax`` factor at check time.  ``kind``
    selects two-sided bands or one-sided bounds (``min``: measured must
    not fall below expected minus slack; ``max``: the mirror).
    """

    rel: Optional[float] = None
    abs: Optional[float] = None
    kind: str = "two-sided"

    def __post_init__(self) -> None:
        if self.kind not in ("two-sided", "min", "max"):
            raise ValueError(f"unknown tolerance kind {self.kind!r}")
        if self.rel is None and self.abs is None:
            raise ValueError("a tolerance needs rel and/or abs slack")
        for name, value in (("rel", self.rel), ("abs", self.abs)):
            if value is not None and value < 0:
                raise ValueError(f"{name} slack must be non-negative")

    def slack(self, expected: float, relax: float = 1.0) -> float:
        slack = 0.0
        if self.rel is not None:
            slack = max(slack, self.rel * abs(expected))
        if self.abs is not None:
            slack = max(slack, self.abs)
        return slack * relax

    def bounds(
        self, expected: float, relax: float = 1.0
    ) -> Tuple[Optional[float], Optional[float]]:
        """(lower, upper) acceptance bounds; ``None`` means unbounded."""
        slack = self.slack(expected, relax)
        if self.kind == "min":
            return expected - slack, None
        if self.kind == "max":
            return None, expected + slack
        return expected - slack, expected + slack

    def to_dict(self) -> Dict[str, object]:
        return {"rel": self.rel, "abs": self.abs, "kind": self.kind}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Tolerance":
        return cls(rel=data.get("rel"), abs=data.get("abs"),
                   kind=str(data.get("kind", "two-sided")))


@dataclass(frozen=True)
class PaperExpectation:
    """One published number, as a machine-checkable record.

    ``scales_with_window`` marks counts that grow with the observation
    window (Table 1 totals, job counts): their reference value multiplies
    by the dataset's window scale before comparison.
    """

    value: float
    tolerance: Tolerance
    source: str = ""
    scales_with_window: bool = False
    note: str = ""

    def scaled(self, scale: float) -> "PaperExpectation":
        """Resolve the expectation for a scaled observation window."""
        if not self.scales_with_window:
            return self
        return replace(self, value=self.value * scale, scales_with_window=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "tolerance": self.tolerance.to_dict(),
            "source": self.source,
            "scales_with_window": self.scales_with_window,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PaperExpectation":
        return cls(
            value=float(data["value"]),  # type: ignore[arg-type]
            tolerance=Tolerance.from_dict(data["tolerance"]),  # type: ignore[arg-type]
            source=str(data.get("source", "")),
            scales_with_window=bool(data.get("scales_with_window", False)),
            note=str(data.get("note", "")),
        )


# ---------------------------------------------------------------------------
# Metrics and tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Metric:
    """One named measured value.

    ``support`` is the sample size the value was estimated from (event or
    incident count); the verifier skips tolerance checks whose support is
    too small to be meaningful instead of failing on noise.
    """

    name: str
    value: Scalar
    unit: str = ""
    expectation: Optional[PaperExpectation] = None
    support: Optional[int] = None

    @property
    def numeric(self) -> float:
        if isinstance(self.value, bool):
            return 1.0 if self.value else 0.0
        if isinstance(self.value, (int, float)):
            return float(self.value)
        raise TypeError(f"metric {self.name!r} has non-numeric value {self.value!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "expectation": self.expectation.to_dict() if self.expectation else None,
            "support": self.support,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Metric":
        expectation = data.get("expectation")
        return cls(
            name=str(data["name"]),
            value=data["value"],  # type: ignore[arg-type]
            unit=str(data.get("unit", "")),
            expectation=(
                PaperExpectation.from_dict(expectation)  # type: ignore[arg-type]
                if expectation is not None else None
            ),
            support=(
                int(data["support"]) if data.get("support") is not None else None  # type: ignore[arg-type]
            ),
        )


@dataclass(frozen=True)
class ResultTable:
    """A typed table: the cells that used to feed the ASCII renderer.

    Cells keep their Python types (ints render with separators, floats
    with fixed precision, strings verbatim), which is what makes the text
    rendering reproducible from the serialized artifact.
    """

    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[Scalar, ...], ...]
    precision: int = 2

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"table {self.title!r}: row has {len(row)} cells for "
                    f"{len(self.headers)} columns"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "precision": self.precision,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ResultTable":
        return cls(
            title=str(data["title"]),
            headers=tuple(data["headers"]),  # type: ignore[arg-type]
            rows=tuple(tuple(row) for row in data["rows"]),  # type: ignore[union-attr]
            precision=int(data.get("precision", 2)),  # type: ignore[arg-type]
        )


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one run: everything needed to reproduce it.

    ``trace`` is observability metadata (trace id plus a per-span
    wall-time summary), not provenance: it varies run to run even for
    identical configurations, so it is **excluded** from the default
    serialization and never participates in ``config_hashes`` or any
    identity gate.  Trace-stamped manifests (``to_dict(with_trace=True)``)
    are written only into the trace directory itself.
    """

    run_id: str
    seed: Optional[int] = None
    scale: Optional[float] = None
    workers: Optional[int] = None
    window_hours: Optional[float] = None
    n_nodes: Optional[int] = None
    n_gpus: Optional[int] = None
    engine: Optional[str] = None
    dataset: Optional[str] = None
    config_hashes: Mapping[str, str] = field(default_factory=dict)
    package_version: str = ""
    created_unix: Optional[float] = None
    trace: Optional[Mapping[str, object]] = None

    def to_dict(self, *, with_trace: bool = False) -> Dict[str, object]:
        data = asdict(self)
        data["config_hashes"] = dict(self.config_hashes)
        if with_trace and self.trace is not None:
            data["trace"] = dict(self.trace)
        else:
            data.pop("trace", None)
        return data

    def stamped(self, trace: Mapping[str, object]) -> "RunManifest":
        """A copy carrying a trace summary (see class docstring)."""
        return replace(self, trace=dict(trace))

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        known = {f: data.get(f) for f in (
            "run_id", "seed", "scale", "workers", "window_hours", "n_nodes",
            "n_gpus", "engine", "dataset", "package_version", "created_unix",
            "trace",
        )}
        known["config_hashes"] = dict(data.get("config_hashes") or {})
        known["run_id"] = str(known["run_id"])
        known["package_version"] = str(known.get("package_version") or "")
        return cls(**known)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's outcome as structured, verifiable data.

    ``renderer`` names the registered text renderer
    (:mod:`repro.results.render`) that reproduces the paper-style report
    byte-for-byte from this object alone.
    """

    experiment_id: str
    paper_artifact: str
    title: str
    renderer: str
    metrics: Tuple[Metric, ...] = ()
    tables: Tuple[ResultTable, ...] = ()
    manifest: Optional[RunManifest] = None

    def __post_init__(self) -> None:
        names = [m.name for m in self.metrics]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate metric names: {dupes}")

    # -- access ----------------------------------------------------------

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"no metric {name!r} in {self.experiment_id}")

    def value(self, name: str) -> Scalar:
        return self.metric(name).value

    @property
    def values(self) -> Dict[str, Scalar]:
        return {m.name: m.value for m in self.metrics}

    def expected_metrics(self) -> List[Metric]:
        """Metrics carrying a paper expectation (the verifiable subset)."""
        return [m for m in self.metrics if m.expectation is not None]

    def table(self, title_prefix: str = "") -> ResultTable:
        for table in self.tables:
            if table.title.startswith(title_prefix):
                return table
        raise KeyError(f"no table starting with {title_prefix!r}")

    def with_manifest(self, manifest: RunManifest) -> "ExperimentResult":
        return replace(self, manifest=manifest)

    # -- rendering -------------------------------------------------------

    def render_text(self) -> str:
        from repro.results.render import render_text

        return render_text(self)

    def render_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_svg(self) -> Optional[str]:
        from repro.results.render import render_svg

        return render_svg(self)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "paper_artifact": self.paper_artifact,
            "title": self.title,
            "renderer": self.renderer,
            "metrics": [m.to_dict() for m in self.metrics],
            "tables": [t.to_dict() for t in self.tables],
            "manifest": self.manifest.to_dict() if self.manifest else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentResult":
        problems = validate_result_dict(data)
        if problems:
            raise ValueError("invalid ExperimentResult payload: "
                             + "; ".join(problems))
        manifest = data.get("manifest")
        return cls(
            experiment_id=str(data["experiment_id"]),
            paper_artifact=str(data["paper_artifact"]),
            title=str(data["title"]),
            renderer=str(data["renderer"]),
            metrics=tuple(
                Metric.from_dict(m) for m in data["metrics"]  # type: ignore[union-attr]
            ),
            tables=tuple(
                ResultTable.from_dict(t) for t in data["tables"]  # type: ignore[union-attr]
            ),
            manifest=(
                RunManifest.from_dict(manifest)  # type: ignore[arg-type]
                if manifest is not None else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

#: Human-readable schema statement (documented in docs/results.md).
RESULT_SCHEMA: Dict[str, object] = {
    "schema": SCHEMA_VERSION,
    "experiment_id": "str",
    "paper_artifact": "str",
    "title": "str",
    "renderer": "str",
    "metrics": [{
        "name": "str",
        "value": "int|float|bool|str",
        "unit": "str",
        "support": "int|null",
        "expectation": {
            "value": "float",
            "tolerance": {"rel": "float|null", "abs": "float|null",
                          "kind": "two-sided|min|max"},
            "source": "str",
            "scales_with_window": "bool",
            "note": "str",
        },
    }],
    "tables": [{"title": "str", "headers": ["str"],
                "rows": [["int|float|bool|str"]], "precision": "int"}],
    "manifest": {
        "run_id": "str", "seed": "int|null", "scale": "float|null",
        "workers": "int|null", "window_hours": "float|null",
        "n_nodes": "int|null", "n_gpus": "int|null", "engine": "str|null",
        "dataset": "str|null", "config_hashes": {"<name>": "str"},
        "package_version": "str", "created_unix": "float|null",
        # "trace" (trace id + per-span summary) appears only in
        # trace-directory manifests (to_dict(with_trace=True)) — never in
        # result.json / manifest.json, never in config_hashes.
    },
}


def _check(problems: List[str], condition: bool, message: str) -> None:
    if not condition:
        problems.append(message)


def validate_result_dict(data: Mapping[str, object]) -> List[str]:
    """Validate a serialized result against the artifact schema.

    Returns a list of problems (empty = valid), so callers can either
    gate on emptiness or report every issue at once.
    """
    problems: List[str] = []
    if not isinstance(data, Mapping):
        return ["payload is not a mapping"]
    _check(problems, data.get("schema") == SCHEMA_VERSION,
           f"schema must be {SCHEMA_VERSION!r}, got {data.get('schema')!r}")
    for key in ("experiment_id", "paper_artifact", "title", "renderer"):
        _check(problems, isinstance(data.get(key), str) and data.get(key),
               f"{key} must be a non-empty string")

    metrics = data.get("metrics")
    if not isinstance(metrics, Sequence) or isinstance(metrics, (str, bytes)):
        problems.append("metrics must be a list")
        metrics = []
    for i, metric in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(metric, Mapping):
            problems.append(f"{where} is not a mapping")
            continue
        _check(problems, isinstance(metric.get("name"), str) and metric["name"],
               f"{where}.name must be a non-empty string")
        _check(problems, isinstance(metric.get("value"), (int, float, bool, str)),
               f"{where}.value must be a scalar")
        support = metric.get("support")
        _check(problems,
               support is None or (isinstance(support, int)
                                   and not isinstance(support, bool)),
               f"{where}.support must be an int or null")
        expectation = metric.get("expectation")
        if expectation is not None:
            if not isinstance(expectation, Mapping):
                problems.append(f"{where}.expectation is not a mapping")
                continue
            _check(problems,
                   isinstance(expectation.get("value"), (int, float))
                   and not isinstance(expectation.get("value"), bool),
                   f"{where}.expectation.value must be a number")
            tolerance = expectation.get("tolerance")
            if not isinstance(tolerance, Mapping):
                problems.append(f"{where}.expectation.tolerance is not a mapping")
            else:
                _check(problems,
                       tolerance.get("kind") in ("two-sided", "min", "max"),
                       f"{where}.expectation.tolerance.kind is invalid")
                _check(problems,
                       tolerance.get("rel") is not None
                       or tolerance.get("abs") is not None,
                       f"{where}.expectation.tolerance needs rel and/or abs")

    tables = data.get("tables")
    if not isinstance(tables, Sequence) or isinstance(tables, (str, bytes)):
        problems.append("tables must be a list")
        tables = []
    for i, table in enumerate(tables):
        where = f"tables[{i}]"
        if not isinstance(table, Mapping):
            problems.append(f"{where} is not a mapping")
            continue
        _check(problems, isinstance(table.get("title"), str),
               f"{where}.title must be a string")
        headers = table.get("headers")
        rows = table.get("rows")
        ok_headers = (isinstance(headers, Sequence)
                      and not isinstance(headers, (str, bytes))
                      and all(isinstance(h, str) for h in headers))
        _check(problems, ok_headers, f"{where}.headers must be a list of strings")
        if not isinstance(rows, Sequence) or isinstance(rows, (str, bytes)):
            problems.append(f"{where}.rows must be a list")
            continue
        for j, row in enumerate(rows):
            if (not isinstance(row, Sequence) or isinstance(row, (str, bytes))
                    or (ok_headers and len(row) != len(headers))):  # type: ignore[arg-type]
                problems.append(f"{where}.rows[{j}] does not match the headers")
            elif not all(isinstance(c, (int, float, bool, str)) for c in row):
                problems.append(f"{where}.rows[{j}] has a non-scalar cell")

    manifest = data.get("manifest")
    if manifest is not None:
        if not isinstance(manifest, Mapping):
            problems.append("manifest is not a mapping")
        else:
            _check(problems,
                   isinstance(manifest.get("run_id"), str) and manifest["run_id"],
                   "manifest.run_id must be a non-empty string")
            hashes = manifest.get("config_hashes")
            _check(problems, hashes is None or isinstance(hashes, Mapping),
                   "manifest.config_hashes must be a mapping")
    return problems
