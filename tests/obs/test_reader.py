"""Reader, aggregation, tree stitching and Chrome export."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    build_tree,
    read_trace_dir,
    render_summary,
    render_tree,
    summarize,
    to_chrome_events,
    write_chrome_trace,
)
from repro.obs.reader import pruning_ratios, subsystem_of


@pytest.fixture
def traced_dir(tmp_path):
    """A two-'process' trace: main dispatches, a worker context runs."""
    obs.activate(tmp_path, label="main")
    with obs.span("cli.run"):
        with obs.span("session.dispatch") as dispatch:
            context = obs.current_context(label="job")
        with obs.span("store.segment.scan") as scan:
            scan.add("store.rows_scanned", 100)
            scan.add("store.rows_matched", 25)
        obs.add("store.segments_planned", 4)
        obs.add("store.segments_pruned", 3)
    obs.deactivate()
    obs.activate_context(context)
    with obs.span("session.experiment", experiment="table1"):
        pass
    obs.deactivate()
    return tmp_path, dispatch.span_id


class TestReadTraceDir:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace_dir(tmp_path / "nope")

    def test_reads_spans_metas_and_trace_ids(self, traced_dir):
        directory, _ = traced_dir
        data = read_trace_dir(directory)
        assert len(data.metas) == 2
        assert {s["name"] for s in data.spans} == {
            "cli.run", "session.dispatch", "store.segment.scan",
            "session.experiment",
        }
        assert len(data.trace_ids) == 1  # one logical trace, two files
        assert data.problems == []

    def test_malformed_lines_become_problems_not_crashes(self, tmp_path):
        path = tmp_path / "bad-1-x.trace.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps({"kind": "span", "trace": "t"})  # missing fields
            + "\n"
            + json.dumps({"kind": "meta", "schema": "repro.obs/1",
                          "trace": "t", "pid": 1, "label": "main",
                          "created": 1.0})
            + "\n",
            encoding="utf-8",
        )
        data = read_trace_dir(tmp_path)
        assert len(data.problems) == 2
        assert len(data.metas) == 1

    def test_counters_merges_span_scoped_and_orphans(self, traced_dir):
        directory, _ = traced_dir
        counters = read_trace_dir(directory).counters()
        assert counters["store.rows_scanned"] == 100
        assert counters["store.segments_pruned"] == 3


class TestSummarize:
    def test_subsystem_of(self):
        assert subsystem_of("store.segment.scan") == "store"
        assert subsystem_of("flat") == "flat"

    def test_self_time_subtracts_direct_children(self, traced_dir):
        directory, _ = traced_dir
        summary = summarize(read_trace_dir(directory))
        cli = summary["spans"]["cli.run"]
        assert cli["calls"] == 1
        # self < total: the dispatch + scan children are subtracted.
        assert cli["self_seconds"] <= cli["seconds"]
        subsystems = summary["subsystems"]
        assert set(subsystems) == {"cli", "session", "store"}

    def test_pruning_ratios(self):
        ratios = pruning_ratios({
            "store.segments_planned": 4, "store.segments_pruned": 3,
            "store.rows_scanned": 100, "store.rows_matched": 25,
        })
        assert ratios["segments_pruned_fraction"] == 0.75
        assert ratios["rows_matched_fraction"] == 0.25

    def test_pruning_ratios_empty_trace(self):
        ratios = pruning_ratios({})
        assert ratios["segments_pruned_fraction"] is None
        assert ratios["rows_matched_fraction"] is None

    def test_render_summary_mentions_the_key_sections(self, traced_dir):
        directory, _ = traced_dir
        text = render_summary(summarize(read_trace_dir(directory)))
        assert "per-subsystem self time" in text
        assert "store pushdown" in text
        assert "segments pruned : 3 / 4" in text
        assert "session.experiment" in text

    def test_summary_is_json_serializable(self, traced_dir):
        directory, _ = traced_dir
        json.dumps(summarize(read_trace_dir(directory)), sort_keys=True)


class TestTree:
    def test_worker_spans_reparent_under_the_dispatching_span(
        self, traced_dir
    ):
        directory, dispatch_id = traced_dir
        data = read_trace_dir(directory)
        roots = build_tree(data)
        assert [r["span"]["name"] for r in roots] == ["cli.run"]

        def find(node, name):
            if node["span"]["name"] == name:
                return node
            for child in node["children"]:
                found = find(child, name)
                if found:
                    return found
            return None

        dispatch = find(roots[0], "session.dispatch")
        assert dispatch["span"]["id"] == dispatch_id
        experiment = find(dispatch, "session.experiment")
        assert experiment is not None, "worker span not stitched under dispatch"

    def test_render_tree_indents_and_labels_processes(self, traced_dir):
        directory, _ = traced_dir
        text = render_tree(read_trace_dir(directory))
        lines = text.splitlines()
        assert lines[0].startswith("cli.run")
        assert any(line.startswith("  session.dispatch") for line in lines)
        # Every line carries a (label/pid) process tag and a duration.
        assert all("ms  (" in line for line in lines)

    def test_max_depth_limits_output(self, traced_dir):
        directory, _ = traced_dir
        shallow = render_tree(read_trace_dir(directory), max_depth=0)
        assert shallow.splitlines()[0].startswith("cli.run")
        assert "session.dispatch" not in shallow


class TestChromeExport:
    def test_events_cover_every_span_and_process(self, traced_dir):
        directory, _ = traced_dir
        data = read_trace_dir(directory)
        events = to_chrome_events(data)
        x_events = [e for e in events if e["ph"] == "X"]
        m_events = [e for e in events if e["ph"] == "M"]
        assert len(x_events) == len(data.spans)
        assert len(m_events) == len(data.metas)
        scan = next(e for e in x_events if e["name"] == "store.segment.scan")
        assert scan["cat"] == "store"
        assert scan["args"]["store.rows_scanned"] == 100
        assert scan["dur"] >= 0

    def test_write_chrome_trace_round_trips(self, traced_dir, tmp_path):
        directory, _ = traced_dir
        out = tmp_path / "chrome.json"
        write_chrome_trace(read_trace_dir(directory), out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["displayTimeUnit"] == "ms"
        assert {e["ph"] for e in payload["traceEvents"]} == {"M", "X"}
