"""Tracer unit tests: the no-op default, span lifecycle, fan-out context."""

from __future__ import annotations

import json
import threading

from repro import obs
from repro.obs import NULL_SPAN, TRACE_FILE_SUFFIX, TraceContext, Tracer


def read_records(directory):
    records = []
    for path in sorted(directory.glob(f"*{TRACE_FILE_SUFFIX}")):
        for line in path.read_text(encoding="utf-8").splitlines():
            records.append(json.loads(line))
    return records


class TestDisabledDefault:
    def test_span_returns_the_shared_null_singleton(self):
        assert obs.active() is None
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", attr=1) is NULL_SPAN

    def test_null_span_supports_the_full_span_api(self):
        with obs.span("x") as span:
            span.set(a=1)
            span.add("counter", 3)
        assert span is NULL_SPAN

    def test_add_is_a_no_op(self):
        obs.add("some.counter", 7)  # must not raise

    def test_span_iter_returns_the_iterable_untouched(self):
        items = [1, 2, 3]
        wrapped = obs.span_iter("loop", items, counter="n")
        assert list(wrapped) == items

    def test_current_context_is_none(self):
        assert obs.current_context() is None

    def test_enabled_reflects_activation(self, tmp_path):
        assert not obs.enabled()
        obs.activate(tmp_path)
        assert obs.enabled()
        obs.deactivate()
        assert not obs.enabled()


class TestSpanLifecycle:
    def test_spans_nest_and_record_parentage(self, tmp_path):
        tracer = obs.activate(tmp_path)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        obs.deactivate()
        spans = [r for r in read_records(tmp_path) if r["kind"] == "span"]
        by_name = {s["name"]: s for s in spans}
        # Children close first, so "inner" precedes "outer" in the file.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["trace"] == tracer.trace_id

    def test_attrs_and_counters_land_on_the_record(self, tmp_path):
        obs.activate(tmp_path)
        with obs.span("work", phase="demo") as span:
            span.set(extra="x")
            span.add("items", 2)
            span.add("items", 3)
        obs.deactivate()
        (span_record,) = [
            r for r in read_records(tmp_path) if r["kind"] == "span"
        ]
        assert span_record["attrs"] == {"phase": "demo", "extra": "x"}
        assert span_record["counters"] == {"items": 5}

    def test_exceptions_stamp_an_error_attr_and_propagate(self, tmp_path):
        obs.activate(tmp_path)
        try:
            with obs.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        obs.deactivate()
        (span_record,) = [
            r for r in read_records(tmp_path) if r["kind"] == "span"
        ]
        assert span_record["attrs"]["error"] == "ValueError"

    def test_span_ids_are_unique_across_threads(self, tmp_path):
        obs.activate(tmp_path)
        # Hold all four threads alive together: thread idents (the tid
        # alias key) are recycled once a thread exits.
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for _ in range(25):
                with obs.span("threaded"):
                    pass
            barrier.wait()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs.deactivate()
        spans = [r for r in read_records(tmp_path) if r["kind"] == "span"]
        assert len(spans) == 100
        assert len({s["id"] for s in spans}) == 100
        # Distinct threads get distinct stable aliases.
        assert len({s["tid"] for s in spans}) == 4

    def test_each_thread_has_its_own_span_stack(self, tmp_path):
        obs.activate(tmp_path)
        seen = {}

        def work(name):
            with obs.span(name) as span:
                seen[name] = span.parent_id

        with obs.span("main-root"):
            t = threading.Thread(target=work, args=("other-thread",))
            t.start()
            t.join()
        obs.deactivate()
        # The other thread's span must NOT be parented under main-root.
        assert seen["other-thread"] is None


class TestSpanIter:
    def test_counts_items_and_times_the_whole_iteration(self, tmp_path):
        obs.activate(tmp_path)
        result = list(obs.span_iter("loop", range(5), counter="n", k="v"))
        obs.deactivate()
        assert result == [0, 1, 2, 3, 4]
        (span_record,) = [
            r for r in read_records(tmp_path) if r["kind"] == "span"
        ]
        assert span_record["name"] == "loop"
        assert span_record["counters"] == {"n": 5}
        assert span_record["attrs"] == {"k": "v"}

    def test_abandoned_iteration_still_closes_the_span(self, tmp_path):
        obs.activate(tmp_path)
        iterator = obs.span_iter("partial", range(100), counter="n")
        next(iterator)
        next(iterator)
        iterator.close()  # GeneratorExit path
        obs.deactivate()
        (span_record,) = [
            r for r in read_records(tmp_path) if r["kind"] == "span"
        ]
        assert span_record["counters"] == {"n": 2}


class TestCountersAndSnapshots:
    def test_add_attaches_to_the_innermost_open_span(self, tmp_path):
        obs.activate(tmp_path)
        with obs.span("holder"):
            obs.add("hits", 2)
        obs.deactivate()
        (span_record,) = [
            r for r in read_records(tmp_path) if r["kind"] == "span"
        ]
        assert span_record["counters"] == {"hits": 2}

    def test_orphan_counters_flush_as_a_counters_record_on_close(
        self, tmp_path
    ):
        obs.activate(tmp_path)
        obs.add("orphan.count", 4)
        obs.add("orphan.count", 1)
        obs.deactivate()
        (counters_record,) = [
            r for r in read_records(tmp_path) if r["kind"] == "counters"
        ]
        assert counters_record["counters"] == {"orphan.count": 5}

    def test_snapshot_and_delta(self, tmp_path):
        tracer = obs.activate(tmp_path)
        with obs.span("a"):
            obs.add("n", 1)
        before = tracer.snapshot()
        with obs.span("a"):
            obs.add("n", 2)
        with obs.span("b"):
            pass
        delta = tracer.delta(before)
        obs.deactivate()
        assert before["spans"]["a"]["calls"] == 1
        assert delta["spans"]["a"]["calls"] == 1
        assert delta["spans"]["b"]["calls"] == 1
        assert delta["counters"] == {"n": 2}


class TestFanOutContext:
    def test_current_context_parents_under_the_open_span(self, tmp_path):
        tracer = obs.activate(tmp_path)
        with obs.span("dispatch") as span:
            context = obs.current_context(label="job")
        obs.deactivate()
        assert isinstance(context, TraceContext)
        assert context.trace_id == tracer.trace_id
        assert context.parent_id == span.span_id
        assert context.label == "job"

    def test_activate_context_reparents_worker_roots(self, tmp_path):
        tracer = obs.activate(tmp_path)
        with obs.span("dispatch") as span:
            context = obs.current_context(label="job")
        obs.deactivate()
        # Simulate the worker side in-process.
        obs.activate_context(context)
        with obs.span("worker-root"):
            pass
        obs.deactivate()
        records = read_records(tmp_path)
        worker_meta = [
            r for r in records
            if r["kind"] == "meta" and r["label"] == "job"
        ]
        assert worker_meta and worker_meta[0]["parent"] == span.span_id
        worker_root = [
            r for r in records
            if r["kind"] == "span" and r["name"] == "worker-root"
        ]
        assert worker_root[0]["parent"] == span.span_id
        assert worker_root[0]["trace"] == tracer.trace_id

    def test_activate_context_accepts_none(self):
        assert obs.activate_context(None) is None
        assert not obs.enabled()

    def test_context_is_picklable(self, tmp_path):
        import pickle

        obs.activate(tmp_path)
        context = obs.current_context()
        obs.deactivate()
        assert pickle.loads(pickle.dumps(context)) == context

    def test_abandon_never_writes_after_fork(self, tmp_path):
        tracer = Tracer(tmp_path, label="parent")
        tracer._abandon()  # what _forget_in_child does in the child
        tracer.close()  # must be a harmless no-op
        with obs.span("ignored"):
            pass
        # Only the parent's meta line exists; nothing else was written.
        records = read_records(tmp_path)
        assert [r["kind"] for r in records] == ["meta"]
