"""Trace record schema validation (``repro.obs/1``)."""

from __future__ import annotations

import json

from repro import obs
from repro.obs import SCHEMA_VERSION, TRACE_FILE_SUFFIX, validate_record


class TestValidateRecord:
    def test_non_mapping_is_rejected(self):
        assert validate_record(["not", "a", "dict"])
        assert validate_record("span")

    def test_unknown_kind_is_rejected(self):
        assert validate_record({"kind": "mystery"})

    def test_valid_meta(self):
        record = {"kind": "meta", "schema": SCHEMA_VERSION, "trace": "t",
                  "pid": 1, "parent": None, "label": "main",
                  "created": 1.0}
        assert validate_record(record) == []

    def test_meta_with_wrong_schema_version(self):
        record = {"kind": "meta", "schema": "repro.obs/999", "trace": "t",
                  "pid": 1, "label": "main", "created": 1.0}
        assert any("schema" in p for p in validate_record(record))

    def test_valid_span(self):
        record = {"kind": "span", "trace": "t", "id": "1.1", "parent": None,
                  "name": "x", "start": 1.0, "dur": 0.5, "pid": 1, "tid": 0}
        assert validate_record(record) == []

    def test_span_missing_fields(self):
        problems = validate_record({"kind": "span"})
        assert any("missing field 'id'" in p for p in problems)
        assert any("missing field 'dur'" in p for p in problems)

    def test_span_negative_duration(self):
        record = {"kind": "span", "trace": "t", "id": "1.1", "name": "x",
                  "start": 1.0, "dur": -0.1, "pid": 1, "tid": 0}
        assert any("negative" in p for p in validate_record(record))

    def test_span_non_numeric_counter(self):
        record = {"kind": "span", "trace": "t", "id": "1.1", "name": "x",
                  "start": 1.0, "dur": 0.1, "pid": 1, "tid": 0,
                  "counters": {"n": "five"}}
        assert any("not numeric" in p for p in validate_record(record))

    def test_valid_counters_record(self):
        record = {"kind": "counters", "trace": "t", "pid": 1,
                  "counters": {"n": 5}}
        assert validate_record(record) == []

    def test_counters_wrong_type(self):
        record = {"kind": "counters", "trace": "t", "pid": 1,
                  "counters": ["n"]}
        assert validate_record(record)


class TestEmittedRecordsValidate:
    def test_every_record_a_real_tracer_writes_passes(self, tmp_path):
        """Ground truth: the writer and the schema agree."""
        obs.activate(tmp_path)
        with obs.span("outer", mode="test"):
            with obs.span("inner") as inner:
                inner.add("items", 3)
            list(obs.span_iter("loop", range(4), counter="n"))
        obs.add("orphan", 1)
        try:
            with obs.span("fails"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        obs.deactivate()
        n_checked = 0
        for path in tmp_path.glob(f"*{TRACE_FILE_SUFFIX}"):
            for line in path.read_text(encoding="utf-8").splitlines():
                record = json.loads(line)
                assert validate_record(record) == [], record
                n_checked += 1
        # meta + 4 spans + 1 orphan-counters record
        assert n_checked == 6
