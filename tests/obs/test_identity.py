"""The hard gate: tracing never changes a single output byte.

Runs the real ``study`` CLI over an on-disk dataset with ``--trace`` on
and off, serial and fanned out (``--workers`` x ``--jobs``), and
compares stdout and every written artifact byte for byte.  Also pins
the two manifest surfaces: the ``--output-dir`` manifest never carries
a ``trace`` block, the trace-directory manifests always do.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.obs import read_trace_dir, summarize

from .conftest import SCALE, SEED

#: Span names a traced parallel study must cover end to end.
EXPECTED_SPANS = {
    "cli.study",
    "session.dispatch",
    "session.experiment",
    "pipeline.extract",
    "pipeline.extract.shard",
    "pipeline.coalesce",
}


def run_study(dataset, out_dir, *, workers, jobs, trace_dir=None):
    argv = ["study", "--dataset", str(dataset),
            "--scale", SCALE, "--seed", SEED,
            "--workers", str(workers), "--jobs", str(jobs),
            "--output-dir", str(out_dir)]
    if trace_dir is not None:
        argv += ["--trace", str(trace_dir)]
    stdout = io.StringIO()
    with redirect_stdout(stdout):
        assert main(argv) == 0
    return stdout.getvalue()


def dir_bytes(directory):
    """Relative path -> content for every file under ``directory``."""
    return {
        str(path.relative_to(directory)): path.read_bytes()
        for path in sorted(directory.rglob("*"))
        if path.is_file()
    }


@pytest.fixture(scope="module")
def runs(obs_dataset, tmp_path_factory):
    """One study run per (workers, jobs, traced) config we compare."""
    base = tmp_path_factory.mktemp("obs-identity")
    results = {}
    for workers, jobs, traced in [
        (1, 1, False), (1, 1, True),
        (4, 1, True),
        (1, 4, True),
        (4, 4, False), (4, 4, True),
    ]:
        key = (workers, jobs, traced)
        out = base / f"out-w{workers}-j{jobs}-{'t' if traced else 'p'}"
        trace = base / f"trace-w{workers}-j{jobs}" if traced else None
        stdout = run_study(obs_dataset, out,
                           workers=workers, jobs=jobs, trace_dir=trace)
        results[key] = {"stdout": stdout, "out": out, "trace": trace}
    return results


class TestByteIdentity:
    @pytest.mark.parametrize("workers,jobs", [(1, 1), (4, 4)])
    def test_outputs_identical_with_trace_on_vs_off(self, runs, workers, jobs):
        plain = runs[(workers, jobs, False)]
        traced = runs[(workers, jobs, True)]
        assert traced["stdout"] == plain["stdout"]
        assert dir_bytes(traced["out"]) == dir_bytes(plain["out"])

    def test_reports_identical_across_workers_and_jobs(self, runs):
        """The printed report is the same for every fan-out shape."""
        reports = {key: run["stdout"] for key, run in runs.items()}
        assert len(set(reports.values())) == 1, sorted(reports)

    def test_output_dir_manifests_never_carry_a_trace_block(self, runs):
        out = runs[(4, 4, True)]["out"]
        manifests = list(out.rglob("manifest.json"))
        assert manifests
        for path in manifests:
            assert "trace" not in json.loads(path.read_text(encoding="utf-8"))


class TestTraceContents:
    @pytest.mark.parametrize("workers,jobs", [(1, 1), (4, 1), (1, 4), (4, 4)])
    def test_every_record_validates(self, runs, workers, jobs):
        data = read_trace_dir(runs[(workers, jobs, True)]["trace"])
        assert data.problems == []
        assert data.spans

    def test_parallel_trace_covers_the_pipeline_end_to_end(self, runs):
        data = read_trace_dir(runs[(4, 4, True)]["trace"])
        names = {s["name"] for s in data.spans}
        assert EXPECTED_SPANS <= names, EXPECTED_SPANS - names
        # One logical trace across main + extract + job workers.
        assert len(data.trace_ids) == 1
        assert len(data.metas) >= 3

    def test_worker_spans_stitch_under_the_dispatch_span(self, runs):
        data = read_trace_dir(runs[(4, 4, True)]["trace"])
        by_id = {s["id"]: s for s in data.spans}

        def ancestors(span):
            while span.get("parent") in by_id:
                span = by_id[span["parent"]]
                yield span["name"]

        experiments = [s for s in data.spans
                       if s["name"] == "session.experiment"]
        assert experiments
        for span in experiments:
            assert "session.dispatch" in set(ancestors(span))

    def test_summary_counts_the_dataset_records(self, runs):
        data = read_trace_dir(runs[(1, 1, True)]["trace"])
        summary = summarize(data)
        assert summary["counters"]["pipeline.records"] > 0
        assert summary["counters"]["pipeline.errors"] > 0
        assert summary["problems"] == 0

    @pytest.mark.parametrize("workers,jobs", [(1, 1), (4, 4)])
    def test_trace_dir_manifests_carry_the_trace_block(
        self, runs, workers, jobs
    ):
        trace_dir = runs[(workers, jobs, True)]["trace"]
        manifests = sorted((trace_dir / "manifests").glob("*.manifest.json"))
        assert manifests, "no stamped manifests in the trace directory"
        trace_ids = read_trace_dir(trace_dir).trace_ids
        for path in manifests:
            manifest = json.loads(path.read_text(encoding="utf-8"))
            block = manifest["trace"]
            assert block["trace_id"] in trace_ids
            assert block["spans"], path.name
            assert "session.experiment" in block["spans"]
